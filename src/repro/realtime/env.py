"""The wall-clock execution backend: simnet's kernel surface on asyncio.

:class:`RealtimeEnvironment` subclasses the deterministic
:class:`~repro.simnet.events.Environment` and keeps its entire scheduling
discipline -- the ``(deadline, priority, sequence)`` heap, the virtual
schedule clock ``now``, Event/Process/AllOf/AnyOf/Interrupt semantics,
``Store``/``Resource`` queues -- but *executes* the schedule in real time
on an asyncio event loop:

- before firing an event whose deadline lies ahead of the wall clock, the
  kernel ``asyncio.sleep``s until it is due (scaled by ``factor``: real
  seconds per schedule second);
- events that are already due fire back-to-back, as fast as the hardware
  allows (the kernel never waits to "catch up" -- falling behind the
  schedule is not an error unless ``strict=True``);
- while the kernel sleeps or yields, other asyncio tasks on the same loop
  run -- which is how real TCP listeners (:meth:`repro.rest.RestServer
  .serve`) inject work into a live kernel.

Because the heap discipline is byte-for-byte the sim's, a realtime run of
an identically-configured app pops events in exactly the same order and
reads exactly the same ``now`` values as the sim run: final store state,
revisions, and watch-event order are *identical*, which is what the
sim-vs-realtime parity suite asserts.  The wall clock is exposed
separately (:attr:`wall_now`, :meth:`trace_clock`) so tracers can stamp
real timestamps without perturbing the schedule.
"""

import asyncio
import time

from repro.simnet.events import NORMAL, Environment, Event, SimulationError


class RealtimeDriftError(SimulationError):
    """Raised under ``strict=True`` when execution falls too far behind."""


class RealtimeEnvironment(Environment):
    """An :class:`~repro.simnet.events.Environment` paced by the wall clock.

    ``factor`` is the real-seconds-per-schedule-second ratio: ``1.0``
    (default) runs timeouts at face value, ``0.05`` compresses a
    130-second device trace into 6.5 real seconds while leaving the event
    schedule -- and therefore every observable outcome -- untouched.
    ``strict=True`` raises :class:`RealtimeDriftError` when an event
    fires more than ``max_drift`` real seconds late.

    The environment owns a private asyncio loop.  ``run()`` drives it
    from synchronous code exactly like the sim (``run()``,
    ``run(until=seconds)``, ``run(until=event)``); coroutines started on
    :attr:`loop` (e.g. socket listeners) execute whenever the kernel
    sleeps or yields.
    """

    backend = "realtime"

    #: Deadlines closer than this (in real seconds) fire without sleeping;
    #: OS timers below ~1 ms are noise anyway.
    tolerance = 0.001

    def __init__(self, initial_time=0.0, factor=1.0, strict=False,
                 max_drift=1.0):
        if factor < 0:
            raise SimulationError(f"negative time factor {factor}")
        super().__init__(initial_time)
        self.factor = float(factor)
        self.strict = strict
        self.max_drift = float(max_drift)
        self._loop = asyncio.new_event_loop()
        self._wake = asyncio.Event()
        self._external_sources = set()
        self._wall_anchor = time.monotonic()
        self._wall_created = self._wall_anchor
        self._anchor_now = self._now
        self.max_lateness = 0.0

    # -- wall clock --------------------------------------------------------

    @property
    def loop(self):
        """The asyncio loop this kernel runs on."""
        return self._loop

    @property
    def wall_now(self):
        """Real seconds elapsed since the environment was created."""
        return time.monotonic() - self._wall_created

    def trace_clock(self):
        """Wall-clock timestamp source for tracers (see simnet.trace)."""
        return self.wall_now

    # -- scheduling --------------------------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Queue ``event`` and wake the kernel if it is sleeping.

        External sources (socket handlers, ``loop.call_later`` callbacks)
        schedule through the same entry point as processes, so a sleeping
        kernel re-examines its heap whenever new work arrives.
        """
        super().schedule(event, delay, priority)
        if not self._wake.is_set():
            self._wake.set()

    # -- external sources --------------------------------------------------

    def register_external_source(self, name):
        """Declare a live event source (e.g. a listening socket).

        While any source is registered, ``run()`` treats an empty event
        queue as *idle* rather than *finished* and sleeps until an event
        is injected.
        """
        self._external_sources.add(name)

    def unregister_external_source(self, name):
        self._external_sources.discard(name)
        if not self._wake.is_set():
            self._wake.set()  # let an idle run() re-check for termination

    # -- asyncio bridging --------------------------------------------------

    def future_of(self, event):
        """An :class:`asyncio.Future` resolved when ``event`` fires.

        The bridge from kernel space to coroutine space: socket handlers
        ``await env.future_of(server.dispatch(request))``.  A failing
        event is defused (the exception surfaces on the future, not out
        of the kernel loop).
        """

        future = self._loop.create_future()

        def resolve(evt):
            if future.cancelled():
                return
            if evt.ok:
                future.set_result(evt.value)
            else:
                evt._defused = True
                future.set_exception(evt.value)

        if event.callbacks is None:  # already processed
            resolve(event)
        else:
            event.callbacks.append(resolve)
        return future

    # -- the paced run loop ------------------------------------------------

    def run(self, until=None):
        """Drive the schedule in real time (same contract as the sim).

        ``until=None`` runs to an empty queue (or forever, while an
        external source is registered); ``until=seconds`` runs the
        schedule clock to that horizon; ``until=event`` runs until the
        event fires and returns its value.  Long-period background
        timers (retention sweeps, autoscaler ticks) keep the queue
        non-empty -- drive servers with ``until=event`` or a finite
        horizon rather than ``until=None``.
        """
        if self._loop.is_closed():
            raise SimulationError("environment is closed")
        if self._loop.is_running():
            raise SimulationError(
                "run() re-entered from inside the event loop"
            )
        # Re-anchor pacing: real time spent *outside* run() (building the
        # app, asserting between runs) must not register as lateness.
        self._wall_anchor = time.monotonic()
        self._anchor_now = self._now
        return self._loop.run_until_complete(self._arun(until))

    def close(self):
        """Close the private asyncio loop (the environment is spent).

        Pending tasks -- idle socket connections, say -- are cancelled
        and drained first so they unwind while the loop still runs,
        instead of erroring at garbage-collection time.
        """
        if self._loop.is_closed():
            return
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    async def _idle_wait(self, timeout=None):
        """Sleep until new work is scheduled (or ``timeout`` real secs).

        Everything runs on one loop: external sources only schedule
        while the kernel awaits, so clearing the flag here cannot lose a
        wakeup.
        """
        self._wake.clear()
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    def _wall_deadline(self, when):
        """Real-clock instant at which the event at ``when`` is due."""
        return self._wall_anchor + (when - self._anchor_now) * self.factor

    async def _arun(self, until):
        stop, fired = None, []
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                if stop.ok:
                    return stop.value
                raise stop.value
            stop.callbacks.append(fired.append)
            horizon = float("inf")
        elif until is None:
            horizon = float("inf")
        else:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}: clock already at {self._now}"
                )

        while not fired:
            when = self.peek()
            if when == float("inf"):
                # Empty queue: finished, unless a live external source
                # (a listening socket) may still inject work.
                if stop is not None and not self._external_sources:
                    raise SimulationError(
                        "event queue empty before target event fired"
                    )
                if horizon == float("inf"):
                    if self._external_sources:
                        await self._idle_wait()
                        continue
                    break
            # Nothing (left) to fire before the finite horizon: this is
            # a *realtime* kernel, so the horizon itself is paced -- idle
            # until its wall deadline (waking early if a socket injects
            # work), then jump the schedule clock.
            if when > horizon:
                remaining = self._wall_deadline(horizon) - time.monotonic()
                if remaining > self.tolerance:
                    await self._idle_wait(remaining)
                    continue
                break
            delay = self._wall_deadline(when) - time.monotonic()
            if delay > self.tolerance:
                await self._idle_wait(delay)
                continue  # re-examine: an earlier event may have landed
            lateness = -delay
            if lateness > self.max_lateness:
                self.max_lateness = lateness
            if self.strict and lateness > self.max_drift:
                raise RealtimeDriftError(
                    f"event due at t={when:.6f} fired {lateness:.3f}s late "
                    f"(max_drift={self.max_drift})"
                )
            self.step()
            if self._external_sources:
                # Give socket tasks a turn between events; without live
                # sources there is nothing to starve.
                await asyncio.sleep(0)

        if horizon != float("inf"):
            self._now = horizon
        if stop is not None:
            if stop.ok:
                return stop.value
            stop._defused = True
            raise stop.value
        return None

    def __repr__(self):
        return (
            f"<RealtimeEnvironment now={self._now} factor={self.factor} "
            f"queued={len(self._queue)}>"
        )
