"""Real-time execution backend: the simnet kernel surface on asyncio.

``repro.realtime`` is the second execution backend behind the knactor
API.  :class:`RealtimeEnvironment` implements the exact kernel surface of
:class:`repro.simnet.Environment` -- ``timeout`` / ``process`` / ``event``
/ ``run(until=)`` / ``now``, Event/AllOf/AnyOf/Interrupt semantics,
``Store``/``Resource`` queues -- paced by the wall clock on a private
asyncio loop, so every substrate (stores, ``ShardedStore``, watch/delta
streams, reconcilers, Cast/Sync, pub/sub, RPC, the txn coordinator, the
flow plane) runs **unmodified** in real time.

The simulation primitives are kernel-agnostic (they only touch
``env.schedule`` / ``env.now`` / ``env.active_process``), so this package
re-exports them rather than duplicating them: a ``yield store.get()``
blocks a realtime process exactly as it blocks a sim process.

Select the backend through the runtime (``KnactorRuntime(mode="realtime")``)
or build an environment directly::

    from repro.realtime import RealtimeEnvironment

    env = RealtimeEnvironment(factor=1.0)   # 1 schedule second == 1 real second
    app = RetailKnactorApp.build(env=env)   # app code unchanged

See ``docs/runtime.md`` for the sim-vs-realtime contract and the
``knactor serve`` walkthrough.
"""

from repro.realtime.env import RealtimeDriftError, RealtimeEnvironment
from repro.simnet.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.simnet.process import Process
from repro.simnet.queue import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "RealtimeDriftError",
    "RealtimeEnvironment",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
