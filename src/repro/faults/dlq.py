"""Dead-letter queues for poison work items.

When a consumer (reconciler, Cast worker) keeps failing on the same item,
endless requeueing would starve healthy work.  After a bounded number of
requeues the item is *dead-lettered*: parked here with its failure
context, where operators (or tests) can inspect and replay it.  The
consumer moves on -- one poison object must never stall the rest of the
keyspace.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeadLetter:
    """One parked work item with enough context to diagnose and replay."""

    key: str
    error: str
    attempts: int
    time: float
    source: str = ""
    payload: object = None


@dataclass
class DeadLetterQueue:
    """Append-only (optionally bounded) queue of :class:`DeadLetter`.

    With ``capacity`` set, the oldest letters are evicted first
    (``evicted`` counts them) -- a real DLQ is a bounded topic, not an
    unbounded memory leak.
    """

    name: str = ""
    capacity: int = None
    letters: list = field(default_factory=list)
    evicted: int = 0

    def push(self, key, error, attempts, time, source="", payload=None):
        letter = DeadLetter(
            key=key,
            error=str(error),
            attempts=attempts,
            time=time,
            source=source,
            payload=payload,
        )
        self.letters.append(letter)
        if self.capacity is not None and len(self.letters) > self.capacity:
            overflow = len(self.letters) - self.capacity
            del self.letters[:overflow]
            self.evicted += overflow
        return letter

    def keys(self):
        return [letter.key for letter in self.letters]

    def clear(self):
        drained, self.letters = self.letters, []
        return drained

    def __len__(self):
        return len(self.letters)

    def __iter__(self):
        return iter(self.letters)

    def __bool__(self):
        return True  # an empty DLQ is still a DLQ

    def stats(self):
        return {"name": self.name, "size": len(self.letters),
                "evicted": self.evicted}
