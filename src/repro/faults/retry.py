"""Client-side resilience: retry policies and circuit breakers.

A :class:`RetryPolicy` wraps an *attempt factory* (a zero-argument
callable returning a fresh simnet process/event) and re-issues it through
transient failures with seeded-jitter exponential backoff, per-attempt
timeouts, an overall deadline, and an optional retry budget.  A
:class:`CircuitBreaker` sits in front of the attempts and fast-fails
(:class:`~repro.errors.CircuitOpenError`) once the target looks dead, so
a down dependency costs microseconds instead of full timeout chains.

Both are deterministic: backoff jitter comes from a ``random.Random``
seeded at construction, and all timing is virtual time.

At-least-once caveat: an attempt abandoned by the per-attempt timeout may
still complete server-side.  Retries are therefore only safe for
idempotent operations (all store ops here are; ``create`` retries may
surface :class:`~repro.errors.AlreadyExistsError`, which callers should
treat as success).
"""

import random

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    RPCStatusError,
)
from repro.obs.context import current_context

#: RPC status codes considered transient (kept as literals so this module
#: does not import :mod:`repro.rpc`).  ``RESOURCE_EXHAUSTED`` is the RPC
#: face of admission control / full accept queues: back off and retry.
_RETRYABLE_RPC_CODES = ("UNAVAILABLE", "DEADLINE_EXCEEDED",
                        "RESOURCE_EXHAUSTED")


def default_retryable(exc):
    """True when ``exc`` marks a transient, safe-to-retry failure."""
    if getattr(exc, "retryable", False):
        return True
    if isinstance(exc, RPCStatusError):
        return exc.code in _RETRYABLE_RPC_CODES
    return False


class CircuitBreaker:
    """Closed / open / half-open breaker over one logical dependency.

    ``record_failure`` counts *consecutive* transient failures; at
    ``failure_threshold`` the circuit opens and :meth:`allow` rejects
    calls until ``reset_timeout`` seconds of virtual time pass.  The
    first call after that runs as a half-open probe: success closes the
    circuit, failure re-opens it for another full window.
    """

    def __init__(self, env, failure_threshold=5, reset_timeout=0.25,
                 half_open_max=1, name=""):
        self.env = env
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_max = int(half_open_max)
        self.name = name
        self.state = "closed"
        self.failures = 0
        self._opened_at = None
        self._probes = 0
        self.opened_count = 0
        self.rejected = 0

    def allow(self):
        """May a call proceed right now?  (Counts rejections.)"""
        if self.state == "open":
            if self.env.now - self._opened_at >= self.reset_timeout:
                self.state = "half_open"
                self._probes = 0
            else:
                self.rejected += 1
                return False
        if self.state == "half_open":
            if self._probes >= self.half_open_max:
                self.rejected += 1
                return False
            self._probes += 1
        return True

    def record_success(self):
        self.state = "closed"
        self.failures = 0

    def record_failure(self):
        self.failures += 1
        if self.state == "half_open" or (
            self.state == "closed" and self.failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self):
        self.state = "open"
        self._opened_at = self.env.now
        self.opened_count += 1

    def stats(self):
        return {
            "state": self.state,
            "opened": self.opened_count,
            "rejected": self.rejected,
        }

    def __repr__(self):
        return f"<CircuitBreaker {self.name or id(self):#x} {self.state}>"


class RetryPolicy:
    """Exponential backoff + jitter over an idempotent attempt factory.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (1 = no retries).
    base_backoff, multiplier, max_backoff:
        Sleep before retry *n* is ``min(max_backoff,
        base_backoff * multiplier**(n-1))``, jittered.
    jitter:
        Each sleep is scaled by ``uniform(1 - jitter, 1 + jitter)`` from
        the policy's seeded RNG.
    attempt_timeout:
        Per-attempt deadline; a slower attempt is abandoned and raises
        :class:`~repro.errors.DeadlineExceededError` (itself retryable).
    deadline:
        Overall wall-clock (virtual) budget across all attempts.
    budget:
        Maximum *retries* (excluding first attempts) this policy instance
        may spend across all operations sharing it -- a global retry
        budget preventing retry storms.  ``None`` = unlimited.
    retryable:
        Predicate classifying exceptions; defaults to
        :func:`default_retryable`.
    """

    def __init__(self, max_attempts=4, base_backoff=0.01, multiplier=2.0,
                 max_backoff=0.5, jitter=0.25, attempt_timeout=None,
                 deadline=None, budget=None, seed=0, retryable=None):
        self.max_attempts = int(max_attempts)
        self.base_backoff = float(base_backoff)
        self.multiplier = float(multiplier)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.attempt_timeout = attempt_timeout
        self.deadline = deadline
        self.budget = budget
        self.retryable = retryable if retryable is not None else default_retryable
        self._rng = random.Random(seed)
        # Counters (surfaced through repro.metrics.telemetry).
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.giveups = 0
        self.rejected = 0

    def backoff_delay(self, attempt):
        """Jittered sleep before retry number ``attempt`` (1-based)."""
        base = min(self.max_backoff,
                   self.base_backoff * self.multiplier ** (attempt - 1))
        if self.jitter <= 0:
            return base
        return base * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    def execute(self, env, factory, breaker=None):
        """Run ``factory()`` attempts under this policy; returns a process.

        ``factory`` must return a *fresh* simnet event per call (typically
        ``lambda: env.process(...)``).  With ``breaker`` given, each
        attempt first asks the breaker; rejected calls raise
        :class:`~repro.errors.CircuitOpenError` without touching the
        network.
        """
        # Captured synchronously at call creation: retries then annotate
        # the calling span even though attempts run unbound later.
        ctx = current_context()
        return env.process(self._run(env, factory, breaker, ctx))

    def _run(self, env, factory, breaker, ctx=None):
        sink = ctx.sink if ctx is not None else None
        start = env.now
        attempt = 0
        while True:
            attempt += 1
            if breaker is not None and not breaker.allow():
                self.rejected += 1
                if sink is not None:
                    sink.annotate(ctx, "circuit-rejected",
                                  breaker=breaker.name or "?")
                raise CircuitOpenError(
                    f"circuit {breaker.name or '?'} is open"
                )
            self.attempts += 1
            try:
                work = factory()
                if self.attempt_timeout is None:
                    result = yield work
                else:
                    # Abandoned attempts may fail later; pre-defuse so a
                    # late failure cannot crash the event loop.
                    work._defused = True
                    timer = env.timeout(self.attempt_timeout)
                    yield env.any_of([work, timer])
                    if not work.processed:
                        self.timeouts += 1
                        raise DeadlineExceededError(
                            f"attempt {attempt} timed out after "
                            f"{self.attempt_timeout}s"
                        )
                    if not work.ok:
                        raise work.value
                    result = work.value
            except ReproError as exc:
                if not self.retryable(exc):
                    if breaker is not None:
                        # The dependency answered; the call failed for
                        # application reasons -- not a circuit signal.
                        breaker.record_success()
                    raise
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= self.max_attempts:
                    self.giveups += 1
                    if sink is not None:
                        sink.annotate(ctx, "giveup", attempts=attempt,
                                      error=type(exc).__name__)
                    raise
                if self.budget is not None and self.retries >= self.budget:
                    self.giveups += 1
                    if sink is not None:
                        sink.annotate(ctx, "giveup", attempts=attempt,
                                      error="retry budget exhausted")
                    raise
                delay = self.backoff_delay(attempt)
                if (self.deadline is not None
                        and env.now - start + delay >= self.deadline):
                    self.giveups += 1
                    if sink is not None:
                        sink.annotate(ctx, "giveup", attempts=attempt,
                                      error="deadline exhausted")
                    raise DeadlineExceededError(
                        f"deadline {self.deadline}s exhausted after "
                        f"{attempt} attempts"
                    ) from exc
                self.retries += 1
                if sink is not None:
                    sink.annotate(ctx, "retry", attempt=attempt, delay=delay,
                                  error=type(exc).__name__)
                yield env.timeout(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result

    def stats(self):
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "giveups": self.giveups,
            "rejected": self.rejected,
        }

    def __repr__(self):
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"backoff={self.base_backoff}>")
