"""Chaos harness: the retail app under a seeded fault schedule.

This is the end-to-end resilience experiment shared by
``benchmarks/bench_chaos_recovery.py`` and ``knactor demo retail
--chaos``: build the Knactor retail app with a
:class:`~repro.faults.retry.RetryPolicy` on every store client, schedule
a deterministic :class:`~repro.faults.plan.FaultPlan` (at least one
store crash, one partition, and one drop-rate window), drive a seeded
order workload *through* the faults, then let the system converge and
check two properties:

- **convergence**: every placed order ends ``fulfilled`` with a tracking
  id -- the level-triggered reconcilers and integrator re-derive
  everything after resync;
- **zero lost updates**: every order whose create was acknowledged (or
  observed as already-committed by an abandoned attempt) survives the
  crash -- the apiserver backend's WAL replay makes this hold.

Everything is seeded, so the same seed reproduces the identical fault
trace and final state -- the determinism the benchmark asserts.
"""

import hashlib
import random

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER
from repro.errors import (
    AlreadyExistsError,
    CircuitOpenError,
    DeadlineExceededError,
    UnavailableError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.metrics.telemetry import resilience_snapshot

#: The store backend's network location in the retail app.
BACKEND = "object-backend"


def default_retail_plan(seed=0):
    """A seeded schedule guaranteed to contain the required fault triad:
    a store crash, a partition, and a drop-rate window, plus a transient
    brown-out and an integrator kill for good measure."""
    rng = random.Random(seed)
    plan = FaultPlan()
    plan.crash_store(
        BACKEND,
        at=0.4 + rng.uniform(0.0, 0.2),
        duration=0.25 + rng.uniform(0.0, 0.15),
    )
    plan.partition(
        BACKEND, "shipping",
        at=1.2 + rng.uniform(0.0, 0.2),
        duration=0.15 + rng.uniform(0.0, 0.1),
    )
    plan.drop_window(
        BACKEND, "checkout",
        rate=0.3 + rng.uniform(0.0, 0.3),
        at=1.8 + rng.uniform(0.0, 0.2),
        duration=0.2 + rng.uniform(0.0, 0.1),
        seed=rng.randrange(2**31),
    )
    plan.unavailable_window(
        BACKEND,
        at=2.5 + rng.uniform(0.0, 0.2),
        duration=0.08 + rng.uniform(0.0, 0.06),
    )
    plan.kill_process(
        "retail-cast",
        at=3.0 + rng.uniform(0.0, 0.2),
        duration=0.1 + rng.uniform(0.0, 0.1),
    )
    return plan


def run_retail_chaos(seed=0, orders=6, profile=K_APISERVER, plan=None,
                     spacing=0.6, max_converge_seconds=120.0):
    """Run the experiment; returns a plain-dict report (see module doc)."""
    retry = RetryPolicy(
        max_attempts=8, base_backoff=0.01, max_backoff=0.3,
        jitter=0.3, seed=seed,
    )
    app = RetailKnactorApp.build(
        profile=profile, seed=seed, with_notify=False, retry_policy=retry
    )
    env = app.env
    injector = FaultInjector(
        env,
        app.runtime.network,
        stores=[app.de.backend],
        processes={
            "retail-cast": app.cast,
            "checkout-reconciler": app.runtime.knactors["checkout"].reconciler,
        },
        tracer=app.tracer,
    )
    plan = plan if plan is not None else default_retail_plan(seed)
    injector.schedule(plan)

    workload = OrderWorkload(seed=seed)
    handle = app.runtime.handle_of("checkout")
    load_rng = random.Random(seed + 1)
    placed = []

    def load(env):
        for _ in range(orders):
            key, data = workload.next_order()
            while True:
                try:
                    yield handle.create(key, data)
                    break
                except AlreadyExistsError:
                    # An attempt abandoned by a timeout actually committed
                    # server-side: at-least-once, treated as success.
                    break
                except (UnavailableError, DeadlineExceededError,
                        CircuitOpenError):
                    # Retry policy exhausted mid-outage; pause and re-issue.
                    yield env.timeout(0.08 * load_rng.uniform(0.5, 1.5))
            placed.append(key)
            app.tracer.record("request", "start", key=key)
            yield env.timeout(spacing)

    env.run(until=env.process(load(env)))
    # Let the remaining scheduled faults play out, then converge.
    if plan.horizon > env.now:
        env.run(until=plan.horizon + 0.05)
    app.run_until_quiet(max_seconds=max_converge_seconds)

    # Operator replay: any cid parked in a DLQ during the outages gets
    # one more chance now that the faults have healed.
    replayed = [letter.key for letter in app.cast.dead_letters]
    for cid in replayed:
        app.cast._requeue_cid(cid)
    for knactor in app.runtime.knactors.values():
        reconciler = knactor.reconciler
        if reconciler is None:
            continue
        for letter in reconciler.dead_letters:
            replayed.append(letter.key)
            reconciler.requeue(letter.key)
    if replayed:
        app.run_until_quiet(max_seconds=max_converge_seconds)
    converged_at = env.now

    def collect(env):
        states = {}
        for key in placed:
            view = yield app.order(key)
            states[key] = view["data"]
        return states

    states = env.run(until=env.process(collect(env)))
    lost = [k for k in placed if states.get(k) is None]
    unfulfilled = [
        k for k, data in states.items()
        if data is not None and data.get("status") != "fulfilled"
    ]
    digest = hashlib.sha256()
    for line in injector.trace():
        digest.update(line.encode())
    for key in placed:
        data = states.get(key) or {}
        digest.update(
            f"{key}={data.get('status')}:{data.get('trackingID')}".encode()
        )

    return {
        "seed": seed,
        "orders": len(placed),
        "placed": list(placed),
        "lost": lost,
        "unfulfilled": unfulfilled,
        "converged": not lost and not unfulfilled,
        "convergence_time": converged_at,
        "fault_trace": injector.trace(),
        "fault_counts": {
            kind: plan.count(kind)
            for kind in ("crash", "partition", "drop", "latency_spike",
                         "unavailable", "kill")
        },
        "dlq_replayed": replayed,
        "retry": retry.stats(),
        "resilience": resilience_snapshot(app.runtime),
        "order_states": {
            k: (states.get(k) or {}).get("status") for k in placed
        },
        "state_digest": digest.hexdigest(),
        "wal_length": getattr(app.de.backend, "wal_length", None),
        "messages_lost": app.runtime.network.messages_lost,
    }


def describe_report(report):
    """Render a chaos report as plain text (used by the CLI)."""
    lines = [
        f"chaos run  seed={report['seed']}  orders={report['orders']}",
        f"  converged:        {report['converged']}",
        f"  convergence time: {report['convergence_time']:.3f}s (virtual)",
        f"  lost updates:     {len(report['lost'])}",
        f"  unfulfilled:      {len(report['unfulfilled'])}",
        f"  messages lost:    {report['messages_lost']}",
        f"  retries: {report['retry']}",
        f"  dlq replayed: {len(report['dlq_replayed'])}",
        "  fault schedule:",
    ]
    lines += [f"    {line}" for line in report["fault_trace"]]
    lines.append("  order states:")
    for key, status in report["order_states"].items():
        lines.append(f"    {key}: {status}")
    return "\n".join(lines)
