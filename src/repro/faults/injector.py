"""Executes a :class:`~repro.faults.plan.FaultPlan` on a live simulation.

The injector resolves each action's target -- the shared
:class:`~repro.simnet.network.Network` for link faults, registered
:class:`~repro.store.base.StoreServer` instances for store faults,
registered killable processes (reconcilers, Cast workers) for process
faults -- and schedules begin/revert callbacks at the action's virtual
times.  Every transition is appended to :attr:`FaultInjector.events`, a
plain list of ``(time, phase, kind, target)`` tuples: two runs with the
same seed/plan must produce byte-identical logs, which is how the chaos
benchmark asserts determinism.

Overlapping windows of the same fault on the same target are
reference-counted: the fault is reverted only when the *last* window
ends.  (Overlapping drop windows on one pair share the last-installed
rate until both end -- precise enough for chaos schedules.)
"""

from repro.errors import ConfigurationError
from repro.faults.plan import (
    CRASH,
    DROP,
    KILL,
    LATENCY_SPIKE,
    PARTITION,
    UNAVAILABLE,
)


class FaultInjector:
    """Schedules and reverts faults from a plan.

    Plan times are relative to the virtual time at which
    :meth:`schedule` is called.
    """

    def __init__(self, env, network, stores=(), processes=None, tracer=None):
        self.env = env
        self.network = network
        self.tracer = tracer
        self._stores = {}
        for store in stores:
            self.register_store(store)
        self._processes = {}
        for name, proc in (processes or {}).items():
            self.register_process(name, proc)
        self._active = {}  # (kind, normalized target) -> live window count
        self.events = []  # (time, "begin"|"end", kind, target-string)
        self.injected = 0

    def register_store(self, server):
        """Make ``server`` (a StoreServer) targetable by its location."""
        self._stores[server.location] = server
        return server

    def register_process(self, name, process):
        """Make a killable/restartable component targetable as ``name``."""
        for method in ("kill", "restart"):
            if not callable(getattr(process, method, None)):
                raise ConfigurationError(
                    f"process {name!r} has no {method}() method"
                )
        self._processes[name] = process
        return process

    # -- scheduling --------------------------------------------------------

    def schedule(self, plan):
        """Install begin/revert timers for every action in ``plan``."""
        for action in plan.sorted_actions():
            begin = self.env.timeout(action.at)
            begin.callbacks.append(lambda _evt, a=action: self._begin(a))
            end = self.env.timeout(action.ends_at)
            end.callbacks.append(lambda _evt, a=action: self._end(a))
        return self

    # -- target resolution -------------------------------------------------

    def _store(self, location):
        try:
            return self._stores[location]
        except KeyError:
            raise ConfigurationError(
                f"no store registered at {location!r} "
                f"(have {sorted(self._stores)})"
            ) from None

    def _process(self, name):
        try:
            return self._processes[name]
        except KeyError:
            raise ConfigurationError(
                f"no process registered as {name!r} "
                f"(have {sorted(self._processes)})"
            ) from None

    @staticmethod
    def _key(action):
        target = action.target
        if action.kind in (PARTITION, DROP, LATENCY_SPIKE):
            target = tuple(sorted(target))  # symmetric link faults
        return (action.kind, target)

    def _log(self, phase, action):
        target = "->".join(action.target)
        self.events.append((self.env.now, phase, action.kind, target))
        if self.tracer is not None:
            self.tracer.record(
                "fault", f"{action.kind}-{phase}", target=target
            )

    # -- transitions -------------------------------------------------------

    def _begin(self, action):
        key = self._key(action)
        self._active[key] = self._active.get(key, 0) + 1
        self.injected += 1
        kind = action.kind
        if kind == PARTITION:
            self.network.partition(*action.target)
        elif kind == DROP:
            src, dst = action.target
            self.network.set_drop_rate(
                src, dst, action.param("rate"), seed=action.param("seed", 0)
            )
        elif kind == LATENCY_SPIKE:
            src, dst = action.target
            self.network.set_extra_latency(src, dst, action.param("extra"))
        elif kind == CRASH:
            self._store(action.target[0]).crash()
        elif kind == UNAVAILABLE:
            self._store(action.target[0]).set_available(False)
        elif kind == KILL:
            process = self._process(action.target[0])
            phase = action.param("txn_phase")
            if phase is not None and callable(
                getattr(process, "arm_phase_kill", None)
            ):
                # Phase-targeted kill (FaultPlan.kill_during_txn): the
                # process dies at the protocol boundary, not at a time.
                # Restart still happens at the window's end, below.
                process.arm_phase_kill(phase, restart_after=None)
            else:
                process.kill()
        self._log("begin", action)

    def _end(self, action):
        key = self._key(action)
        self._active[key] = self._active.get(key, 1) - 1
        if self._active[key] > 0:
            # An overlapping window still holds this fault.
            self._log("end", action)
            return
        kind = action.kind
        if kind == PARTITION:
            self.network.heal(*action.target)
        elif kind == DROP:
            self.network.clear_drop_rate(*action.target)
        elif kind == LATENCY_SPIKE:
            self.network.clear_extra_latency(*action.target)
        elif kind == CRASH:
            self._store(action.target[0]).restart()
        elif kind == UNAVAILABLE:
            location = action.target[0]
            # Do not resurrect a store that a crash window still holds
            # down -- its restart path owes a WAL replay.
            if not self._active.get((CRASH, (location,)), 0):
                self._store(location).set_available(True)
        elif kind == KILL:
            process = self._process(action.target[0])
            if action.param("txn_phase") is not None:
                # Withdraw the arm if it never fired; restart (with
                # recovery) only if it did.
                if callable(getattr(process, "disarm_phase_kill", None)):
                    process.disarm_phase_kill()
                if not getattr(process, "alive", True):
                    process.restart()
            else:
                process.restart()
        self._log("end", action)

    # -- introspection -----------------------------------------------------

    def active_faults(self):
        """Currently-live ``(kind, target)`` keys (for assertions)."""
        return sorted(k for k, n in self._active.items() if n > 0)

    def trace(self):
        """The deterministic event log, formatted for comparison."""
        return [
            f"{t:.6f} {phase} {kind} {target}"
            for (t, phase, kind, target) in self.events
        ]
