"""Deterministic fault injection and the resilience layer over it.

Two halves, by design in one package:

- *Injection* (:class:`FaultPlan`, :class:`FaultInjector`): seedable
  schedules of link faults (partition / drop window / latency spike),
  store faults (crash + restart, transient unavailability), and process
  faults (kill / restart a reconciler or Cast worker), executed as
  discrete events so every chaos run is exactly reproducible.
- *Resilience* (:class:`RetryPolicy`, :class:`CircuitBreaker`,
  :class:`DeadLetterQueue`): what the composition substrate does about
  it -- seeded-jitter retries with timeouts/deadlines/budgets, fast-fail
  circuit breaking, and dead-lettering for poison work items.

The chaos harness that drives the retail app through a fault schedule
lives in :mod:`repro.faults.chaos` (imported lazily: it pulls in the
application stack).
"""

from repro.faults.dlq import DeadLetter, DeadLetterQueue
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultAction, FaultPlan
from repro.faults.retry import CircuitBreaker, RetryPolicy, default_retryable

__all__ = [
    "CircuitBreaker",
    "DeadLetter",
    "DeadLetterQueue",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "default_retryable",
]
