"""Declarative, seedable fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultAction` records --
*what* goes wrong, *where*, *when*, and for *how long*.  Plans are pure
data: building one has no side effects, the same plan can be replayed
against fresh environments, and :meth:`FaultPlan.random` derives an
entire chaos schedule deterministically from one integer seed.  The
:class:`~repro.faults.injector.FaultInjector` turns a plan into scheduled
events on a live simulation.
"""

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Fault kinds understood by the injector.
PARTITION = "partition"
DROP = "drop"
LATENCY_SPIKE = "latency_spike"
CRASH = "crash"
UNAVAILABLE = "unavailable"
KILL = "kill"

_KINDS = (PARTITION, DROP, LATENCY_SPIKE, CRASH, UNAVAILABLE, KILL)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: ``kind`` hits ``target`` during [at, at+duration).

    ``target`` is ``(src, dst)`` for link faults, a store location for
    store faults, and a registered process name for ``kill``.  ``params``
    carries kind-specific knobs (drop ``rate``/``seed``, spike ``extra``).
    """

    at: float
    duration: float
    kind: str
    target: tuple
    params: tuple = ()

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ConfigurationError(f"unknown fault kind {self.kind!r}")
        if self.at < 0 or self.duration < 0:
            raise ConfigurationError(
                f"fault times must be non-negative: at={self.at} "
                f"duration={self.duration}"
            )

    @property
    def ends_at(self):
        return self.at + self.duration

    def param(self, name, default=None):
        return dict(self.params).get(name, default)

    def describe(self):
        where = "->".join(self.target) if len(self.target) > 1 else self.target[0]
        extras = " ".join(f"{k}={v}" for k, v in self.params)
        tail = f" [{extras}]" if extras else ""
        return (f"t={self.at:.3f}s +{self.duration:.3f}s "
                f"{self.kind} {where}{tail}")


@dataclass
class FaultPlan:
    """A schedule of fault actions, built fluently::

        plan = (FaultPlan()
                .crash_store("object-backend", at=0.5, duration=0.4)
                .partition("object-backend", "checkout", at=1.2, duration=0.3)
                .drop_window("*", "shipping", rate=0.4, at=2.0, duration=0.5))
    """

    actions: list = field(default_factory=list)

    def _add(self, action):
        self.actions.append(action)
        return self

    # -- link faults -------------------------------------------------------

    def partition(self, a, b, at, duration):
        """Sever all traffic between ``a`` and ``b`` (both directions)."""
        return self._add(FaultAction(at, duration, PARTITION, (a, b)))

    def drop_window(self, src, dst, rate, at, duration, seed=0):
        """Lose a seeded-random ``rate`` fraction of ``src <-> dst`` traffic."""
        return self._add(FaultAction(
            at, duration, DROP, (src, dst),
            params=(("rate", float(rate)), ("seed", int(seed))),
        ))

    def latency_spike(self, src, dst, extra, at, duration):
        """Add ``extra`` seconds to every ``src <-> dst`` delivery."""
        return self._add(FaultAction(
            at, duration, LATENCY_SPIKE, (src, dst),
            params=(("extra", float(extra)),),
        ))

    # -- store faults ------------------------------------------------------

    def crash_store(self, location, at, duration):
        """Hard-kill the store at ``location``; restart after ``duration``.

        What survives the crash is backend-specific: the apiserver-like
        store replays its WAL, the Redis-like store restarts empty.
        """
        return self._add(FaultAction(at, duration, CRASH, (location,)))

    def unavailable_window(self, location, at, duration):
        """Transient brown-out: ops fail retryably, state/watches survive."""
        return self._add(FaultAction(at, duration, UNAVAILABLE, (location,)))

    # -- process faults ----------------------------------------------------

    def kill_process(self, name, at, duration):
        """Kill a registered process (reconciler/Cast); restart after."""
        return self._add(FaultAction(at, duration, KILL, (name,)))

    def kill_during_txn(self, process, phase, at, duration):
        """Kill ``process`` the moment a transaction enters ``phase``.

        Deterministic commit-point chaos: instead of racing a timer
        against the protocol, the registered process (a
        :class:`~repro.txn.TxnCoordinator`) arms itself at ``at`` and
        dies exactly when the next coordination crosses the ``phase``
        boundary -- ``"prepare"`` (participants locked, nothing
        decided), ``"commit"`` (decision durable, participants not yet
        told: the classic in-doubt window), ``"abort"``, or
        ``"compensate"`` (saga rollback half done).  Restarted (with
        recovery) at the window's end, like any kill.  If no transaction
        reaches the phase inside the window, the arm is withdrawn and
        nothing dies.
        """
        from repro.txn.coordinator import PHASES

        if phase not in PHASES:
            raise ConfigurationError(
                f"unknown txn phase {phase!r} (use one of {PHASES})"
            )
        return self._add(FaultAction(
            at, duration, KILL, (process,),
            params=(("txn_phase", phase),),
        ))

    # -- introspection -----------------------------------------------------

    def sorted_actions(self):
        """Actions in schedule order (stable for equal start times)."""
        return sorted(self.actions, key=lambda a: a.at)

    @property
    def horizon(self):
        """Virtual time when the last fault has been reverted."""
        return max((a.ends_at for a in self.actions), default=0.0)

    def count(self, kind):
        return sum(1 for a in self.actions if a.kind == kind)

    def describe(self):
        return [a.describe() for a in self.sorted_actions()]

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    # -- generated chaos ---------------------------------------------------

    @classmethod
    def random(cls, seed, horizon, endpoints=(), stores=(), processes=(),
               n_faults=6, min_duration=0.02, max_duration=0.3):
        """A deterministic random schedule covering every fault class.

        ``endpoints`` are link endpoints eligible for partitions / drop
        windows / spikes; ``stores`` are crashable store locations;
        ``processes`` are killable registered process names.  The same
        ``seed`` always yields the identical plan.
        """
        rng = random.Random(seed)
        plan = cls()
        kinds = []
        if len(endpoints) >= 2:
            kinds += [PARTITION, DROP, LATENCY_SPIKE]
        if stores:
            kinds += [CRASH, UNAVAILABLE]
        if processes:
            kinds += [KILL]
        if not kinds:
            raise ConfigurationError("no fault targets given")
        for i in range(n_faults):
            # Cycle through the kinds first so every class appears once
            # before randomness takes over.
            kind = kinds[i] if i < len(kinds) else rng.choice(kinds)
            at = rng.uniform(0.0, horizon)
            duration = rng.uniform(min_duration, max_duration)
            if kind in (PARTITION, DROP, LATENCY_SPIKE):
                src, dst = rng.sample(list(endpoints), 2)
                if kind == PARTITION:
                    plan.partition(src, dst, at=at, duration=duration)
                elif kind == DROP:
                    plan.drop_window(src, dst, rate=rng.uniform(0.2, 0.7),
                                     at=at, duration=duration,
                                     seed=rng.randrange(2**31))
                else:
                    plan.latency_spike(src, dst,
                                       extra=rng.uniform(0.005, 0.05),
                                       at=at, duration=duration)
            elif kind in (CRASH, UNAVAILABLE):
                location = rng.choice(list(stores))
                if kind == CRASH:
                    plan.crash_store(location, at=at, duration=duration)
                else:
                    plan.unavailable_window(location, at=at, duration=duration)
            else:
                plan.kill_process(rng.choice(list(processes)),
                                  at=at, duration=duration)
        return plan
