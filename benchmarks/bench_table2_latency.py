"""Table 2: shipment-request latency breakdown per setup.

Runs the online retail app under all four setups (RPC, K-apiserver,
K-redis, K-redis-udf) on the discrete-event substrate and prints the
paper's table next to the measured one.  Absolute numbers depend on the
latency calibration in :mod:`repro.config`; the asserted claims are the
paper's qualitative takeaways.
"""

import pytest

from repro.apps.retail.measure import (
    PAPER_TABLE2,
    run_knactor_setup,
    run_rpc_setup,
)
from repro.metrics.report import Table

STAGES = ("C-I", "I", "I-S", "S", "Prop.", "Total")
ORDERS = 15


@pytest.fixture(scope="module")
def breakdowns():
    rows = {"RPC": run_rpc_setup(orders=ORDERS)}
    for setup in ("K-apiserver", "K-redis", "K-redis-udf"):
        rows[setup] = run_knactor_setup(setup, orders=ORDERS)
    return rows


def _render(rows_ms, title):
    table = Table(["Setup"] + list(STAGES) + ["(ms)"], title=title)
    for setup, row in rows_ms.items():
        cells = [setup] + [
            None if row.get(stage) is None else round(row[stage], 2)
            for stage in STAGES
        ] + [""]
        table.add_row(*cells)
    return table.render()


def test_table2_report(breakdowns, report):
    measured = {name: bd.row() for name, bd in breakdowns.items()}
    text = _render(PAPER_TABLE2, "Table 2 (paper)")
    text += "\n\n" + _render(measured, f"Table 2 (measured, {ORDERS} requests/setup)")
    report(text)
    for name, bd in breakdowns.items():
        assert bd.count() >= ORDERS - 1, f"{name}: requests went unmeasured"


def test_shape_claims(breakdowns):
    rows = {name: bd.row() for name, bd in breakdowns.items()}
    # 1. The choice of DE substantially impacts propagation latency.
    assert rows["K-apiserver"]["Prop."] > 4 * rows["K-redis"]["Prop."]
    # 2. Push-down further reduces integrator<->store movement.
    assert rows["K-redis-udf"]["I-S"] < rows["K-redis"]["I-S"] / 2
    # 3. Overhead is small relative to the app's bottleneck.
    for name, row in rows.items():
        assert row["S"] > 0.9 * row["Total"], name
    # 4. Direct RPC remains the lowest-latency path.
    assert rows["RPC"]["Prop."] <= min(
        rows["K-apiserver"]["Prop."], rows["K-redis"]["Prop."]
    )


@pytest.mark.parametrize("setup", ["K-apiserver", "K-redis", "K-redis-udf"])
def test_bench_knactor_setup(benchmark, setup):
    """Wall-clock cost of simulating one full setup (5 requests)."""
    result = benchmark.pedantic(
        lambda: run_knactor_setup(setup, orders=5), rounds=3, iterations=1
    )
    assert result.count() >= 4


def test_bench_rpc_setup(benchmark):
    result = benchmark.pedantic(
        lambda: run_rpc_setup(orders=5), rounds=3, iterations=1
    )
    assert result.count() == 5
