"""Ablation: choice of Data Exchange backend under increasing load.

§3.3's first optimization lever is "use DEs optimized for high
performance".  This bench sweeps the order arrival rate against both
Object backends and reports mean propagation latency: the apiserver-class
backend saturates (single serialized write path with ~5 ms writes) while
the in-memory backend stays flat.
"""

import pytest

from repro.apps.retail.measure import run_knactor_setup
from repro.metrics.report import Table

SPACINGS = (2.0, 0.1, 0.01)  # seconds between orders (rate = 1/spacing)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for setup in ("K-apiserver", "K-redis"):
        for spacing in SPACINGS:
            bd = run_knactor_setup(setup, orders=20, spacing=spacing)
            results[(setup, spacing)] = bd
    return results


def test_de_choice_report(sweep, report):
    table = Table(
        ["Backend", "orders/s", "Prop. mean (ms)", "Prop. p99 (ms)"],
        title="Ablation: DE backend x load (propagation latency)",
    )
    for (setup, spacing), bd in sorted(sweep.items()):
        summary = bd.summary("Prop.")
        table.add_row(
            setup,
            round(1.0 / spacing, 1),
            round(summary["mean"] * 1000, 2),
            round(summary["p99"] * 1000, 2),
        )
    report(table.render())


def test_apiserver_degrades_under_load(sweep):
    light = sweep[("K-apiserver", 2.0)].mean("Prop.")
    heavy = sweep[("K-apiserver", 0.01)].mean("Prop.")
    assert heavy > light * 1.5


def test_memkv_stays_flat(sweep):
    light = sweep[("K-redis", 2.0)].mean("Prop.")
    heavy = sweep[("K-redis", 0.01)].mean("Prop.")
    assert heavy < light * 3

    # And it beats the apiserver at every load level.
    for spacing in SPACINGS:
        assert (
            sweep[("K-redis", spacing)].mean("Prop.")
            < sweep[("K-apiserver", spacing)].mean("Prop.")
        )


@pytest.mark.parametrize("setup", ["K-apiserver", "K-redis"])
def test_bench_setup_under_load(benchmark, setup):
    result = benchmark.pedantic(
        lambda: run_knactor_setup(setup, orders=5, spacing=0.2),
        rounds=3, iterations=1,
    )
    assert result.count() >= 4
