"""Observability overhead: tracing-on vs tracing-off on the retail app.

The causal tracer and metrics registry are designed to be **virtual-time
neutral**: trace contexts ride out-of-band (stripped before request
sizing), span bookkeeping happens in synchronous sections, and no
instrumentation path adds a simulated delay.  The simulated ops
throughput with tracing enabled must therefore stay within 10% of the
disabled run -- that is the gated claim.  Wall-clock overhead (the real
cost of the Python bookkeeping) is reported informationally; it is not
gated because CI machine noise would make it flaky.

The traced run's artifacts are also written for CI upload:
``BENCH_obs_trace.json`` (Chrome trace-event JSON of every causal span)
and ``BENCH_obs_metrics.json`` (the full registry snapshot).

Run directly (``python benchmarks/bench_obs_overhead.py [--smoke]``),
via ``knactor bench obs-overhead``, or under pytest
(``pytest benchmarks/bench_obs_overhead.py``).
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER

SEED = 23
_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = _ROOT / "BENCH_obs_overhead.json"
TRACE_OUTPUT = _ROOT / "BENCH_obs_trace.json"
METRICS_OUTPUT = _ROOT / "BENCH_obs_metrics.json"

ORDERS = 24
SMOKE_ORDERS = 8
PATCH_ROUNDS = 6
SMOKE_PATCH_ROUNDS = 3

#: The gated floor: simulated throughput with tracing on, as a fraction
#: of tracing off.  The ISSUE budget is 10%; neutrality makes it ~1.0.
MIN_SIM_RATIO = 0.9


def run_case(obs, orders=ORDERS, patch_rounds=PATCH_ROUNDS):
    """One retail order+patch burst, with or without the obs plane."""
    wall_started = time.perf_counter()
    app = RetailKnactorApp.build(
        profile=K_APISERVER, with_notify=True, seed=SEED, obs=obs or None,
    )
    workload = OrderWorkload(seed=SEED)
    batch = workload.orders(orders)

    backend = app.de.backend
    ops_before = sum(backend.op_counts.values())
    started = app.env.now
    burst = [app.place_order(key, data) for key, data in batch]
    app.env.run(until=app.env.all_of(burst))
    window = app.env.now - started
    ops_in_window = sum(backend.op_counts.values()) - ops_before
    app.run_until_quiet(max_seconds=300.0)

    owner = app.runtime.handle_of("checkout")
    patches = [
        owner.patch(key, {"email": f"shopper+{round_}@example.com"})
        for round_ in range(patch_rounds)
        for key in app.orders_placed
    ]
    app.env.run(until=app.env.all_of(patches))
    app.run_until_quiet(max_seconds=120.0)

    wall = time.perf_counter() - wall_started
    total_ops = sum(backend.op_counts.values())
    case = {
        "obs": bool(obs),
        "orders": orders,
        "burst_window_s": window,
        "ops_in_burst": ops_in_window,
        "ops_per_sim_sec": ops_in_window / window if window > 0 else 0.0,
        "total_store_ops": total_ops,
        "sim_seconds": app.env.now,
        "wall_seconds": wall,
    }
    if obs:
        plane = app.runtime.obs
        case["spans"] = len(plane.causal.spans)
        case["traces"] = len(plane.causal.trace_ids())
        case["trace_events"] = plane.causal.to_chrome_trace()
        case["metrics_snapshot"] = plane.snapshot()
    return case


def run_sweep(smoke=False):
    orders = SMOKE_ORDERS if smoke else ORDERS
    patch_rounds = SMOKE_PATCH_ROUNDS if smoke else PATCH_ROUNDS
    baseline = run_case(False, orders=orders, patch_rounds=patch_rounds)
    traced = run_case(True, orders=orders, patch_rounds=patch_rounds)
    sim_ratio = (
        traced["ops_per_sim_sec"] / baseline["ops_per_sim_sec"]
        if baseline["ops_per_sim_sec"] else 0.0
    )
    wall_overhead = (
        traced["wall_seconds"] / baseline["wall_seconds"] - 1.0
        if baseline["wall_seconds"] else 0.0
    )
    trace_events = traced.pop("trace_events")
    metrics_snapshot = traced.pop("metrics_snapshot")
    return {
        "schema": 1,
        "bench": "obs_overhead",
        "seed": SEED,
        "smoke": smoke,
        "baseline": baseline,
        "traced": traced,
        "sim_throughput_ratio": sim_ratio,
        "min_sim_ratio": MIN_SIM_RATIO,
        "wall_overhead_frac": wall_overhead,
        "same_store_ops": (
            baseline["total_store_ops"] == traced["total_store_ops"]
        ),
        "_trace_events": trace_events,
        "_metrics_snapshot": metrics_snapshot,
    }


def write_results(results, path=OUTPUT, trace_path=TRACE_OUTPUT,
                  metrics_path=METRICS_OUTPUT):
    trace_events = results.pop("_trace_events")
    metrics_snapshot = results.pop("_metrics_snapshot")
    # Chrome trace viewers ignore unknown top-level keys, so the version
    # stamp rides alongside traceEvents; same for the metrics snapshot.
    stamp = {"schema": 1, "seed": results["seed"], "smoke": results["smoke"]}
    Path(trace_path).write_text(
        json.dumps({**stamp, "bench": "obs_trace",
                    "traceEvents": trace_events}) + "\n"
    )
    Path(metrics_path).write_text(
        json.dumps({**stamp, "bench": "obs_metrics",
                    **metrics_snapshot}, indent=2) + "\n"
    )
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    base, traced = results["baseline"], results["traced"]
    lines = ["observability overhead (retail app, order + patch burst)"]
    lines.append(
        f"{'case':>12} {'sim ops/s':>10} {'store ops':>10} "
        f"{'sim s':>7} {'wall s':>7} {'spans':>6}"
    )
    for case in (base, traced):
        name = "tracing-on" if case["obs"] else "tracing-off"
        lines.append(
            f"{name:>12} {case['ops_per_sim_sec']:>10.0f} "
            f"{case['total_store_ops']:>10} {case['sim_seconds']:>7.2f} "
            f"{case['wall_seconds']:>7.2f} {case.get('spans', '-'):>6}"
        )
    lines.append(
        f"sim throughput ratio (on/off): "
        f"{results['sim_throughput_ratio']:.4f} "
        f"(gate: >= {results['min_sim_ratio']})"
    )
    lines.append(
        f"wall-clock overhead: {results['wall_overhead_frac'] * 100:+.1f}% "
        "(informational, not gated)"
    )
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes all three artifacts."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_tracing_within_ten_percent(sweep, report):
    assert sweep["sim_throughput_ratio"] >= MIN_SIM_RATIO, (
        f"tracing cut simulated throughput to "
        f"{sweep['sim_throughput_ratio']:.3f}x of baseline "
        f"(floor {MIN_SIM_RATIO})"
    )
    report(describe(sweep))


def test_tracing_changes_no_store_traffic(sweep):
    """Neutrality, the strong form: identical op counts either way."""
    assert sweep["same_store_ops"], (
        f"tracing changed store traffic: "
        f"{sweep['baseline']['total_store_ops']} ops off vs "
        f"{sweep['traced']['total_store_ops']} on"
    )


def test_trace_artifact_is_valid_chrome_json(sweep):
    data = json.loads(TRACE_OUTPUT.read_text())
    events = data["traceEvents"]
    assert events, "traced run exported no spans"
    for entry in events:
        assert entry["ph"] in ("X", "i")
        assert isinstance(entry["ts"], (int, float))
        if entry["ph"] == "X":
            assert entry["dur"] >= 0


def test_metrics_artifact_written(sweep):
    snapshot = json.loads(METRICS_OUTPUT.read_text())
    assert "metrics" in snapshot and "traces" in snapshot
    assert "store_ops_total" in snapshot["metrics"]["metrics"]


# -- CLI surface -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Measure tracing-on vs tracing-off on the retail app."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): fewer orders and patches")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}, {TRACE_OUTPUT.name}, {METRICS_OUTPUT.name}")
    if results["sim_throughput_ratio"] < MIN_SIM_RATIO:
        print(
            f"FAIL: sim throughput ratio "
            f"{results['sim_throughput_ratio']:.3f} "
            f"< {MIN_SIM_RATIO}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
