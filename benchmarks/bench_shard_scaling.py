"""Shard-scaling benchmark: the scale-out Object DE hot path.

Two sweeps on the Knactor retail app, written to
``BENCH_shard_scaling.json``:

- **shard throughput** -- a concurrent order burst against 1/2/4-way
  hash-sharded apiserver backends.  The single-server backend serializes
  every create through one worker queue; shards process their slices of
  the keyspace in parallel.  Reports ops/sec committed during the burst
  window plus p50/p99 create latency.
- **watch fan-out batching** -- N read-only watchers on the Checkout
  store while a patch burst lands.  With ``watch_batch_window > 0`` the
  backend coalesces events per watcher per window and ships ONE network
  message per flush; the bench asserts the message reduction AND that
  batching changes nothing observable: byte-identical final store state
  and identical per-key event order per watcher.

Run directly (``python benchmarks/bench_shard_scaling.py [--smoke]``),
via ``knactor bench shard-scaling``, or under pytest
(``pytest benchmarks/bench_shard_scaling.py``).
"""

import argparse
import hashlib
import json
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER, K_REDIS
from repro.store import Topology

SEED = 11
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"

#: Full sweep vs --smoke (CI) sweep.
SHARD_COUNTS = (1, 2, 4)
SMOKE_SHARD_COUNTS = (1, 4)
FANOUTS = (4, 16)
SMOKE_FANOUTS = (16,)
BATCH_WINDOW = 0.005

THROUGHPUT_ORDERS = 32
FANOUT_ORDERS = 8
PATCH_ROUNDS = 6


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


# -- part A: shard count vs op throughput ----------------------------------


def run_shard_case(shards, orders=THROUGHPUT_ORDERS):
    """One concurrent create burst; returns throughput + latency stats."""
    app = RetailKnactorApp.build(
        profile=K_APISERVER, with_notify=False, seed=SEED,
        topology=Topology(shards=shards) if shards > 1 else None,
    )
    workload = OrderWorkload(seed=SEED)
    batch = workload.orders(orders)
    latencies = []

    def submit(env, key, data):
        started = env.now
        yield app.place_order(key, data)
        latencies.append(env.now - started)

    ops_before = sum(app.de.backend.op_counts.values())
    started = app.env.now
    burst = [
        app.env.process(submit(app.env, key, data)) for key, data in batch
    ]
    app.env.run(until=app.env.all_of(burst))
    window = app.env.now - started
    ops_in_window = sum(app.de.backend.op_counts.values()) - ops_before

    # Let the integrator-driven flow settle so the case is a full,
    # comparable app run (fulfilment is carrier-bound, not store-bound,
    # so it is excluded from the throughput window on purpose).
    app.run_until_quiet(max_seconds=300.0)
    fulfilled = 0
    for key in app.orders_placed:
        view = app.env.run(until=app.order(key))
        fulfilled += view["data"]["status"] == "fulfilled"

    return {
        "shards": shards,
        "orders": orders,
        "burst_window_s": window,
        "ops_in_window": ops_in_window,
        "ops_per_sec": ops_in_window / window if window > 0 else 0.0,
        "create_p50_s": _percentile(latencies, 0.50),
        "create_p99_s": _percentile(latencies, 0.99),
        "fulfilled": fulfilled,
    }


# -- part B: watcher fan-out vs batched delivery ---------------------------


def run_fanout_case(fanout, batch_window):
    """Patch burst under ``fanout`` watchers; counts delivered messages.

    Returns the message/event counters plus a state digest and the
    per-watcher per-key event sequences, so batched and unbatched runs
    can be proven observably identical.
    """
    app = RetailKnactorApp.build(
        profile=K_REDIS, with_notify=False, seed=SEED,
        watch_batch_window=batch_window,
    )
    observed = {}  # watcher index -> key -> [(type, revision), ...]
    for index in range(fanout):
        principal = f"watcher-{index}"
        app.de.grant(principal, "knactor-checkout", role="reader")
        handle = app.de.handle("knactor-checkout", principal=principal)
        seen = observed.setdefault(index, {})

        def recorder(event, seen=seen):
            seen.setdefault(event.key, []).append((event.type, event.revision))

        handle.watch(recorder)

    workload = OrderWorkload(seed=SEED)
    keys = []
    for key, data in workload.orders(FANOUT_ORDERS):
        app.env.run(until=app.place_order(key, data))
        keys.append(key)
    app.run_until_quiet(max_seconds=120.0)

    backend = app.de.backend
    messages_before = backend.watch_messages_sent
    events_before = backend.watch_events_sent
    # Watch delivery timing feeds back into the integrator-driven flow
    # (the cast writes in response to deliveries), so pre-burst commit
    # interleavings may legitimately differ between batch windows.  The
    # burst itself is driver-issued, delivery-independent traffic: its
    # per-key event order must be identical.  Snapshot the cut points.
    seen_before = {
        index: {key: len(seq) for key, seq in seen.items()}
        for index, seen in observed.items()
    }

    # The burst: every order's email field patched PATCH_ROUNDS times,
    # all patches in flight concurrently (the server worker serializes
    # the commits; the batch window coalesces their fan-out).
    owner = app.runtime.handle_of("checkout")
    burst = [
        owner.patch(key, {"email": f"shopper+{round_}@example.com"})
        for round_ in range(PATCH_ROUNDS)
        for key in keys
    ]
    app.env.run(until=app.env.all_of(burst))
    app.run_until_quiet(max_seconds=60.0)

    state = []
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
        handle = app.de.handle(store, principal=app.de.store(store).owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["revision"], view["data"]))
    digest = hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()

    return {
        "fanout": fanout,
        "batch_window_s": batch_window,
        "burst_messages": backend.watch_messages_sent - messages_before,
        "burst_events": backend.watch_events_sent - events_before,
        "state_digest": digest,
        "burst_event_orders": {
            str(index): {
                key: list(seq[seen_before[index].get(key, 0):])
                for key, seq in sorted(seen.items())
            }
            for index, seen in observed.items()
        },
    }


# -- the sweep -------------------------------------------------------------


def run_sweep(smoke=False):
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    fanouts = SMOKE_FANOUTS if smoke else FANOUTS
    throughput = [run_shard_case(shards) for shards in shard_counts]
    fanout = []
    for watchers in fanouts:
        unbatched = run_fanout_case(watchers, 0.0)
        batched = run_fanout_case(watchers, BATCH_WINDOW)
        fanout.append({
            "fanout": watchers,
            "unbatched": {
                k: unbatched[k]
                for k in ("burst_messages", "burst_events", "state_digest")
            },
            "batched": {
                k: batched[k]
                for k in ("burst_messages", "burst_events", "state_digest")
            },
            "message_reduction": (
                unbatched["burst_messages"] / batched["burst_messages"]
                if batched["burst_messages"] else 0.0
            ),
            "identical_state": (
                unbatched["state_digest"] == batched["state_digest"]
            ),
            "identical_event_order": (
                unbatched["burst_event_orders"] == batched["burst_event_orders"]
            ),
        })
    baseline = throughput[0]["ops_per_sec"]
    return {
        "schema": 1,
        "bench": "shard_scaling",
        "seed": SEED,
        "smoke": smoke,
        "batch_window_s": BATCH_WINDOW,
        "throughput": throughput,
        "speedups": {
            str(case["shards"]): (
                case["ops_per_sec"] / baseline if baseline else 0.0
            )
            for case in throughput
        },
        "watch_fanout": fanout,
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["shard scaling (retail app, concurrent create burst)"]
    lines.append(f"{'shards':>8} {'ops/sec':>12} {'p50 ms':>9} {'p99 ms':>9}")
    for case in results["throughput"]:
        lines.append(
            f"{case['shards']:>8} {case['ops_per_sec']:>12.0f} "
            f"{case['create_p50_s'] * 1e3:>9.2f} "
            f"{case['create_p99_s'] * 1e3:>9.2f}"
        )
    lines.append("watch fan-out batching (patch burst, Checkout watchers)")
    lines.append(f"{'fanout':>8} {'messages':>10} {'batched':>9} {'reduction':>10}")
    for case in results["watch_fanout"]:
        lines.append(
            f"{case['fanout']:>8} {case['unbatched']['burst_messages']:>10} "
            f"{case['batched']['burst_messages']:>9} "
            f"{case['message_reduction']:>9.1f}x"
        )
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes the JSON artifact as it goes."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_four_shards_double_throughput(sweep, report):
    by_shards = {case["shards"]: case for case in sweep["throughput"]}
    one, four = by_shards[1], by_shards[4]
    speedup = four["ops_per_sec"] / one["ops_per_sec"]
    assert speedup >= 2.0, (
        f"4 shards gave only {speedup:.2f}x over 1 "
        f"({four['ops_per_sec']:.0f} vs {one['ops_per_sec']:.0f} ops/sec)"
    )
    assert four["fulfilled"] == four["orders"]
    assert one["fulfilled"] == one["orders"]
    report(describe(sweep))


def test_batching_cuts_messages_without_changing_state(sweep):
    case = next(c for c in sweep["watch_fanout"] if c["fanout"] == 16)
    assert case["message_reduction"] >= 3.0, (
        f"batched fan-out reduced messages only "
        f"{case['message_reduction']:.2f}x at fanout 16"
    )
    # Same events, fewer envelopes.
    assert case["unbatched"]["burst_events"] == case["batched"]["burst_events"]
    assert case["identical_state"], "batching changed the final store state"
    assert case["identical_event_order"], (
        "batching changed per-key event order"
    )


def test_artifact_written(sweep):
    data = json.loads(OUTPUT.read_text())
    assert data["bench"] == "shard_scaling"
    assert data["throughput"] and data["watch_fanout"]


# -- CLI surface -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Sweep shard count x watcher fan-out on the retail app."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): shards 1/4, fanout 16")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
