"""Zero-copy/delta benchmark: the state-plane copy and wire hot path.

One sweep on the Knactor retail app, written to
``BENCH_zero_copy_delta.json``: the same order burst + patch burst is
run under three state-plane configurations --

- **deepcopy** (``zero_copy=False, delta_watch=False``) -- the classic
  plane: every ingest, snapshot, scan and cache fill deep-copies; watch
  events ship full object snapshots.
- **cow** (``zero_copy=True, delta_watch=False``) -- frozen
  structurally-shared views: reads alias the committed object, writes
  path-copy; watch events still ship full snapshots.
- **cow+delta** (``zero_copy=True, delta_watch=True``) -- views plus
  revision-chained JSON-merge-patch deltas on the watch/replication
  plane.

at shard counts 1 and 4.  Each case reports copied bytes (the server's
``CopyMeter``), watch wire bytes, and create throughput/latency.  The
bench asserts the planes are observably identical -- byte-identical
final store state and identical per-key event order per watcher --
and that ``cow+delta`` cuts copied bytes >= 3x and watch wire bytes
>= 2x versus the deepcopy baseline.

Run directly (``python benchmarks/bench_zero_copy_delta.py [--smoke]``),
via ``knactor bench zero-copy``, or under pytest
(``pytest benchmarks/bench_zero_copy_delta.py``).
"""

import argparse
import hashlib
import json
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER
from repro.store import Topology

SEED = 17
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_zero_copy_delta.json"

#: (name, zero_copy, delta_watch) -- deepcopy first: it is the baseline.
MODES = (
    ("deepcopy", False, False),
    ("cow", True, False),
    ("cow+delta", True, True),
)
SHARD_COUNTS = (1, 4)

ORDERS = 16
SMOKE_ORDERS = 8
PATCH_ROUNDS = 8
SMOKE_PATCH_ROUNDS = 5
#: Read-only Checkout watchers riding along: every committed event fans
#: out to each of them, so snapshot copies (deepcopy mode) and full
#: snapshots on the wire (non-delta modes) scale with this.
WATCHERS = 6


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_case(mode, zero_copy, delta_watch, shards,
             orders=ORDERS, patch_rounds=PATCH_ROUNDS):
    """One full retail run under a state-plane configuration.

    Returns throughput/latency stats, copy and wire accounting, plus a
    final-state digest and the per-watcher per-key event sequences so
    the three planes can be proven observably identical.
    """
    app = RetailKnactorApp.build(
        profile=K_APISERVER, with_notify=False, seed=SEED,
        topology=Topology(shards=shards) if shards > 1 else None,
        zero_copy=zero_copy, delta_watch=delta_watch,
    )

    observed = {}  # watcher index -> key -> [(type, revision), ...]
    for index in range(WATCHERS):
        principal = f"watcher-{index}"
        app.de.grant(principal, "knactor-checkout", role="reader")
        handle = app.de.handle("knactor-checkout", principal=principal)
        seen = observed.setdefault(index, {})

        def recorder(event, seen=seen):
            seen.setdefault(event.key, []).append((event.type, event.revision))

        handle.watch(recorder)

    workload = OrderWorkload(seed=SEED)
    batch = workload.orders(orders)
    latencies = []

    def submit(env, key, data):
        started = env.now
        yield app.place_order(key, data)
        latencies.append(env.now - started)

    backend = app.de.backend
    ops_before = sum(backend.op_counts.values())
    started = app.env.now
    burst = [
        app.env.process(submit(app.env, key, data)) for key, data in batch
    ]
    app.env.run(until=app.env.all_of(burst))
    window = app.env.now - started
    ops_in_window = sum(backend.op_counts.values()) - ops_before
    app.run_until_quiet(max_seconds=300.0)

    # The patch burst: small field changes against full-grown orders --
    # the delta plane's best case, and exactly the shape of steady-state
    # reconciliation traffic.
    owner = app.runtime.handle_of("checkout")
    keys = list(app.orders_placed)
    patches = [
        owner.patch(key, {"email": f"shopper+{round_}@example.com"})
        for round_ in range(patch_rounds)
        for key in keys
    ]
    app.env.run(until=app.env.all_of(patches))
    app.run_until_quiet(max_seconds=120.0)

    state = []
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
        handle = app.de.handle(store, principal=app.de.store(store).owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["data"]))
    digest = hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()

    copy = backend.copy_stats
    return {
        "mode": mode,
        "shards": shards,
        "orders": orders,
        "burst_window_s": window,
        "ops_per_sec": ops_in_window / window if window > 0 else 0.0,
        "create_p50_s": _percentile(latencies, 0.50),
        "create_p99_s": _percentile(latencies, 0.99),
        "copied_bytes": copy["copied_bytes"],
        "copies": copy["copies"],
        "copied_by_site": copy["by_site"],
        "shared_views": copy["shared_views"],
        "shared_bytes_avoided": copy["shared_bytes_avoided"],
        "watch_wire_bytes": backend.watch_wire_bytes,
        "watch_deltas_sent": backend.watch_deltas_sent,
        "watch_fulls_sent": backend.watch_fulls_sent,
        "state_digest": digest,
        "event_orders": {
            str(index): {key: list(seq) for key, seq in sorted(seen.items())}
            for index, seen in observed.items()
        },
    }


def run_sweep(smoke=False):
    orders = SMOKE_ORDERS if smoke else ORDERS
    patch_rounds = SMOKE_PATCH_ROUNDS if smoke else PATCH_ROUNDS
    cases = []
    reductions = {}
    identical = True
    for shards in SHARD_COUNTS:
        group = [
            run_case(mode, zero_copy, delta_watch, shards,
                     orders=orders, patch_rounds=patch_rounds)
            for mode, zero_copy, delta_watch in MODES
        ]
        baseline, _cow, cow_delta = group
        identical = identical and all(
            case["state_digest"] == baseline["state_digest"]
            and case["event_orders"] == baseline["event_orders"]
            for case in group[1:]
        )
        reductions[str(shards)] = {
            "copied_bytes_x": (
                baseline["copied_bytes"] / cow_delta["copied_bytes"]
                if cow_delta["copied_bytes"] else float("inf")
            ),
            "wire_bytes_x": (
                baseline["watch_wire_bytes"] / cow_delta["watch_wire_bytes"]
                if cow_delta["watch_wire_bytes"] else float("inf")
            ),
        }
        cases.extend(group)
    # The per-watcher streams are bulky; keep them out of the artifact.
    for case in cases:
        case.pop("event_orders")
    return {
        "schema": 1,
        "bench": "zero_copy_delta",
        "seed": SEED,
        "smoke": smoke,
        "watchers": WATCHERS,
        "cases": cases,
        "reductions": reductions,
        "identical_state": identical,
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["zero-copy/delta state plane (retail app, order + patch burst)"]
    lines.append(
        f"{'shards':>7} {'mode':>10} {'copied KB':>10} {'wire KB':>9} "
        f"{'deltas':>7} {'fulls':>6} {'ops/sec':>9} {'p99 ms':>8}"
    )
    for case in results["cases"]:
        lines.append(
            f"{case['shards']:>7} {case['mode']:>10} "
            f"{case['copied_bytes'] / 1e3:>10.1f} "
            f"{case['watch_wire_bytes'] / 1e3:>9.1f} "
            f"{case['watch_deltas_sent']:>7} {case['watch_fulls_sent']:>6} "
            f"{case['ops_per_sec']:>9.0f} {case['create_p99_s'] * 1e3:>8.2f}"
        )
    for shards, cuts in results["reductions"].items():
        lines.append(
            f"shards={shards}: cow+delta copies {cuts['copied_bytes_x']:.1f}x "
            f"less, wire {cuts['wire_bytes_x']:.1f}x less than deepcopy"
        )
    lines.append(
        "identical state/event order across modes: "
        f"{results['identical_state']}"
    )
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes the JSON artifact as it goes."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_planes_observably_identical(sweep):
    assert sweep["identical_state"], (
        "zero-copy/delta changed the final store state or event order"
    )


def test_cow_delta_cuts_copied_bytes_3x(sweep, report):
    for shards, cuts in sweep["reductions"].items():
        assert cuts["copied_bytes_x"] >= 3.0, (
            f"shards={shards}: cow+delta cut copied bytes only "
            f"{cuts['copied_bytes_x']:.2f}x (need >= 3x)"
        )
    report(describe(sweep))


def test_delta_cuts_wire_bytes_2x(sweep):
    for shards, cuts in sweep["reductions"].items():
        assert cuts["wire_bytes_x"] >= 2.0, (
            f"shards={shards}: delta watch cut wire bytes only "
            f"{cuts['wire_bytes_x']:.2f}x (need >= 2x)"
        )


def test_deltas_dominate_the_stream(sweep):
    for case in sweep["cases"]:
        if case["mode"] != "cow+delta":
            assert case["watch_deltas_sent"] == 0
            continue
        # Once anchored, the patch burst rides the delta chain.
        assert case["watch_deltas_sent"] > case["watch_fulls_sent"]


def test_artifact_written(sweep):
    data = json.loads(OUTPUT.read_text())
    assert data["bench"] == "zero_copy_delta"
    assert len(data["cases"]) == len(MODES) * len(SHARD_COUNTS)


# -- CLI surface -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Sweep state-plane modes x shard count on the retail app."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): fewer orders and patch rounds")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
