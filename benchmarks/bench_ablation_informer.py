"""Ablation: integrator read strategy (refresh vs informer cache).

The executor can re-GET every source object per exchange
(``refresh_reads=True``, the paper's data-movement accounting) or serve
reads from the watch-fed informer cache (``refresh_reads=False``), the
way Kubernetes controllers do.  The cache removes read round trips from
the propagation path at the cost of acting on possibly-stale state
(safe here: watch events themselves trigger re-evaluation).
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.measure import SHIPMENT_DXG, extract_stages
from repro.apps.retail.workload import OrderWorkload
from repro.core.dxg.executor import ExecutorOptions
from repro.core.optimizer import K_APISERVER, K_REDIS
from repro.metrics.report import Table


def run(profile, refresh_reads, orders=10):
    app = RetailKnactorApp.build(
        profile=profile, with_notify=False, dxg=SHIPMENT_DXG
    )
    app.cast.options = ExecutorOptions(
        refresh_reads=refresh_reads, trust_cache_for_missing=True
    )
    app.cast.reconfigure(body={})  # rebuild executor with the new options
    workload = OrderWorkload(seed=7)
    env = app.env

    def driver(env):
        for _ in range(orders):
            key, data = workload.next_order()
            yield app.place_order(key, data)
            yield env.timeout(2.0)

    env.process(driver(env))
    app.run_until_quiet(max_seconds=orders * 2.0 + 60.0)
    return extract_stages(app, profile.name, pushdown=False)


@pytest.fixture(scope="module")
def sweep():
    return {
        (profile.name, refresh): run(profile, refresh)
        for profile in (K_APISERVER, K_REDIS)
        for refresh in (True, False)
    }


def test_informer_report(sweep, report):
    table = Table(
        ["Backend", "reads", "C-I (ms)", "I-S (ms)", "Prop. (ms)"],
        title="Ablation: refresh reads vs informer cache",
    )
    for (name, refresh), bd in sorted(sweep.items()):
        table.add_row(
            name,
            "refresh" if refresh else "informer-cache",
            round(bd.mean("C-I") * 1000, 2),
            round(bd.mean("I-S") * 1000, 2),
            round(bd.mean("Prop.") * 1000, 2),
        )
    report(table.render())


def test_cache_cuts_propagation_on_slow_backend(sweep):
    refreshed = sweep[("K-apiserver", True)].mean("Prop.")
    cached = sweep[("K-apiserver", False)].mean("Prop.")
    assert cached < refreshed


def test_results_equivalent_either_way(sweep):
    """Both read strategies complete every request correctly."""
    for bd in sweep.values():
        assert bd.count() == 10


def test_bench_informer_run(benchmark):
    result = benchmark.pedantic(
        lambda: run(K_REDIS, False, orders=4), rounds=3, iterations=1
    )
    assert result.count() == 4
