"""Ablation: integrator push-down vs payload size.

Push-down (§3.3) removes the integrator's per-exchange network transfers;
its advantage should therefore GROW with state size.  We sweep the
order's item count (payload bytes) with push-down on/off on the
in-memory backend.
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.measure import SHIPMENT_DXG, extract_stages
from repro.core.optimizer import K_REDIS, K_REDIS_UDF
from repro.metrics.report import Table

ITEM_COUNTS = (2, 40, 200)


def run_profile(profile, item_count, orders=8):
    app = RetailKnactorApp.build(
        profile=profile, with_notify=False, dxg=SHIPMENT_DXG
    )
    env = app.env

    def driver(env):
        for i in range(orders):
            items = {
                f"sku-{j:04d}": {"name": f"sku-{j:04d}", "priceUSD": 9.99}
                for j in range(item_count)
            }
            yield app.place_order(
                f"order/o{i:04d}",
                {
                    "items": items,
                    "address": "12 Elm St",
                    "cost": 9.99 * item_count,
                    "totalCost": 9.99 * item_count,
                    "currency": "USD",
                    "status": "placed",
                },
            )
            yield env.timeout(2.0)

    env.process(driver(env))
    app.run_until_quiet(max_seconds=orders * 2.0 + 60.0)
    return extract_stages(app, profile.name, pushdown=profile.pushdown)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for profile in (K_REDIS, K_REDIS_UDF):
        for items in ITEM_COUNTS:
            results[(profile.name, items)] = run_profile(profile, items)
    return results


def test_pushdown_report(sweep, report):
    table = Table(
        ["Setup", "items/order", "Prop. mean (ms)", "I-S mean (ms)"],
        title="Ablation: push-down x payload size",
    )
    for (name, items), bd in sorted(sweep.items()):
        table.add_row(
            name, items,
            round(bd.mean("Prop.") * 1000, 2),
            round(bd.mean("I-S") * 1000, 2),
        )
    report(table.render())


def test_pushdown_wins_at_every_size(sweep):
    for items in ITEM_COUNTS:
        assert (
            sweep[("K-redis-udf", items)].mean("Prop.")
            < sweep[("K-redis", items)].mean("Prop.")
        ), items


def test_pushdown_advantage_grows_with_payload(sweep):
    def advantage(items):
        return (
            sweep[("K-redis", items)].mean("Prop.")
            - sweep[("K-redis-udf", items)].mean("Prop.")
        )

    assert advantage(ITEM_COUNTS[-1]) > advantage(ITEM_COUNTS[0])


def test_bench_pushdown_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_profile(K_REDIS_UDF, 40, orders=4), rounds=3, iterations=1
    )
    assert result.count() >= 3
