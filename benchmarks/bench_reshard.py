"""Live elastic resharding under sustained write load.

A seeded Zipf write workload (hot keys, long tail) runs against a
sharded MemKV Object backend while the topology goes **1 -> 4 -> 2**
shards *online* (consistent-hash ring, snapshot + catch-up migration,
sealed-range write fencing, client re-routing).  One merged watch
observes every key throughout.  Gated invariants:

- **zero lost writes** -- every key's final state is the last value the
  writer got acked, and every acked write shows up on the watch stream;
- **zero duplicated writes** -- per-key watch sequences carry each
  acked value exactly once, in write order;
- **zero watch disruption** -- the app watch never closes and never
  takes a forced full refetch (the migration plane's documented one-GET
  resync per moved range happens on the *resharder's* own clients);
- **identity with a static run** -- final state and per-key event-value
  order match the same workload on a never-resharded store;
- **determinism** -- two same-seed elastic runs produce bit-identical
  fingerprints (state + event order + ring fingerprint + counters).

A second scenario runs the store inside a cluster
:class:`~repro.cluster.ShardFleet`: a write burst drives worker-queue
depth, the autoscaler emits scaling events, and the fleet reshards the
ring to follow -- gated on at least one scaling event and a consistent
final state.

Run directly (``python benchmarks/bench_reshard.py [--smoke]``), via
``knactor bench reshard``, or under pytest
(``pytest benchmarks/bench_reshard.py``).
"""

import argparse
import hashlib
import json
import random
from pathlib import Path

import pytest

from repro.cluster import Cluster, ShardFleet
from repro.simnet import Environment, Network
from repro.store import (
    AutoscalePolicy,
    MemKV,
    ShardedStore,
    ShardedStoreClient,
    Topology,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_reshard.json"

SEEDS = (0, 1, 2)
SMOKE_SEEDS = (0,)
N_WRITES = 600
SMOKE_WRITES = 180
N_KEYS = 200
ZIPF_EXPONENT = 1.1
#: Shard-count trajectory: grow 1 -> 4 mid-run, shrink 4 -> 2 later.
PLAN = (4, 2)


def zipf_keys(seed, n_writes, n_keys=N_KEYS):
    """A seeded Zipf(~1.1) key sequence over ``k/0 .. k/{n_keys-1}``."""
    rng = random.Random(seed)
    population = [f"k/{i}" for i in range(n_keys)]
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(n_keys)]
    return rng.choices(population, weights=weights, k=n_writes)


def _build(env, seed, shards):
    network = Network(env)

    def factory(i):
        return MemKV(env, network, location=f"shard-{i}",
                     delta_watch=True, zero_copy=True)

    topology = Topology(shards=shards, seed=seed, min_shards=1, max_shards=4)
    store = ShardedStore(topology=topology, shard_factory=factory,
                        name="bench-reshard")
    client = ShardedStoreClient(store, "bench")
    return store, client


def run_once(seed, n_writes, elastic=True):
    """One workload run; ``elastic=False`` is the static-N control."""
    env = Environment()
    store, client = _build(env, seed, shards=1 if elastic else PLAN[-1])
    keys = zipf_keys(seed, n_writes)

    observed = {}  # key -> [value, ...] in watch-delivery order
    closes = []

    def on_event(event):
        observed.setdefault(event.key, []).append(event.object["v"])

    watch = client.watch(on_event, key_prefix="k/",
                         on_close=lambda reason: closes.append(reason))

    acked = {}  # key -> [value, ...] in ack order
    created = set()
    marks = ([(n_writes // 3, PLAN[0]), (2 * n_writes // 3, PLAN[1])]
             if elastic else [])

    def writer(env):
        reshard_proc = None
        for index, key in enumerate(keys):
            while marks and index == marks[0][0]:
                if reshard_proc is not None:
                    yield reshard_proc  # one transition at a time
                reshard_proc = store.reshard(marks.pop(0)[1])
            value = index
            if key in created:
                yield client.update(key, {"v": value})
            else:
                yield client.create(key, {"v": value})
                created.add(key)
            acked.setdefault(key, []).append(value)
            yield env.timeout(0.002)
        if reshard_proc is not None:
            yield reshard_proc

    env.process(writer(env))
    env.run(until=120.0)
    env.run(until=env.now + 1.0)  # drain in-flight watch deliveries

    final = {}

    def collect(env):
        for key in sorted(created):
            obj = yield client.get(key)
            final[key] = obj["data"]["v"]

    env.process(collect(env))
    env.run(until=env.now + 5.0)

    reroutes = sum(c.reroutes for c in store._clients)
    forced_resyncs = sum(w.forced_resyncs for w in watch.watches)
    stats = store.reshard_stats
    lost = sum(1 for key, values in acked.items()
               if final.get(key) != values[-1])
    out_of_order = sum(1 for key in acked
                       if observed.get(key, []) != acked[key])
    body = {
        "seed": seed,
        "writes": n_writes,
        "elastic": elastic,
        "final_state": final,
        "observed": {k: observed.get(k, []) for k in sorted(created)},
        "acked": {k: acked[k] for k in sorted(acked)},
        "ring_fingerprint": store.ring.fingerprint(),
        "ring_version": store.ring.version,
        "shards": store.shard_count,
    }
    fingerprint = hashlib.sha256(
        json.dumps({**body, "reshard_stats": stats,
                    "fence_rejections": store.fence_rejections},
                   sort_keys=True).encode()
    ).hexdigest()
    return {
        **body,
        "fingerprint": fingerprint,
        "lost_writes": lost,
        "out_of_order_keys": out_of_order,
        "watch_closes": len(closes),
        "forced_resyncs": forced_resyncs,
        "fence_rejections": store.fence_rejections,
        "reroutes": reroutes,
        "reshard_stats": stats,
        "virtual_seconds": env.now,
    }


#: Fleet scenario: concurrent serial writers and how long they push.
FLEET_WRITERS = 16
FLEET_PACING = 0.002
FLEET_LOAD_SECONDS = 6.0


def run_fleet(seed, n_writes):
    """The autoscaled variant: load -> ScalingEvents -> ring reshard.

    Sixteen serial writers over disjoint key slices outrun one shard's
    service rate, so worker-queue depth sits well above the autoscale
    target while the load phase lasts; the autoscaler grows the pod
    fleet, the fleet reshards the ring under the load, and the backlog
    drains on the wider topology.
    """
    env = Environment()
    network = Network(env)

    def factory(i):
        return MemKV(env, network, location=f"fleet-shard-{i}")

    topology = Topology(
        shards=1, seed=seed, min_shards=1, max_shards=4,
        autoscale=AutoscalePolicy(target_queue_depth=2.0, interval=0.2,
                                  cooldown=0.5),
    )
    store = ShardedStore(topology=topology, shard_factory=factory,
                        name="bench-fleet")
    client = ShardedStoreClient(store, "bench")
    cluster = Cluster(env)
    fleet = ShardFleet(cluster, store)
    env.run(until=4.0)  # let the initial shard pod come up
    fleet.start()
    all_keys = [f"k/{i}" for i in range(N_KEYS)]
    written = {}
    stop_at = env.now + FLEET_LOAD_SECONDS

    def writer(slot):
        keys = all_keys[slot::FLEET_WRITERS]
        value = slot
        while env.now < stop_at:
            for key in keys:
                if env.now >= stop_at:
                    return
                if key in written:
                    yield client.update(key, {"v": value})
                else:
                    yield client.create(key, {"v": value})
                written[key] = value  # post-ack: verified below
                value += FLEET_WRITERS
                yield env.timeout(FLEET_PACING)

    for slot in range(FLEET_WRITERS):
        env.process(writer(slot))
    env.run(until=stop_at + 20.0)
    fleet.stop()

    mismatches = []

    def verify(env):
        for key, value in sorted(written.items()):
            obj = yield client.get(key)
            if obj["data"]["v"] != value:
                mismatches.append(key)

    env.process(verify(env))
    env.run(until=env.now + 10.0)
    return {
        "seed": seed,
        "writes": len(written),
        "scaling_events": len(fleet.autoscaler.events),
        "reshards_driven": fleet.reshards_driven,
        "peak_shards": max((e.to_replicas for e in fleet.autoscaler.events),
                           default=store.shard_count),
        "final_shards": store.shard_count,
        "mismatches": len(mismatches),
        "fleet": fleet.stats(),
    }


def run_sweep(smoke=False):
    seeds = SMOKE_SEEDS if smoke else SEEDS
    n_writes = SMOKE_WRITES if smoke else N_WRITES
    runs = []
    for seed in seeds:
        elastic = run_once(seed, n_writes, elastic=True)
        static = run_once(seed, n_writes, elastic=False)
        repeat = run_once(seed, n_writes, elastic=True)
        runs.append({
            "seed": seed,
            "elastic": _summarize(elastic),
            "state_matches_static": elastic["final_state"]
            == static["final_state"],
            "order_matches_static": elastic["observed"]
            == static["observed"],
            "deterministic": elastic["fingerprint"] == repeat["fingerprint"],
        })
    fleet = run_fleet(seeds[0], n_writes)
    return {
        "schema": 1,
        "bench": "reshard",
        "seed": seeds[0],
        "smoke": smoke,
        "seeds": list(seeds),
        "writes_per_seed": n_writes,
        "plan": [1] + list(PLAN),
        "runs": runs,
        "fleet": fleet,
        "lost_writes": sum(r["elastic"]["lost_writes"] for r in runs),
        "duplicated_or_reordered": sum(
            r["elastic"]["out_of_order_keys"] for r in runs),
        "watch_closes": sum(r["elastic"]["watch_closes"] for r in runs),
        "forced_resyncs": sum(r["elastic"]["forced_resyncs"] for r in runs),
        "state_matches_static": all(r["state_matches_static"] for r in runs),
        "order_matches_static": all(r["order_matches_static"] for r in runs),
        "deterministic": all(r["deterministic"] for r in runs),
        "keys_moved": sum(
            r["elastic"]["reshard_stats"]["keys_moved"] for r in runs),
    }


def _summarize(run):
    """The per-run record minus the bulky state/order payloads."""
    return {k: v for k, v in run.items()
            if k not in ("final_state", "observed", "acked")}


def gate_ok(results):
    return (
        results["lost_writes"] == 0
        and results["duplicated_or_reordered"] == 0
        and results["watch_closes"] == 0
        and results["forced_resyncs"] == 0
        and results["state_matches_static"]
        and results["order_matches_static"]
        and results["deterministic"]
        and results["keys_moved"] > 0
        and results["fleet"]["scaling_events"] >= 1
        and results["fleet"]["reshards_driven"] >= 1
        and results["fleet"]["peak_shards"] > 1
        and results["fleet"]["mismatches"] == 0
    )


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = [
        "live reshard under Zipf write load "
        f"(seeds {results['seeds']}, {results['writes_per_seed']} "
        f"writes/seed, shards {' -> '.join(map(str, results['plan']))})",
        f"  lost writes          : {results['lost_writes']}",
        f"  dup/reordered keys   : {results['duplicated_or_reordered']}",
        f"  watch closes         : {results['watch_closes']}",
        f"  forced resyncs       : {results['forced_resyncs']}",
        f"  keys moved           : {results['keys_moved']}",
        f"  state == static run  : {results['state_matches_static']}",
        f"  order == static run  : {results['order_matches_static']}",
        f"  same-seed identical  : {results['deterministic']}",
        f"  fleet scaling events : {results['fleet']['scaling_events']} "
        f"(peak {results['fleet']['peak_shards']} shards, "
        f"{results['fleet']['reshards_driven']} reshards driven)",
    ]
    return "\n".join(lines)


# -- pytest surface ----------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_no_lost_or_duplicated_writes(sweep):
    assert sweep["lost_writes"] == 0
    assert sweep["duplicated_or_reordered"] == 0


def test_watch_streams_undisturbed(sweep):
    assert sweep["watch_closes"] == 0
    assert sweep["forced_resyncs"] == 0


def test_identity_with_static_run(sweep):
    assert sweep["state_matches_static"]
    assert sweep["order_matches_static"]


def test_same_seed_runs_are_bit_identical(sweep):
    assert sweep["deterministic"]


def test_data_actually_moved(sweep):
    assert sweep["keys_moved"] > 0


def test_fleet_autoscales_the_ring(sweep):
    assert sweep["fleet"]["scaling_events"] >= 1
    assert sweep["fleet"]["mismatches"] == 0


# -- CLI surface -------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Reshard a live sharded store 1->4->2 under Zipf "
                    "write load and gate zero-loss + watch continuity."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): 1 seed x 180 writes")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    return 0 if gate_ok(results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
