"""§2 Problem 2: composition logic is scattered (measured, not quoted).

The paper reports 15 API-handling methods across 11 services in the web
app and 36 across 14 in the social network, and argues scattering grows
O(N).  This bench measures all three claims from the live apps, and
contrasts them with the Knactor variant, where composition logic lives in
1-2 integrator modules.
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.rpc_app import RetailRpcApp
from repro.apps.socialnetwork import SocialNetworkRpcApp
from repro.core.optimizer import K_REDIS
from repro.metrics.report import Table
from repro.rpc import RPCChannel, RPCServer, parse_idl
from repro.simnet import Environment, Network


def test_scattering_report(report):
    retail = RetailRpcApp.build()
    social = SocialNetworkRpcApp.build()
    knactor_retail = RetailKnactorApp.build(profile=K_REDIS)
    table = Table(
        ["App", "composition style", "methods/handling sites", "locations"],
        title="Composition scattering (paper: 15/11 web, 36/14 social)",
    )
    table.add_row("online retail", "RPC (API-centric)",
                  retail.rpc_method_count(), 11)
    table.add_row("social network", "RPC (API-centric)",
                  social.handler_count(), social.service_count())
    table.add_row("online retail", "Knactor (data-centric)",
                  len(knactor_retail.cast.executor.spec.assignments),
                  len(knactor_retail.runtime.integrators))
    report(table.render())
    assert retail.rpc_method_count() == 15
    assert social.handler_count() == 36
    assert social.service_count() == 14
    assert len(knactor_retail.runtime.integrators) <= 2


def _chain_app(n_services):
    """A synthetic N-service chain composed via RPC: each service calls
    the next, so composition sites grow with N."""
    env = Environment()
    network = Network(env)
    idl = parse_idl(
        "message Req {\n  string v = 1;\n}\n"
        "message Resp {\n  string v = 1;\n}\n"
        "service Chain {\n  rpc Step(Req) returns (Resp);\n}\n"
    )
    servers = [RPCServer(env, network, f"svc-{i}") for i in range(n_services)]
    composition_sites = 0
    for i, server in enumerate(servers):
        if i + 1 < n_services:
            channel = RPCChannel(env, servers[i + 1], f"svc-{i}")

            def handler(request, _c=channel):
                result = yield _c.call("Chain", "Step", {"v": request["v"]})
                return {"v": result["v"]}

            composition_sites += 1  # the downstream call inside service i
        else:
            def handler(request):
                return {"v": request["v"] + "!"}

        server.register("Chain", "Step", handler, idl=idl)
        composition_sites += 1  # the API endpoint exposed by service i
    return env, servers, composition_sites


def test_scattering_grows_linearly(report):
    rows = []
    for n in (4, 8, 16, 32):
        _env, _servers, sites = _chain_app(n)
        rows.append((n, sites, 1))
    table = Table(
        ["N services", "API-centric composition sites", "Knactor (integrators)"],
        title="Scattering growth with app size (O(N) vs O(1))",
    )
    for row in rows:
        table.add_row(*row)
    report(table.render())
    # Linear in N for API-centric; constant for Knactor.
    for (n1, s1, _), (n2, s2, _) in zip(rows, rows[1:]):
        assert s2 - s1 == pytest.approx(2 * (n2 - n1), abs=1)


def test_bench_social_network_compose(benchmark):
    app = SocialNetworkRpcApp.build()

    counter = iter(range(10**6))

    def run():
        return app.env.run(until=app.compose_post(req_id=f"r{next(counter)}"))

    response = benchmark(run)
    assert response["result"]


def test_bench_chain_construction(benchmark):
    def run():
        return _chain_app(32)[2]

    sites = benchmark(run)
    assert sites == 63
