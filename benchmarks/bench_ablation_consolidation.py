"""Ablation: operation consolidation vs DXG width.

§3.3: "integrators can consolidate the state processing logic by
combining multiple state processing operations into fewer and more
efficient ones."  A consolidated executor issues ONE patch per target
object per pass; unconsolidated, one write per field.  The saving grows
with the number of fields the DXG fills ("width").
"""

import pytest

from repro.core.dxg import DXGExecutor, parse_dxg
from repro.core.dxg.executor import ExecutorOptions
from repro.exchange import ObjectDE
from repro.metrics.report import Table
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer

WIDTHS = (2, 8, 24)


def build_spec(width):
    source_fields = "\n".join(f"f{i}: number" for i in range(width))
    target_fields = "\n".join(f"g{i}: number # +kr: external" for i in range(width))
    assignments = "\n".join(f"    g{i}: A.f{i} * 2" for i in range(width))
    source_schema = f"schema: App/v1/Source/S\n{source_fields}\n"
    target_schema = f"schema: App/v1/Target/T\n{target_fields}\n"
    dxg = (
        "Input:\n"
        "  A: App/v1/Source/knactor-a\n"
        "  B: App/v1/Target/knactor-b\n"
        "DXG:\n"
        "  B:\n"
        f"{assignments}\n"
    )
    return source_schema, target_schema, dxg


def run(width, consolidate, exchanges=10):
    env = Environment()
    network = Network(env, default_latency=FixedLatency(0.00035))
    backend = ApiServer(env, network, watch_overhead=0.0)
    de = ObjectDE(env, backend)
    source_schema, target_schema, dxg = build_spec(width)
    de.host_store("knactor-a", source_schema, owner="a")
    de.host_store("knactor-b", target_schema, owner="b")
    de.grant("cast", "knactor-a", role="integrator")
    de.grant("cast", "knactor-b", role="integrator")
    executor = DXGExecutor(
        env,
        parse_dxg(dxg),
        handles={
            "A": de.handle("knactor-a", principal="cast"),
            "B": de.handle("knactor-b", principal="cast"),
        },
        options=ExecutorOptions(consolidate=consolidate),
    )
    owner = de.handle("knactor-a", principal="a")
    for i in range(exchanges):
        env.run(
            until=owner.create(
                f"x{i}", {f"f{j}": float(i + j) for j in range(width)}
            )
        )
        env.run(until=executor.exchange(f"x{i}"))
    # The interesting path is the UPDATE: every source field changes, so
    # the target needs width field-writes -- one patch consolidated,
    # width patches unconsolidated.  (Creation is one op either way.)
    executor.totals = type(executor.totals)()
    start = env.now
    for i in range(exchanges):
        env.run(
            until=owner.update(
                f"x{i}", {f"f{j}": float(100 + i + j) for j in range(width)}
            )
        )
        env.run(until=executor.exchange(f"x{i}"))
    elapsed = env.now - start
    return elapsed / exchanges, executor.totals


@pytest.fixture(scope="module")
def sweep():
    return {
        (width, consolidate): run(width, consolidate)
        for width in WIDTHS
        for consolidate in (True, False)
    }


def test_consolidation_report(sweep, report):
    table = Table(
        ["DXG width", "consolidated", "latency/exchange (ms)", "write ops"],
        title="Ablation: operation consolidation x DXG width",
    )
    for (width, consolidate), (latency, totals) in sorted(sweep.items()):
        table.add_row(
            width, "yes" if consolidate else "no",
            round(latency * 1000, 2), totals.writes,
        )
    report(table.render())


def test_consolidation_issues_one_write_per_object(sweep):
    for width in WIDTHS:
        _latency, totals = sweep[(width, True)]
        assert totals.writes == 10  # one patch per update exchange
        _latency, totals_off = sweep[(width, False)]
        assert totals_off.writes == 10 * width  # one patch per field


def test_consolidation_latency_advantage_grows_with_width(sweep):
    def saving(width):
        return sweep[(width, False)][0] - sweep[(width, True)][0]

    assert saving(WIDTHS[-1]) > saving(WIDTHS[0]) > 0


def test_results_identical_either_way(report):
    """Consolidation is a pure optimization: same final state."""
    # Re-run width=4 twice and compare target objects.
    states = {}
    for consolidate in (True, False):
        env = Environment()
        network = Network(env, default_latency=FixedLatency(0.0))
        backend = ApiServer(env, network, watch_overhead=0.0)
        de = ObjectDE(env, backend)
        source_schema, target_schema, dxg = build_spec(4)
        de.host_store("knactor-a", source_schema, owner="a")
        de.host_store("knactor-b", target_schema, owner="b")
        de.grant("cast", "knactor-a", role="integrator")
        de.grant("cast", "knactor-b", role="integrator")
        executor = DXGExecutor(
            env, parse_dxg(dxg),
            handles={"A": de.handle("knactor-a", principal="cast"),
                     "B": de.handle("knactor-b", principal="cast")},
            options=ExecutorOptions(consolidate=consolidate),
        )
        owner = de.handle("knactor-a", principal="a")
        env.run(until=owner.create("x", {f"f{j}": float(j) for j in range(4)}))
        env.run(until=executor.exchange("x"))
        reader = de.handle("knactor-b", principal="b")
        states[consolidate] = env.run(until=reader.get("x"))["data"]
    assert states[True] == states[False]


def test_bench_wide_exchange(benchmark):
    result = benchmark.pedantic(
        lambda: run(24, True, exchanges=5), rounds=3, iterations=1
    )
    assert result[1].writes >= 5
