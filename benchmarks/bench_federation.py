"""Cross-store query federation benchmark: the storefront read path.

The storefront "order details" page composes three stores (Checkout's
order, Shipping's shipment, Payment's charge) for a fanout of
``FANOUT`` orders per page -- 3 x FANOUT point reads.  Three arms
answer the same seeded page/order workload (PR-9 load substrate, same
arrival schedule and key draws per seed), written to
``BENCH_federation.json``:

- **rpc** -- RPC-composition baseline: 3 sequential GETs per order,
  the way a service-oriented storefront composes reads;
- **federated** -- the composed view forced fresh (``freshness=0``):
  parallel scatter-gather across the sources, one local join;
- **materialized** -- the composed view under its declared freshness
  bound: the planner serves the incrementally maintained copy while
  its staleness estimate is within the bound, falling back to
  federated reads otherwise.

Gates (enforced by the pytest surface and CI):

- the materialized arm's page p99 beats the RPC baseline's;
- every materialized serve happened within the freshness bound and
  ``view_freshness_violations_total`` stayed 0;
- at quiescence the federated, materialized, and RPC answers are
  *identical* for the same page keys -- on the sim backend and on a
  small realtime-backend case;
- same seed => same offered-load fingerprint across arms and repeats.

Run directly (``python benchmarks/bench_federation.py [--smoke]``), via
``knactor bench federation``, or under pytest
(``pytest benchmarks/bench_federation.py``).
"""

import argparse
import json
import zlib
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.storefront import (
    STOREFRONT_VIEW_NAME,
    attach_storefront,
    grant_rpc_baseline,
    order_details,
    rpc_order_details,
)
from repro.load import LoadGenerator, PoissonArrivals, TrafficClass
from repro.load.scenarios import LoadScenario

SEED = 31
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_federation.json"

#: Orders composed per page read (the paper-motivating fanout).
FANOUT = 8

#: The page's declared staleness tolerance (seconds).
FRESHNESS = 0.25

WRITE_RPS = 10.0
PAGE_RPS = 20.0
DURATION = 4.0
SMOKE_DURATION = 2.0

_ITEMS = [
    ("mesh-chair", 429.0),
    ("usb-hub", 39.0),
    ("monitor-arm", 129.0),
    ("webcam", 89.0),
]


def _plain(value):
    """Canonical plain-python copy (CowMaps and tuples normalized)."""
    if hasattr(value, "items"):
        return {k: _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _digestable(records):
    return json.dumps(_plain(list(records)), sort_keys=True)


class StorefrontScenario(LoadScenario):
    """Order writes + storefront page reads, one arm at a time."""

    name = "storefront"
    latency_threshold_s = 0.25

    def __init__(self, arm, duration, seed=SEED):
        super().__init__()
        self.arm = arm
        self.app = RetailKnactorApp.build(seed=seed, obs=True,
                                          with_notify=False)
        self.view = attach_storefront(self.app, freshness=FRESHNESS)
        grant_rpc_baseline(self.app)
        self._orders = 0
        #: Deterministic page-key universe: the order keys this seed's
        #: write class will eventually create.
        self._universe = max(FANOUT, int(WRITE_RPS * duration))
        self.page_reads = []  # (strategy, staleness) per served page
        self._wire(self.app.env, self.app.runtime)

    # -- load protocol -----------------------------------------------------

    def submit(self, cls, key, rng):
        if cls.name == "orders":
            return self._place_order(rng)
        return self._read_page(rng)

    def quiesce(self):
        self.app.run_until_quiet(max_seconds=120.0)

    # -- the two request kinds ---------------------------------------------

    def _place_order(self, rng):
        self._orders += 1
        key = f"order/load{self._orders:06d}"
        item, price = _ITEMS[zlib.crc32(key.encode()) % len(_ITEMS)]
        data = {
            "items": {item: {"name": item, "priceUSD": price}},
            "address": f"{rng.randint(1, 99)} Main St",
            "cost": price,
            "totalCost": price,
            "currency": "USD",
            "status": "placed",
            "cardToken": f"tok-{rng.randint(10**6, 10**7 - 1)}",
        }
        return self.app.place_order(key, data), self.app.last_trace_id

    def _page_keys(self, rng):
        picks = rng.sample(range(1, self._universe + 1),
                           min(FANOUT, self._universe))
        return [f"order/load{n:06d}" for n in sorted(picks)]

    def _read_page(self, rng):
        keys = self._page_keys(rng)
        if self.arm == "rpc":
            return rpc_order_details(self.app, keys)

        freshness = 0.0 if self.arm == "federated" else None

        def page(env):
            result = yield order_details(self.app, keys, freshness=freshness)
            self.page_reads.append((result.strategy, result.staleness))
            return result

        return self.env.process(page(self.env))

    # -- post-run accounting -----------------------------------------------

    def strategy_mix(self):
        mix = {}
        for strategy, _ in self.page_reads:
            mix[strategy] = mix.get(strategy, 0) + 1
        return mix

    def max_served_staleness(self):
        served = [s for strategy, s in self.page_reads
                  if strategy == "materialized"]
        return max(served, default=0.0)

    def freshness_violations(self):
        return self.registry.counter(
            "view_freshness_violations_total", view=STOREFRONT_VIEW_NAME,
        ).value

    def check_identity(self):
        """Post-quiesce: all three answer paths agree on a fixed page."""
        keys = [f"order/load{n:06d}"
                for n in range(1, min(FANOUT, max(self._orders, 1)) + 1)]
        return answers_identical(self.app, keys)


def answers_identical(app, keys):
    """federated == materialized == rpc for one page of ``keys``."""
    env = app.env
    federated = env.run(until=order_details(app, keys, freshness=0))
    materialized = env.run(
        until=order_details(app, keys, consistency="any")
    )
    rpc = env.run(until=rpc_order_details(app, keys))
    return {
        "keys": len(keys),
        "records": len(federated),
        "materialized_strategy": materialized.strategy,
        "identical": (
            _digestable(federated.records)
            == _digestable(materialized.records)
            == _digestable(rpc)
        ),
    }


# -- one arm ----------------------------------------------------------------


def run_arm(arm, smoke=False, seed=SEED):
    duration = SMOKE_DURATION if smoke else DURATION
    scenario = StorefrontScenario(arm, duration, seed=seed)
    classes = [
        TrafficClass("orders", PoissonArrivals(WRITE_RPS)),
        TrafficClass("pages", PoissonArrivals(PAGE_RPS)),
    ]
    result = LoadGenerator(scenario, classes, duration, seed=seed).run()
    identity = scenario.check_identity()
    return {
        "load": result.summary(),
        "page_p50_s": result.percentile(0.50, "pages"),
        "page_p99_s": result.percentile(0.99, "pages"),
        "strategies": scenario.strategy_mix(),
        "max_served_staleness": scenario.max_served_staleness(),
        "freshness_violations": scenario.freshness_violations(),
        "identity": identity,
    }


# -- realtime parity --------------------------------------------------------


def run_realtime_identity(orders=4, seed=SEED):
    """A small wall-clock run: the identity property holds off-sim too."""
    from repro.realtime import RealtimeEnvironment

    env = RealtimeEnvironment(factor=0.0)
    app = RetailKnactorApp.build(env=env, seed=seed, with_notify=False,
                                 shape_latency=False)
    attach_storefront(app, freshness=FRESHNESS)
    grant_rpc_baseline(app)
    keys = []
    for index in range(1, orders + 1):
        key = f"order/rt{index:04d}"
        keys.append(key)
        env.run(until=app.place_order(key, {
            "items": {"usb-hub": {"name": "usb-hub", "priceUSD": 39.0}},
            "address": "1 Main St", "cost": 39.0, "totalCost": 39.0,
            "currency": "USD", "status": "placed", "cardToken": "tok-1",
        }))
    app.run_until_quiet(max_seconds=60.0)
    case = answers_identical(app, keys)
    case["orders"] = orders
    case["backend"] = "realtime"
    return case


# -- the sweep --------------------------------------------------------------


def run_sweep(smoke=False):
    arms = {arm: run_arm(arm, smoke) for arm in
            ("rpc", "federated", "materialized")}
    repeat = run_arm("materialized", smoke)
    fingerprints = {name: case["load"]["fingerprint"]
                    for name, case in arms.items()}
    deterministic = (
        repeat["load"]["fingerprint"] == fingerprints["materialized"]
        and repeat["page_p99_s"] == arms["materialized"]["page_p99_s"]
        and len(set(fingerprints.values())) == 1
    )
    realtime = run_realtime_identity(orders=2 if smoke else 4)
    rpc_p99 = arms["rpc"]["page_p99_s"]
    mat_p99 = arms["materialized"]["page_p99_s"]
    return {
        "schema": 1,
        "bench": "federation",
        "seed": SEED,
        "smoke": smoke,
        "fanout": FANOUT,
        "freshness_bound_s": FRESHNESS,
        "arms": arms,
        "rpc_over_materialized_p99": (
            rpc_p99 / mat_p99 if mat_p99 > 0 else 0.0
        ),
        "identity": all(case["identity"]["identical"]
                        for case in arms.values()),
        "realtime": realtime,
        "deterministic": deterministic,
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = [
        f"query federation: storefront page at fanout {results['fanout']} "
        f"(freshness bound {results['freshness_bound_s'] * 1000:.0f} ms)"
    ]
    lines.append(
        f"{'arm':>14} {'pages':>7} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'strategies':>28}"
    )
    for name, case in sorted(results["arms"].items()):
        pages = case["load"]["classes"]["pages"]["offered"]
        mix = ", ".join(f"{k}:{v}" for k, v in
                        sorted(case["strategies"].items())) or "-"
        lines.append(
            f"{name:>14} {pages:>7} {case['page_p50_s'] * 1000:>9.3f} "
            f"{case['page_p99_s'] * 1000:>9.3f} {mix:>28}"
        )
    mat = results["arms"]["materialized"]
    lines.append(
        f"rpc/materialized p99 = {results['rpc_over_materialized_p99']:.1f}x; "
        f"max served staleness "
        f"{mat['max_served_staleness'] * 1000:.2f} ms; "
        f"violations {mat['freshness_violations']:.0f}"
    )
    lines.append(
        f"answer identity: sim={results['identity']} "
        f"realtime={results['realtime']['identical']}; "
        f"deterministic: {results['deterministic']}"
    )
    return "\n".join(lines)


# -- pytest surface ---------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; also refreshes the artifact."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_materialized_page_beats_rpc_baseline(sweep):
    # The ISSUE gate: the materialized view serves the page below the
    # RPC-composition baseline's p99.  (Federated is *not* asserted to
    # beat RPC -- under source-server queueing its parallel fan-out
    # waits in the same queues the sequential GETs do.)
    arms = sweep["arms"]
    assert arms["materialized"]["page_p99_s"] < arms["rpc"]["page_p99_s"]
    assert (arms["materialized"]["page_p99_s"]
            < arms["federated"]["page_p99_s"])


def test_planner_serves_materialized_within_bound(sweep):
    mat = sweep["arms"]["materialized"]
    assert mat["strategies"].get("materialized", 0) > 0
    assert mat["max_served_staleness"] <= sweep["freshness_bound_s"]
    assert mat["freshness_violations"] == 0


def test_federated_arm_never_serves_stale(sweep):
    fed = sweep["arms"]["federated"]
    assert set(fed["strategies"]) == {"federated"}


def test_answer_identity(sweep):
    for name, case in sweep["arms"].items():
        assert case["identity"]["identical"], f"{name} answers diverge"
    assert sweep["realtime"]["identical"]


def test_deterministic(sweep):
    assert sweep["deterministic"] is True


# -- CLI --------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--out", default=str(OUTPUT))
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    print(describe(results))
    out = write_results(results, args.out)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
