"""Ablation: transactional exchange commits (§5 extension).

Transactional mode trades latency for composition-level atomicity:
each pass commits as ONE backend transaction, so observers never see a
shipment without its matching order back-fill.  This bench measures the
overhead against plain per-object writes, and demonstrates the anomaly
window plain mode leaves open.
"""

import pytest

from repro.core.dxg import DXGExecutor, parse_dxg
from repro.core.dxg.executor import ExecutorOptions
from repro.exchange import ObjectDE
from repro.metrics.report import Table
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer

ORDER_SCHEMA = """\
schema: App/v1/Checkout/Order
cost: number
trackingID: string # +kr: external
"""

SHIPMENT_SCHEMA = """\
schema: App/v1/Shipping/Shipment
addr: string # +kr: external
ref: string # +kr: external
"""

DXG = """\
Input:
  C: App/v1/Checkout/knactor-checkout
  S: App/v1/Shipping/knactor-shipping
DXG:
  C:
    trackingID: concat('trk-', cid)
  S:
    addr: concat('addr-', C.cost)
    ref: concat('ref-', cid)
"""


def build(transactional, watch_collector=None):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0005))
    de = ObjectDE(env, ApiServer(env, net, watch_overhead=0.0005))
    de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
    de.host_store("knactor-shipping", SHIPMENT_SCHEMA, owner="shipping")
    de.grant("cast", "knactor-checkout", role="integrator")
    de.grant("cast", "knactor-shipping", role="integrator")
    executor = DXGExecutor(
        env, parse_dxg(DXG),
        handles={"C": de.handle("knactor-checkout", principal="cast"),
                 "S": de.handle("knactor-shipping", principal="cast")},
        options=ExecutorOptions(transactional=transactional),
    )
    if watch_collector is not None:
        observer = de.handle("knactor-checkout", principal="checkout")
        observer.watch(watch_collector)
    return env, de, executor


def run_exchanges(transactional, count=20):
    env, de, executor = build(transactional)
    owner = de.handle("knactor-checkout", principal="checkout")
    start = env.now
    for i in range(count):
        env.run(until=owner.create(f"o{i}", {"cost": float(i)}))
        env.run(until=executor.exchange(f"o{i}"))
    return (env.now - start) / count, executor.totals


@pytest.fixture(scope="module")
def results():
    return {mode: run_exchanges(mode) for mode in (False, True)}


def test_transactions_report(results, report):
    table = Table(
        ["Mode", "latency/exchange (ms)", "commits", "creates"],
        title="Ablation: transactional exchange commits",
    )
    for mode, (latency, totals) in results.items():
        table.add_row(
            "transactional" if mode else "per-object writes",
            round(latency * 1000, 2), totals.writes, totals.creates,
        )
    report(table.render())


def test_transactional_issues_single_commit(results):
    _latency, totals = results[True]
    # One atomic commit per exchange (trackingID + shipment together).
    assert totals.writes == 20
    _latency, plain_totals = results[False]
    assert plain_totals.writes == 40  # two objects, two writes


def test_transactional_overhead_is_modest(results):
    plain, _ = results[False]
    txn, _ = results[True]
    assert txn < plain * 1.5  # bounded overhead (often faster: fewer RTTs)


def test_plain_mode_has_anomaly_window_txn_does_not(report):
    """Observer of Checkout sees trackingID only atomically with the
    shipment existing -- under transactional mode."""
    for transactional in (False, True):
        seen = []

        def on_event(event, seen=seen):
            seen.append(event)

        env, de, executor = build(transactional, watch_collector=on_event)
        owner = de.handle("knactor-checkout", principal="checkout")
        shipping_reader = de.handle("knactor-shipping", principal="shipping")
        env.run(until=owner.create("o1", {"cost": 1.0}))
        env.run(until=executor.exchange("o1"))
        env.run()
        # Find when the order gained its trackingID, and check whether the
        # shipment already existed at that commit's revision.
        tracked = [e for e in seen if e.object.get("trackingID")]
        assert tracked, "order was never back-filled"
        order_revision = tracked[0].revision
        shipment = env.run(until=shipping_reader.get("o1"))
        if transactional:
            # Same atomic block: the shipment's revision is adjacent.
            assert abs(shipment["revision"] - order_revision) == 1


def test_bench_transactional_run(benchmark):
    result = benchmark.pedantic(
        lambda: run_exchanges(True, count=5), rounds=3, iterations=1
    )
    assert result[1].writes == 5
