"""Benchmark-artifact schema validation and regression gating.

Every ``BENCH_*.json`` artifact carries a versioned envelope::

    {"schema": 1, "bench": "<name>", "seed": <int>, "smoke": <bool>, ...}

Two commands:

``--validate [paths...]``
    Check the envelope on each artifact (default: every ``BENCH_*.json``
    at the repo root).  Exit 1 listing every violation.

``--baseline OLD --fresh NEW [--tolerance 0.05]``
    Compare a freshly generated artifact against the committed baseline
    and exit 1 on regression.  Metrics are discovered structurally: any
    numeric leaf whose key ends in a latency suffix (``p50_s``,
    ``p99_s``, ``_ms``) must not grow past ``baseline * (1 + tol)``,
    and any throughput leaf (``throughput_rps``, ``orders_per_sec``,
    ``ops_per_sim_sec``) must not fall below ``baseline * (1 - tol)``.
    The sim backend is deterministic, so like-for-like comparisons are
    exact and the tolerance only absorbs intentional re-baselining
    slack.

Comparisons are refused across different ``bench`` names or
smoke/full shapes -- that is a harness bug, not a regression.

Run as a script (``python benchmarks/baseline.py ...``); CI wires both
commands into the bench job.
"""

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

SCHEMA_VERSION = 1

#: Required envelope: key -> accepted types.
ENVELOPE = {
    "schema": (int,),
    "bench": (str,),
    "seed": (int,),
    "smoke": (bool,),
}

#: Leaf-key suffixes and the direction that counts as a regression.
LOWER_IS_BETTER = ("p50_s", "p99_s", "p999_s", "_ms")
HIGHER_IS_BETTER = ("throughput_rps", "orders_per_sec", "ops_per_sim_sec")


def validate(doc, label="artifact"):
    """Envelope violations for one parsed artifact; empty when clean."""
    problems = []
    if not isinstance(doc, dict):
        return [f"{label}: top level must be an object"]
    for key, types in ENVELOPE.items():
        if key not in doc:
            problems.append(f"{label}: missing required key {key!r}")
        # bool is an int subclass; keep the check strict per key.
        elif not isinstance(doc[key], types) or (
            key in ("schema", "seed") and isinstance(doc[key], bool)
        ):
            problems.append(
                f"{label}: {key!r} must be {types[0].__name__}, "
                f"got {type(doc[key]).__name__}"
            )
    if isinstance(doc.get("schema"), int) and doc["schema"] != SCHEMA_VERSION:
        problems.append(
            f"{label}: schema version {doc['schema']} unsupported "
            f"(expected {SCHEMA_VERSION})"
        )
    return problems


def _metric_leaves(doc, prefix=""):
    """Yield (path, value, direction) for every gated numeric leaf."""
    if isinstance(doc, dict):
        items = doc.items()
    elif isinstance(doc, list):
        items = ((f"[{i}]", v) for i, v in enumerate(doc))
    else:
        return
    for key, value in items:
        path = f"{prefix}.{key}" if prefix and not key.startswith("[") else (
            f"{prefix}{key}" if key.startswith("[") else key
        )
        if isinstance(value, (dict, list)):
            yield from _metric_leaves(value, path)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            name = key if isinstance(key, str) else ""
            if name.endswith(LOWER_IS_BETTER):
                yield path, float(value), "lower"
            elif name.endswith(HIGHER_IS_BETTER):
                yield path, float(value), "higher"


def compare(baseline, fresh, tolerance=0.05):
    """Regressions of ``fresh`` vs ``baseline``; empty when clean.

    A metric present in only one document is skipped (bench shape
    changed; re-baseline instead).  Near-zero baselines are skipped too:
    a ratio against ~0 is noise, not signal.
    """
    if baseline.get("bench") != fresh.get("bench"):
        return [
            f"bench mismatch: baseline {baseline.get('bench')!r} vs "
            f"fresh {fresh.get('bench')!r} -- not comparable"
        ]
    if baseline.get("smoke") != fresh.get("smoke"):
        return [
            f"shape mismatch: baseline smoke={baseline.get('smoke')} vs "
            f"fresh smoke={fresh.get('smoke')} -- not comparable"
        ]
    base_metrics = {p: (v, d) for p, v, d in _metric_leaves(baseline)}
    regressions = []
    for path, value, direction in _metric_leaves(fresh):
        entry = base_metrics.get(path)
        if entry is None:
            continue
        base_value, _ = entry
        if abs(base_value) < 1e-9:
            continue
        if direction == "lower" and value > base_value * (1 + tolerance):
            regressions.append(
                f"{path}: {value:.6g} vs baseline {base_value:.6g} "
                f"(+{(value / base_value - 1) * 100:.1f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
        elif direction == "higher" and value < base_value * (1 - tolerance):
            regressions.append(
                f"{path}: {value:.6g} vs baseline {base_value:.6g} "
                f"({(value / base_value - 1) * 100:.1f}%, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return regressions


def _load(path):
    return json.loads(Path(path).read_text())


def run_validate(paths):
    paths = [Path(p) for p in paths] or sorted(ROOT.glob("BENCH_*.json"))
    problems = []
    for path in paths:
        try:
            doc = _load(path)
        except (OSError, ValueError) as error:
            problems.append(f"{path.name}: unreadable ({error})")
            continue
        problems.extend(validate(doc, label=path.name))
    for problem in problems:
        print(f"INVALID: {problem}")
    if not problems:
        print(f"validated {len(paths)} artifact(s): all envelopes ok")
    return 1 if problems else 0


def run_compare(baseline_path, fresh_path, tolerance):
    baseline, fresh = _load(baseline_path), _load(fresh_path)
    problems = validate(baseline, "baseline") + validate(fresh, "fresh")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    regressions = compare(baseline, fresh, tolerance)
    if regressions:
        print(f"REGRESSION vs {baseline_path}:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(
        f"no regression: {fresh_path} within {tolerance * 100:.0f}% "
        f"of {baseline_path}"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--validate", nargs="*", metavar="PATH",
                        help="validate artifact envelopes "
                             "(default: BENCH_*.json at the repo root)")
    parser.add_argument("--baseline", help="committed baseline artifact")
    parser.add_argument("--fresh", help="freshly generated artifact")
    parser.add_argument("--tolerance", type=float, default=0.05)
    args = parser.parse_args(argv)
    if args.validate is not None:
        return run_validate(args.validate)
    if args.baseline and args.fresh:
        return run_compare(args.baseline, args.fresh, args.tolerance)
    parser.error("need --validate or --baseline/--fresh")


if __name__ == "__main__":
    raise SystemExit(main())
