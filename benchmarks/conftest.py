"""Shared benchmark fixtures."""

import pytest


@pytest.fixture
def report(capsys):
    """Print a report table to the real terminal, bypassing capture."""

    def emit(text):
        with capsys.disabled():
            print("\n" + text + "\n")

    return emit
