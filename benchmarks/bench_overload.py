"""Overload benchmark: the ``repro.flow`` backpressure plane under 10x load.

Three measurements on the Knactor retail app, written to
``BENCH_overload.json``:

- **nominal overhead** -- the nominal-load order burst with ``flow=True``
  vs ``flow=False``.  Credit accounting, admission checks, and queue
  bounds must cost <= 5% throughput when nothing is overloaded.
- **overload containment** -- a 10x concurrent order burst plus
  slow-consumer watchers, with flow control on and every bound
  deliberately tight.  The plane must degrade by shedding and rejecting
  (``OverloadedError`` -> client backoff via ``RetryPolicy``) while
  every queue stays under its bound: reconciler dirty-key peaks under
  ``reconciler_queue``, RPC accept peaks under the accept queue, watch
  paused buffers under ``4 x credits``.  Order p99 stays finite because
  rejected creates retry with backoff instead of queueing without bound.
- **determinism** -- two same-seed overload runs must produce
  bit-identical shed/rejection counters and final store state.

Run directly (``python benchmarks/bench_overload.py [--smoke]``), via
``knactor bench overload``, or under pytest
(``pytest benchmarks/bench_overload.py``).
"""

import argparse
import hashlib
import json
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER
from repro.faults import RetryPolicy
from repro.flow import BULK, FlowConfig
from repro.simnet.network import FixedLatency

SEED = 13
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_overload.json"

NOMINAL_ORDERS = 12
SMOKE_NOMINAL_ORDERS = 8
OVERLOAD_FACTOR = 10
WATCHERS = 3
WATCH_CREDITS = 4
#: Bench watchers run an even tighter window than the app default, over
#: a WAN-grade link, so the burst's fan-out outpaces their credit-grant
#: round trips (the slow-consumer scenario credit flow exists for).
WATCHER_CREDITS = 2
SLOW_CONSUMER_LINK = FixedLatency(0.025)

#: Deliberately tight bounds so a smoke-sized burst genuinely overloads:
#: the bench is about *containment*, not absolute capacity.
BENCH_FLOW = FlowConfig(
    watch_credits=WATCH_CREDITS,
    reconciler_queue=64,
    admission_rate=600.0,
    admission_burst=24,
    admission_queue_high=6,
    principals={"bench-bulk": BULK},
)


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _state_digest(app):
    state = []
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
        handle = app.de.handle(store, principal=app.de.store(store).owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["revision"], view["data"]))
    return hashlib.sha256(
        json.dumps(state, sort_keys=True).encode()
    ).hexdigest()


def run_case(orders, flow, seed=SEED):
    """One concurrent order burst; returns throughput, latency, and the
    full backpressure counter set (empty when ``flow=False``)."""
    retry = RetryPolicy(max_attempts=12, base_backoff=0.01, max_backoff=2.0)
    app = RetailKnactorApp.build(
        profile=K_APISERVER, with_notify=False, seed=seed,
        retry_policy=retry, flow=BENCH_FLOW if flow else None,
    )

    # Slow consumers: read-only watchers on a high-latency link whose
    # tiny credit windows exhaust while their grants ride back, forcing
    # the server to pause, coalesce, and (past the paused bound) resync.
    watches = []
    if flow:
        for index in range(WATCHERS):
            principal = f"bench-bulk-watch-{index}"
            app.runtime.network.set_latency(
                app.de.backend.location, principal, SLOW_CONSUMER_LINK,
            )
            app.de.grant(principal, "knactor-checkout", role="reader")
            handle = app.de.handle(
                "knactor-checkout", principal=principal,
                credits=WATCHER_CREDITS,
            )
            watches.append(handle.watch(lambda event: None))

    workload = OrderWorkload(seed=seed)
    latencies = []
    failures = []

    def submit(env, key, data):
        started = env.now
        try:
            yield app.place_order(key, data)
        except Exception as error:  # gave up after retries: count, don't crash
            failures.append(type(error).__name__)
        else:
            latencies.append(env.now - started)

    started = app.env.now
    burst = [
        app.env.process(submit(app.env, key, data))
        for key, data in workload.orders(orders)
    ]
    app.env.run(until=app.env.all_of(burst))
    window = app.env.now - started
    app.run_until_quiet(max_seconds=600.0)

    backend = app.de.backend
    reconciler_peaks = {
        name: knactor.reconciler.queue_peak
        for name, knactor in app.runtime.knactors.items()
        if knactor.reconciler is not None
    }
    reconciler_shed = sum(
        knactor.reconciler.shed_count
        for knactor in app.runtime.knactors.values()
        if knactor.reconciler is not None
    )
    result = {
        "orders": orders,
        "flow": bool(flow),
        "seed": seed,
        "completed": len(latencies),
        "failed": len(failures),
        "burst_window_s": window,
        "orders_per_sec": len(latencies) / window if window > 0 else 0.0,
        "order_p50_s": _percentile(latencies, 0.50),
        "order_p99_s": _percentile(latencies, 0.99),
        "retry_stats": retry.stats(),
        "state_digest": _state_digest(app),
        "reconciler_queue_peak": max(reconciler_peaks.values(), default=0),
        "reconciler_shed": reconciler_shed,
        "rpc_accept_peak": backend._worker_pool.peak_queued,
        "rpc_rejected_overload": getattr(backend, "rejected_overload", 0),
    }
    if flow:
        result["flow_counters"] = {
            "admission": backend.admission.stats(),
            "watch_pauses": backend.watch_pauses,
            "watch_credit_grants": backend.watch_credit_grants,
            "watch_shed_events": backend.watch_shed_events,
            "watch_forced_resyncs": backend.watch_forced_resyncs,
            "watch_peak_paused": max(
                (w.peak_paused for w in watches), default=0),
        }
    return result


# -- the sweep -------------------------------------------------------------


def run_sweep(smoke=False):
    nominal = SMOKE_NOMINAL_ORDERS if smoke else NOMINAL_ORDERS
    overload = nominal * OVERLOAD_FACTOR
    nominal_off = run_case(nominal, flow=False)
    nominal_on = run_case(nominal, flow=True)
    overload_on = run_case(overload, flow=True)
    overload_repeat = run_case(overload, flow=True)
    overhead = (
        nominal_on["orders_per_sec"] / nominal_off["orders_per_sec"]
        if nominal_off["orders_per_sec"] else 0.0
    )
    return {
        "schema": 1,
        "bench": "overload",
        "seed": SEED,
        "smoke": smoke,
        "overload_factor": OVERLOAD_FACTOR,
        "bounds": {
            "watch_credits": WATCH_CREDITS,
            "watcher_credits": WATCHER_CREDITS,
            "watch_paused_max": 4 * WATCHER_CREDITS,
            "reconciler_queue": BENCH_FLOW.reconciler_queue,
            "admission_queue_high": BENCH_FLOW.admission_queue_high,
        },
        "nominal_off": nominal_off,
        "nominal_on": nominal_on,
        "overload_on": overload_on,
        "overload_repeat": overload_repeat,
        "nominal_throughput_ratio": overhead,
        "deterministic": _fingerprint(overload_on) == _fingerprint(
            overload_repeat),
    }


def _fingerprint(case):
    """The determinism contract: every shed/rejection counter + state."""
    return {
        "state_digest": case["state_digest"],
        "completed": case["completed"],
        "failed": case["failed"],
        "reconciler_shed": case["reconciler_shed"],
        "rpc_rejected_overload": case["rpc_rejected_overload"],
        "retry_stats": case["retry_stats"],
        "flow_counters": case.get("flow_counters"),
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["overload containment (retail app, concurrent order burst)"]
    lines.append(
        f"{'case':>16} {'orders':>7} {'done':>5} {'ord/sec':>9} "
        f"{'p99 ms':>9} {'rej':>5} {'shed':>5}"
    )
    for label in ("nominal_off", "nominal_on", "overload_on"):
        case = results[label]
        rejected = (
            case.get("flow_counters", {}).get("admission", {})
            .get("rejected", 0)
        )
        lines.append(
            f"{label:>16} {case['orders']:>7} {case['completed']:>5} "
            f"{case['orders_per_sec']:>9.1f} "
            f"{case['order_p99_s'] * 1e3:>9.2f} "
            f"{rejected:>5} {case['reconciler_shed']:>5}"
        )
    lines.append(
        f"nominal flow overhead: "
        f"{(1 - results['nominal_throughput_ratio']) * 100:.1f}% "
        f"(ratio {results['nominal_throughput_ratio']:.3f})"
    )
    lines.append(f"deterministic across same-seed runs: "
                 f"{results['deterministic']}")
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes the JSON artifact as it goes."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_overload_stays_bounded(sweep, report):
    case = sweep["overload_on"]
    bounds = sweep["bounds"]
    assert case["reconciler_queue_peak"] <= bounds["reconciler_queue"], (
        f"reconciler queue peaked at {case['reconciler_queue_peak']} "
        f"over bound {bounds['reconciler_queue']}"
    )
    counters = case["flow_counters"]
    assert counters["watch_peak_paused"] <= bounds["watch_paused_max"], (
        f"watch paused buffer peaked at {counters['watch_peak_paused']} "
        f"over bound {bounds['watch_paused_max']}"
    )
    # Overload must engage the plane, not sail through.
    assert counters["admission"]["rejected"] > 0, (
        "10x load never tripped admission control"
    )
    assert counters["watch_pauses"] > 0, (
        "slow consumers never exhausted their credit windows"
    )
    # p99 finite: every order completes (retry backoff absorbs
    # rejections) and the percentile is a real number.
    assert case["completed"] == case["orders"], (
        f"{case['failed']} orders failed outright under overload"
    )
    assert case["order_p99_s"] > 0.0
    report(describe(sweep))


def test_priority_classes_shield_the_integrator(sweep):
    admission = sweep["overload_on"]["flow_counters"]["admission"]
    integrator = admission["classes"]["integrator"]
    assert integrator["admitted"] > 0
    # The cast rides through overload with at most token-bucket-level
    # rejections; the shed burden lands on the normal/bulk classes.
    assert integrator["rejected"] <= admission["rejected"]


def test_nominal_overhead_within_five_percent(sweep):
    ratio = sweep["nominal_throughput_ratio"]
    assert ratio >= 0.95, (
        f"flow control cost {(1 - ratio) * 100:.1f}% nominal throughput"
    )
    off, on = sweep["nominal_off"], sweep["nominal_on"]
    assert off["completed"] == off["orders"]
    assert on["completed"] == on["orders"]


def test_same_seed_runs_are_bit_identical(sweep):
    assert sweep["deterministic"], (
        "same-seed overload runs diverged in shed counts or final state"
    )
    first = _fingerprint(sweep["overload_on"])
    second = _fingerprint(sweep["overload_repeat"])
    assert first == second


def test_artifact_written(sweep):
    data = json.loads(OUTPUT.read_text())
    assert data["bench"] == "overload"
    assert data["overload_on"]["flow"] is True


# -- CLI surface -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Drive the retail app into overload with flow control on."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): 8 nominal / 80 overload orders")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
