"""Chaos benchmark: the retail app under a seeded fault schedule.

The robustness counterpart to the latency benches: run the full Knactor
retail app (checkout x shipping x payment through one Cast) while a
:class:`~repro.faults.FaultInjector` crashes the store backend,
partitions links, and drops messages per a deterministic
:class:`~repro.faults.FaultPlan`.  Asserts the properties the resilience
layer exists to provide:

- **convergence** -- every placed order reaches ``fulfilled`` after the
  faults heal (level-triggered reconciliation + watch resync),
- **zero lost updates** -- no acknowledged create disappears (apiserver
  WAL replay across crashes),
- **determinism** -- the same seed reproduces the identical fault event
  trace and final state digest, twice.
"""

import pytest

from repro.faults.chaos import default_retail_plan, describe_report, run_retail_chaos

SEED = 42
ORDERS = 5


@pytest.fixture(scope="module")
def chaos_runs():
    """Two same-seed runs (module-scoped: the sim pair takes a while)."""
    return (
        run_retail_chaos(seed=SEED, orders=ORDERS),
        run_retail_chaos(seed=SEED, orders=ORDERS),
    )


def test_plan_contains_required_fault_classes():
    plan = default_retail_plan(SEED)
    assert plan.count("crash") >= 1
    assert plan.count("partition") >= 1
    assert plan.count("drop") >= 1


def test_converges_with_zero_lost_updates(chaos_runs, report):
    first, _ = chaos_runs
    assert first["lost"] == [], f"lost committed orders: {first['lost']}"
    assert first["unfulfilled"] == [], (
        f"orders never fulfilled: {first['unfulfilled']}"
    )
    assert first["converged"]
    assert first["orders"] == ORDERS
    # The schedule actually bit: the store crashed and clients retried.
    assert first["resilience"]["stores"]["object-backend"]["crashes"] >= 1
    assert first["retry"]["retries"] > 0
    report(describe_report(first))


def test_same_seed_reproduces_identical_trace(chaos_runs):
    first, second = chaos_runs
    assert first["fault_trace"] == second["fault_trace"]
    assert first["order_states"] == second["order_states"]
    assert first["state_digest"] == second["state_digest"]
    assert first["convergence_time"] == second["convergence_time"]
    assert first["retry"] == second["retry"]
