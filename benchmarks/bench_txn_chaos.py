"""Chaos benchmark: the cross-shard transactional plane under fault load.

Each seed derives a workload of cross-shard op batches (every batch spans
at least two shards) and a fault schedule: phase-targeted coordinator
kills (armed at 2PC/saga protocol boundaries), timed coordinator kills,
and coordinator<->shard partitions.  Two configurations run the same
workload:

- **coordinated** -- batches submitted through the transactional plane
  (``mode="2pc"`` or ``"saga"``) with per-txn idempotence keys, retried
  on retryable failures.  Gated invariants: zero lost effects (a txn
  reported committed is fully present), zero duplicated effects
  (replaying every committed batch under its idempotence key changes
  nothing), zero partial batches, every in-doubt participant drained.
- **optimistic baseline** -- the same batches split per shard and
  committed as independent single-shard transactions with blind retries
  and no coordinator.  Under the same chaos this leaks partial batches
  and ambiguous outcomes (a retry after a lost reply cannot tell whether
  its own write landed), which is the anomaly budget the plane erases.

The bench also gates the price of that safety: the coordinated abort
rate must stay within ``ABORT_MARGIN`` of the baseline's trouble rate
(aborted + partial + ambiguous), and two same-seed coordinated runs must
produce bit-identical fingerprints (final shard state + outcomes +
injector log + coordinator counters).

Run directly (``python benchmarks/bench_txn_chaos.py [--smoke]``), via
``knactor bench txn-chaos``, or under pytest
(``pytest benchmarks/bench_txn_chaos.py``).
"""

import argparse
import hashlib
import json
import random
from pathlib import Path

import pytest

from repro.errors import (
    AlreadyExistsError,
    ConflictError,
    DeadlineExceededError,
    StoreError,
    UnavailableError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer, ShardRing, ShardedStore, ShardedStoreClient
from repro.txn.coordinator import PHASES

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_txn_chaos.json"

N_SHARDS = 3
SEEDS = (0, 1, 2, 3)
SMOKE_SEEDS = (0, 1)
N_TXNS = 10
SMOKE_TXNS = 6
#: Coordinated aborts may exceed the baseline's visible trouble rate by
#: at most this much: refusing to commit (and rolling back) is the
#: correct answer to chaos the baseline "survives" by leaking partials.
ABORT_MARGIN = 0.25


def build(seed):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0004))
    shards = [
        ApiServer(env, net, location=f"shard-{i}", watch_overhead=0.0)
        for i in range(N_SHARDS)
    ]
    store = ShardedStore(shards, name=f"bench-chaos-{seed}")
    client = ShardedStoreClient(store, "driver")
    return env, net, store, client


def workload(seed, n_txns):
    """Deterministic batches, each guaranteed to span >= 2 shards."""
    rng = random.Random(seed * 7919 + 13)
    batches = []
    for t in range(n_txns):
        keys, covered = [], set()
        i = 0
        want = rng.randrange(2, 5)
        while len(keys) < want or len(covered) < 2:
            key = f"b{seed}-t{t}-k{i}"
            i += 1
            idx = ShardRing.for_count(N_SHARDS).owner_index(key)
            if len(keys) < want or idx not in covered:
                keys.append(key)
                covered.add(idx)
            if i > 64:  # safety; never hit in practice
                break
        ops = [
            {"action": "create", "key": key, "data": {"txn": t, "seed": seed}}
            for key in keys
        ]
        mode = rng.choice(("2pc", "2pc", "saga"))
        batches.append((t, mode, ops))
    return batches


def chaos_plan(seed, coordinator_name, endpoints):
    rng = random.Random(seed * 104729 + 7)
    plan = FaultPlan()
    for _ in range(3):
        plan.kill_during_txn(
            coordinator_name, rng.choice(PHASES),
            at=rng.uniform(0.0, 1.2), duration=rng.uniform(0.05, 0.25),
        )
    for _ in range(2):
        plan.kill_process(coordinator_name, at=rng.uniform(0.0, 1.5),
                          duration=rng.uniform(0.05, 0.2))
    for _ in range(2):
        src, dst = rng.sample(list(endpoints), 2)
        plan.partition(src, dst, at=rng.uniform(0.0, 1.5),
                       duration=rng.uniform(0.02, 0.15))
    return plan


# -- coordinated configuration ----------------------------------------------


def _submit_coordinated(env, client, mode, ops, idem_key, outcomes, t):
    attempts = 0
    while attempts < 60:
        attempts += 1
        try:
            yield client.txn(ops, mode=mode, idempotence_key=idem_key)
            outcomes[t] = "committed"
            return
        except (UnavailableError, DeadlineExceededError):
            yield env.timeout(0.05)
        except ConflictError:
            yield env.timeout(0.03)  # in-doubt lock; decided soon
        except StoreError:
            outcomes[t] = "aborted"
            return
    outcomes[t] = "gave-up"


def _shard_state(store):
    return {
        s.location: {k: o.revision for k, o in sorted(s._objects.items())}
        for s in store.shards
    }


def run_coordinated(seed, n_txns):
    env, net, store, client = build(seed)
    coord = store.coordinator
    injector = FaultInjector(env, net, processes={"coord": coord})
    endpoints = [coord.location] + [s.location for s in store.shards]
    injector.schedule(chaos_plan(seed, "coord", endpoints))

    batches = workload(seed, n_txns)
    outcomes = {}
    rng = random.Random(seed)
    for t, mode, ops in batches:
        timer = env.timeout(rng.uniform(0.0, 1.5))
        timer.callbacks.append(
            lambda _evt, t=t, mode=mode, ops=ops: env.process(
                _submit_coordinated(env, client, mode, ops,
                                    f"idem-{seed}-{t}", outcomes, t)
            )
        )
    env.run()

    lost = partial = 0
    for t, mode, ops in batches:
        present = [op["key"] in store.shard_for(op["key"])._objects
                   for op in ops]
        if len(set(present)) != 1:
            partial += 1
        if outcomes.get(t) == "committed" and not all(present):
            lost += 1

    # Exactly-once: replay every committed batch under its idempotence
    # key; the cached outcome must answer and the state must not move.
    before = _shard_state(store)
    duplicated = 0
    for t, mode, ops in batches:
        if outcomes.get(t) != "committed":
            continue
        replay = env.process(_submit_coordinated(
            env, client, mode, ops, f"idem-{seed}-{t}", outcomes, t
        ))
        env.run(until=replay)
        if outcomes[t] != "committed":
            duplicated += 1
    state = _shard_state(store)
    if state != before:
        duplicated += 1

    stats = coord.txn_stats()
    counts = {
        "committed": sum(1 for o in outcomes.values() if o == "committed"),
        "aborted": sum(1 for o in outcomes.values() if o == "aborted"),
        "gave_up": sum(1 for o in outcomes.values() if o == "gave-up"),
    }
    fingerprint = hashlib.sha256(json.dumps(
        [state, sorted(outcomes.items()), injector.trace(), stats],
        sort_keys=True,
    ).encode()).hexdigest()
    return {
        "seed": seed,
        "txns": n_txns,
        "outcomes": counts,
        "abort_rate": (counts["aborted"] + counts["gave_up"]) / n_txns,
        "lost_effects": lost,
        "duplicated_effects": duplicated,
        "partial_batches": partial,
        "in_doubt_after": store.in_doubt_txns,
        "coordinator_alive": coord.alive,
        "coordinator_stats": stats,
        "fingerprint": fingerprint,
    }


# -- optimistic baseline -----------------------------------------------------


class _StubProcess:
    """Absorbs the chaos plan's coordinator kills: the baseline has no
    coordinator process, so those windows are no-ops (partitions still
    land on the shard links)."""

    alive = True

    def kill(self):
        pass

    def restart(self):
        pass


def _submit_optimistic(env, client, ops, outcomes, t):
    """Per-shard slices, blind retries, no idempotence: the anomaly
    window.  A retry whose predecessor's reply was lost hits
    AlreadyExistsError and cannot tell whose write landed."""
    by_shard = {}
    for op in ops:
        by_shard.setdefault(
            ShardRing.for_count(N_SHARDS).owner_index(op["key"]), []
        ).append(op)
    results = []
    for _idx, slice_ops in sorted(by_shard.items()):
        attempts, result = 0, "gave-up"
        while attempts < 60:
            attempts += 1
            try:
                yield client.txn(slice_ops)
                result = "committed"
                break
            except (UnavailableError, DeadlineExceededError):
                yield env.timeout(0.05)
            except AlreadyExistsError:
                result = "ambiguous"  # our earlier try? someone else?
                break
            except StoreError:
                result = "aborted"
                break
        results.append(result)
    if all(r == "committed" for r in results):
        outcomes[t] = "committed"
    elif any(r == "committed" for r in results):
        outcomes[t] = "partial"
    elif any(r == "ambiguous" for r in results):
        outcomes[t] = "ambiguous"
    else:
        outcomes[t] = "aborted"


def run_baseline(seed, n_txns):
    env, net, store, client = build(seed)
    injector = FaultInjector(env, net,
                             processes={"coord": _StubProcess()})
    endpoints = ["driver"] + [s.location for s in store.shards]
    injector.schedule(chaos_plan(seed, "coord", endpoints))

    batches = workload(seed, n_txns)
    outcomes = {}
    rng = random.Random(seed)
    for t, _mode, ops in batches:
        timer = env.timeout(rng.uniform(0.0, 1.5))
        timer.callbacks.append(
            lambda _evt, t=t, ops=ops: env.process(
                _submit_optimistic(env, client, ops, outcomes, t)
            )
        )
    env.run()

    partial = 0
    for t, _mode, ops in batches:
        present = [op["key"] in store.shard_for(op["key"])._objects
                   for op in ops]
        if len(set(present)) != 1:
            partial += 1
    counts = {
        "committed": sum(1 for o in outcomes.values() if o == "committed"),
        "aborted": sum(1 for o in outcomes.values() if o == "aborted"),
        "partial": sum(1 for o in outcomes.values() if o == "partial"),
        "ambiguous": sum(1 for o in outcomes.values() if o == "ambiguous"),
        "gave_up": sum(1 for o in outcomes.values() if o == "gave-up"),
    }
    trouble = n_txns - counts["committed"]
    return {
        "seed": seed,
        "txns": n_txns,
        "outcomes": counts,
        "trouble_rate": trouble / n_txns,
        "partial_batches": partial,
    }


# -- the sweep ---------------------------------------------------------------


def run_sweep(smoke=False):
    seeds = SMOKE_SEEDS if smoke else SEEDS
    n_txns = SMOKE_TXNS if smoke else N_TXNS
    coordinated = [run_coordinated(seed, n_txns) for seed in seeds]
    baseline = [run_baseline(seed, n_txns) for seed in seeds]
    repeat = run_coordinated(seeds[0], n_txns)

    total = n_txns * len(seeds)
    aborted = sum(c["outcomes"]["aborted"] + c["outcomes"]["gave_up"]
                  for c in coordinated)
    trouble = sum(b["txns"] - b["outcomes"]["committed"] for b in baseline)
    return {
        "schema": 1,
        "bench": "txn-chaos",
        "seed": seeds[0],
        "smoke": smoke,
        "seeds": list(seeds),
        "txns_per_seed": n_txns,
        "shards": N_SHARDS,
        "coordinated": coordinated,
        "baseline": baseline,
        "lost_effects": sum(c["lost_effects"] for c in coordinated),
        "duplicated_effects": sum(c["duplicated_effects"]
                                  for c in coordinated),
        "partial_batches": sum(c["partial_batches"] for c in coordinated),
        "in_doubt_after": sum(c["in_doubt_after"] for c in coordinated),
        "abort_rate": aborted / total,
        "baseline_trouble_rate": trouble / total,
        "baseline_partial_batches": sum(b["partial_batches"]
                                        for b in baseline),
        "abort_margin": ABORT_MARGIN,
        "deterministic": coordinated[0]["fingerprint"]
        == repeat["fingerprint"],
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["cross-shard txn plane under chaos "
             f"(seeds {results['seeds']}, "
             f"{results['txns_per_seed']} txns/seed, "
             f"{results['shards']} shards)"]
    lines.append(
        f"{'config':>12} {'committed':>10} {'aborted':>8} {'partial':>8} "
        f"{'lost':>5} {'dup':>4}"
    )
    committed = sum(c["outcomes"]["committed"] for c in results["coordinated"])
    aborted = sum(c["outcomes"]["aborted"] + c["outcomes"]["gave_up"]
                  for c in results["coordinated"])
    lines.append(
        f"{'coordinated':>12} {committed:>10} {aborted:>8} "
        f"{results['partial_batches']:>8} {results['lost_effects']:>5} "
        f"{results['duplicated_effects']:>4}"
    )
    base_committed = sum(b["outcomes"]["committed"]
                         for b in results["baseline"])
    base_aborted = sum(b["outcomes"]["aborted"] + b["outcomes"]["gave_up"]
                       for b in results["baseline"])
    lines.append(
        f"{'optimistic':>12} {base_committed:>10} {base_aborted:>8} "
        f"{results['baseline_partial_batches']:>8} {'-':>5} {'-':>4}"
    )
    lines.append(
        f"abort rate {results['abort_rate']:.2f} vs baseline trouble rate "
        f"{results['baseline_trouble_rate']:.2f} "
        f"(margin {results['abort_margin']:.2f})"
    )
    recoveries = sum(c["coordinator_stats"]["recoveries"]
                     for c in results["coordinated"])
    internal_aborts = sum(c["coordinator_stats"]["aborted"]
                          for c in results["coordinated"])
    lines.append(
        f"chaos absorbed: {recoveries} coordinator recoveries, "
        f"{internal_aborts} internal aborts rolled back and retried"
    )
    lines.append(f"in-doubt after drain: {results['in_doubt_after']}")
    lines.append(f"deterministic across same-seed runs: "
                 f"{results['deterministic']}")
    return "\n".join(lines)


# -- pytest surface ----------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes the JSON artifact as it goes."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_no_lost_or_duplicated_effects(sweep, report):
    assert sweep["lost_effects"] == 0, (
        f"{sweep['lost_effects']} committed txns missing effects"
    )
    assert sweep["duplicated_effects"] == 0, (
        f"{sweep['duplicated_effects']} idempotent replays re-applied"
    )
    assert sweep["partial_batches"] == 0, (
        f"{sweep['partial_batches']} coordinated batches partially applied"
    )
    report(describe(sweep))


def test_in_doubt_drains_and_coordinator_survives(sweep):
    assert sweep["in_doubt_after"] == 0
    for case in sweep["coordinated"]:
        assert case["coordinator_alive"]
    # The invariants must have been earned, not vacuous: the schedule
    # has to actually kill the coordinator mid-protocol.
    assert sum(c["coordinator_stats"]["recoveries"]
               for c in sweep["coordinated"]) > 0, (
        "fault schedule never killed the coordinator; chaos is a no-op"
    )


def test_abort_rate_within_margin_of_baseline(sweep):
    assert sweep["abort_rate"] <= (
        sweep["baseline_trouble_rate"] + sweep["abort_margin"]
    ), (
        f"coordinated abort rate {sweep['abort_rate']:.2f} exceeds "
        f"baseline trouble rate {sweep['baseline_trouble_rate']:.2f} "
        f"+ margin {sweep['abort_margin']:.2f}"
    )
    # The safety must be doing work somewhere: either chaos made the
    # baseline misbehave, or both configurations sailed through.
    committed = sum(c["outcomes"]["committed"] for c in sweep["coordinated"])
    assert committed > 0, "chaos aborted every coordinated txn"


def test_same_seed_runs_are_bit_identical(sweep):
    assert sweep["deterministic"], (
        "same-seed chaos runs diverged in state, outcomes, fault log, "
        "or coordinator counters"
    )


def test_artifact_written(sweep):
    data = json.loads(OUTPUT.read_text())
    assert data["bench"] == "txn-chaos"
    assert data["lost_effects"] == 0


# -- CLI surface -------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run cross-shard transactions under a seeded fault "
                    "schedule and gate atomicity + exactly-once."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): 2 seeds x 6 txns")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    ok = (
        results["lost_effects"] == 0
        and results["duplicated_effects"] == 0
        and results["partial_batches"] == 0
        and results["in_doubt_after"] == 0
        and results["deterministic"]
        and results["abort_rate"]
        <= results["baseline_trouble_rate"] + ABORT_MARGIN
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
