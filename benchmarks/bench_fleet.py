"""Workload-fleet benchmark: SLO reports under engineered overload.

Three measurements, written to ``BENCH_fleet.json``:

- **retail under flash crowd** -- the retail Knactor app driven by the
  :mod:`repro.load` open-loop generator: steady Poisson orders plus a
  flash-crowd spike, with the flow plane armed.  The scenario's SLO set
  (latency p99, availability, watch-lag freshness) is evaluated over the
  obs registry, with multi-window burn rates and causal trace exemplars
  on every violated objective.
- **sensor fleet under flash crowd** -- the DataX-style fleet (10^5
  Zipf-hot devices feeding the Log exchange through Sync) with tight
  admission control; the spike must shed, the report must show the
  reject rate, the freshness objective, and link exemplar trace ids.
- **autoscaler stress** -- the PR-7 :class:`~repro.cluster.ShardFleet`
  fed diurnal + flash-crowd arrivals; the fleet must scale up under the
  spike and land back, with zero lost writes.

All three run on the deterministic sim backend, so the committed
artifact is bit-stable and ``benchmarks/baseline.py`` can gate CI on
p99/throughput regressions against it.

Run directly (``python benchmarks/bench_fleet.py [--smoke]``), via
``knactor bench fleet``, or under pytest
(``pytest benchmarks/bench_fleet.py``).
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.cluster import Cluster, ShardFleet
from repro.flow import FlowConfig
from repro.load import (
    DiurnalArrivals,
    FlashCrowd,
    LoadGenerator,
    PoissonArrivals,
    TrafficClass,
    ZipfKeys,
)
from repro.load.scenarios import RetailLoadScenario, SensorFleetLoadScenario
from repro.obs.slo import BurnRateTracker, evaluate
from repro.simnet import Environment, Network
from repro.store import (
    AutoscalePolicy,
    MemKV,
    ShardedStore,
    ShardedStoreClient,
    Topology,
)

SEED = 29
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Sensor-fleet scenario: device cardinality and offered load.
FLEET_DEVICES = 100_000
FLEET_STEADY_RPS = 30.0
FLEET_SPIKE_RPS = 400.0
FLEET_DURATION = 4.0
SMOKE_FLEET_DURATION = 2.5

#: Retail scenario: order arrival shape.
RETAIL_BASE_RPS = 6.0
RETAIL_SPIKE_RPS = 120.0
RETAIL_DURATION = 4.0
SMOKE_RETAIL_DURATION = 2.5

#: Deliberately tight admission so the spike genuinely sheds: the bench
#: measures *containment + reporting*, not absolute capacity.
FLEET_FLOW = FlowConfig(
    admission_rate=60.0, admission_burst=20, admission_queue_high=4,
)
RETAIL_FLOW = FlowConfig(
    admission_rate=40.0, admission_burst=12, admission_queue_high=6,
)

#: Autoscaler stress: write arrival shape against one initial shard.
#: The diurnal peak plus the spike must outrun a single MemKV shard's
#: service rate, or worker-queue depth never crosses the scale target.
SCALE_TROUGH_RPS = 40.0
SCALE_PEAK_RPS = 2000.0
SCALE_PERIOD = 4.0
SCALE_SPIKE_RPS = 3000.0
SCALE_DURATION = 4.0
SMOKE_SCALE_DURATION = 2.0


def _case_from(scenario, result, specs, tracker):
    """One scenario's slice of the artifact: load summary + SLO report."""
    report = evaluate(
        specs, scenario.registry, tracker=tracker,
        scenario=scenario.name, env=scenario.env,
    )
    violated = report.violated()
    return {
        "load": result.summary(),
        "slo_report": report.to_json(),
        "violations": [r.name for r in violated],
        "violations_with_exemplars": sum(
            1 for r in violated if r.exemplars
        ),
        "alerts": [
            {"slo": spec.name, **window}
            for spec in specs
            for window in tracker.burn_rates(spec)
            if window["alert"]
        ] if tracker is not None else [],
    }


def run_sensorfleet(smoke=False, seed=SEED):
    duration = SMOKE_FLEET_DURATION if smoke else FLEET_DURATION
    scenario = SensorFleetLoadScenario(
        devices=FLEET_DEVICES, flow=FLEET_FLOW,
    )
    keys = lambda: ZipfKeys(FLEET_DEVICES, key_format="device-{:06d}")
    classes = [
        TrafficClass("steady", PoissonArrivals(FLEET_STEADY_RPS),
                     keys=keys(), principal="fleet-steady"),
        TrafficClass(
            "crowd",
            FlashCrowd(5.0, FLEET_SPIKE_RPS, duration * 0.3, duration * 0.3),
            keys=keys(), principal="fleet-crowd",
        ),
    ]
    specs = scenario.slos()
    tracker = BurnRateTracker(
        scenario.env, scenario.registry, specs, interval=0.25,
    )
    tracker.start()
    result = LoadGenerator(scenario, classes, duration, seed=seed).run()
    tracker.stop()
    case = _case_from(scenario, result, specs, tracker)
    case["analytics_records_seen"] = len(scenario.app.analytics_seen)
    return case


def run_retail(smoke=False, seed=SEED):
    duration = SMOKE_RETAIL_DURATION if smoke else RETAIL_DURATION
    scenario = RetailLoadScenario(flow=RETAIL_FLOW)
    classes = [
        TrafficClass("orders", PoissonArrivals(RETAIL_BASE_RPS),
                     keys=ZipfKeys(64, key_format="sku-{:03d}")),
        TrafficClass(
            "crowd",
            FlashCrowd(2.0, RETAIL_SPIKE_RPS, duration * 0.3,
                       duration * 0.25),
            keys=ZipfKeys(64, key_format="sku-{:03d}"),
        ),
    ]
    specs = scenario.slos()
    tracker = BurnRateTracker(
        scenario.env, scenario.registry, specs, interval=0.25,
    )
    tracker.start()
    result = LoadGenerator(scenario, classes, duration, seed=seed).run()
    tracker.stop()
    return _case_from(scenario, result, specs, tracker)


def run_autoscaler_stress(smoke=False, seed=SEED):
    """Diurnal + flash-crowd writes against an autoscaled shard fleet."""
    import random

    duration = SMOKE_SCALE_DURATION if smoke else SCALE_DURATION
    env = Environment()
    network = Network(env)

    def factory(i):
        return MemKV(env, network, location=f"fleet-shard-{i}")

    topology = Topology(
        shards=1, seed=seed, min_shards=1, max_shards=6,
        autoscale=AutoscalePolicy(target_queue_depth=2.0, interval=0.2,
                                  cooldown=0.4),
    )
    store = ShardedStore(topology=topology, shard_factory=factory,
                         name="bench-fleet-store")
    client = ShardedStoreClient(store, "bench")
    cluster = Cluster(env)
    fleet = ShardFleet(cluster, store)
    env.run(until=4.0)  # initial shard pod comes up
    fleet.start()
    start = env.now

    arrivals = []
    rng = random.Random(f"{seed}/autoscaler/arrivals")
    diurnal = DiurnalArrivals(SCALE_TROUGH_RPS, SCALE_PEAK_RPS, SCALE_PERIOD)
    arrivals.extend(diurnal.times(rng, duration, start))
    crowd = FlashCrowd(10.0, SCALE_SPIKE_RPS, duration * 0.5, duration * 0.2)
    arrivals.extend(crowd.times(rng, duration, start))
    arrivals.sort()

    written = {}
    failures = []

    # Unique keys: open-loop arrivals put concurrent writes in flight,
    # and two creates racing on one hot key would fail on semantics
    # rather than capacity -- capacity is what this case measures.
    def write(index):
        key = f"k/{index:06d}"
        try:
            yield client.create(key, {"v": index})
        except Exception as error:
            failures.append(type(error).__name__)
        else:
            written[key] = index

    def driver():
        in_flight = []
        for index, when in enumerate(arrivals):
            delay = when - env.now
            if delay > 0:
                yield env.timeout(delay)
            in_flight.append(env.process(write(index)))
        yield env.all_of(in_flight)

    env.run(until=env.process(driver()))
    env.run(until=env.now + 10.0)  # drain + scale back down
    fleet.stop()

    mismatches = []

    def verify():
        for key, value in sorted(written.items()):
            obj = yield client.get(key)
            if obj["data"]["v"] != value:
                mismatches.append(key)

    env.process(verify())
    env.run(until=env.now + 10.0)

    events = fleet.autoscaler.events
    return {
        "writes_offered": len(arrivals),
        "writes_acked": len(written),
        "write_failures": len(failures),
        "scaling_events": len(events),
        "peak_shards": max((e.to_replicas for e in events),
                           default=store.shard_count),
        "final_shards": store.shard_count,
        "reshards_driven": fleet.reshards_driven,
        "mismatches": len(mismatches),
        "virtual_seconds": env.now - start,
    }


# -- the sweep -------------------------------------------------------------


def run_sweep(smoke=False):
    sensorfleet = run_sensorfleet(smoke)
    sensorfleet_repeat = run_sensorfleet(smoke)
    retail = run_retail(smoke)
    autoscaler = run_autoscaler_stress(smoke)
    violated = (sensorfleet["violations"] + retail["violations"])
    with_exemplars = (sensorfleet["violations_with_exemplars"]
                      + retail["violations_with_exemplars"])
    return {
        "schema": 1,
        "bench": "fleet",
        "seed": SEED,
        "smoke": smoke,
        "scenarios": {
            "retail": retail,
            "sensorfleet": sensorfleet,
        },
        "autoscaler": autoscaler,
        "violations": violated,
        "violations_with_exemplars": with_exemplars,
        "deterministic": (
            sensorfleet["load"]["fingerprint"]
            == sensorfleet_repeat["load"]["fingerprint"]
            and sensorfleet["load"]["p99_s"]
            == sensorfleet_repeat["load"]["p99_s"]
        ),
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["workload fleet: SLO reports under flash-crowd load"]
    lines.append(
        f"{'scenario':>12} {'offered':>8} {'ok':>6} {'rej':>6} "
        f"{'p50 ms':>8} {'p99 ms':>8} {'violations':>11}"
    )
    for name, case in sorted(results["scenarios"].items()):
        load = case["load"]
        lines.append(
            f"{name:>12} {load['offered']:>8} {load['completed']:>6} "
            f"{load['rejected']:>6} {load['p50_s'] * 1000:>8.2f} "
            f"{load['p99_s'] * 1000:>8.2f} "
            f"{len(case['violations']):>11}"
        )
        for entry in case["slo_report"]["objectives"]:
            status = "MET" if entry["met"] else "VIOLATED"
            exemplar = ""
            if entry["exemplars"]:
                exemplar = f" exemplar={entry['exemplars'][0]['trace_id']}"
            lines.append(f"{'':>14}{entry['name']}: {status}{exemplar}")
    scale = results["autoscaler"]
    lines.append(
        f"autoscaler: {scale['writes_acked']}/{scale['writes_offered']} "
        f"writes, {scale['scaling_events']} scaling events, peak "
        f"{scale['peak_shards']} shards, {scale['mismatches']} mismatches"
    )
    lines.append(f"deterministic: {results['deterministic']}")
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; also refreshes the artifact."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_flash_crowd_sheds_and_reports(sweep):
    fleet = sweep["scenarios"]["sensorfleet"]["load"]
    assert fleet["rejected"] > 0, "tight admission must shed the spike"
    assert fleet["completed"] > 0


def test_violated_objectives_carry_exemplars(sweep):
    for name, case in sweep["scenarios"].items():
        for entry in case["slo_report"]["objectives"]:
            if entry["met"] or entry["no_data"]:
                continue
            assert entry["exemplars"], (
                f"{name}: violated {entry['name']} has no trace exemplars"
            )


def test_freshness_objective_evaluated(sweep):
    kinds = {e["kind"]: e for case in sweep["scenarios"].values()
             for e in case["slo_report"]["objectives"]}
    assert "freshness" in kinds
    assert kinds["freshness"]["sample_count"] > 0


def test_autoscaler_scales_under_load(sweep):
    scale = sweep["autoscaler"]
    assert scale["scaling_events"] > 0
    assert scale["peak_shards"] > 1
    assert scale["mismatches"] == 0
    assert scale["write_failures"] == 0


def test_deterministic(sweep):
    assert sweep["deterministic"] is True


# -- CLI -------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    print(describe(results))
    out = write_results(results, args.output)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
