"""Ablation: zero-copy (co-located integrator) vs object size.

§3.3: "when data stores are hosted on the DE, the DE and integrator can
implement zero-copy data exchange to further minimize the data
movement."  We model co-location: the integrator runs at the backend's
network location, eliminating its per-op network hops.  The saving
scales with how chatty the exchange is, and is bounded by per-op costs.
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.measure import SHIPMENT_DXG, extract_stages
from repro.core.optimizer import OptimizationProfile
from repro.metrics.report import Table

REMOTE = OptimizationProfile(name="K-redis", backend="memkv")
ZERO_COPY = OptimizationProfile(
    name="K-redis-zerocopy", backend="memkv", zero_copy=True
)

ITEM_COUNTS = (2, 100)


def run(profile, item_count, orders=8):
    app = RetailKnactorApp.build(
        profile=profile, with_notify=False, dxg=SHIPMENT_DXG
    )
    env = app.env

    def driver(env):
        for i in range(orders):
            items = {
                f"sku-{j:04d}": {"name": f"sku-{j:04d}", "priceUSD": 5.0}
                for j in range(item_count)
            }
            yield app.place_order(
                f"order/o{i:04d}",
                {"items": items, "address": "9 Oak Ave", "cost": 5.0 * item_count,
                 "totalCost": 5.0 * item_count, "currency": "USD",
                 "status": "placed"},
            )
            yield env.timeout(2.0)

    env.process(driver(env))
    app.run_until_quiet(max_seconds=orders * 2.0 + 60.0)
    return extract_stages(app, profile.name, pushdown=False)


@pytest.fixture(scope="module")
def sweep():
    return {
        (profile.name, items): run(profile, items)
        for profile in (REMOTE, ZERO_COPY)
        for items in ITEM_COUNTS
    }


def test_zerocopy_report(sweep, report):
    table = Table(
        ["Setup", "items/order", "Prop. mean (ms)", "I-S mean (ms)"],
        title="Ablation: zero-copy co-location x object size",
    )
    for (name, items), bd in sorted(sweep.items()):
        table.add_row(
            name, items,
            round(bd.mean("Prop.") * 1000, 2),
            round(bd.mean("I-S") * 1000, 2),
        )
    report(table.render())


def test_zerocopy_reduces_propagation(sweep):
    for items in ITEM_COUNTS:
        assert (
            sweep[("K-redis-zerocopy", items)].mean("Prop.")
            < sweep[("K-redis", items)].mean("Prop.")
        ), items


def test_zerocopy_specifically_cuts_integrator_stages(sweep):
    # The reconciler-side stages (which stay remote) are unchanged; the
    # integrator data movement shrinks.
    for items in ITEM_COUNTS:
        assert (
            sweep[("K-redis-zerocopy", items)].mean("I-S")
            < sweep[("K-redis", items)].mean("I-S")
        ), items


def test_bench_zerocopy_run(benchmark):
    result = benchmark.pedantic(
        lambda: run(ZERO_COPY, 2, orders=4), rounds=3, iterations=1
    )
    assert result.count() >= 3
