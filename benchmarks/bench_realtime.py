"""Realtime-backend benchmark: the retail hot path in real seconds.

Every other bench in this directory measures *virtual* seconds on the
deterministic sim kernel.  This one runs the same retail app on the
``repro.realtime`` asyncio backend and reports **wall-clock** numbers,
written to ``BENCH_realtime.json``:

- **backend sweep** -- the concurrent order burst at 1 and 4 shards
  (1/2/4 without ``--smoke``), run twice per shard count: once on the
  sim kernel, once on the realtime kernel at ``factor=0`` ("as fast as
  the hardware allows").  Reports wall ops/sec and wall p50/p99 create
  latency for both, and asserts the two runs are *observably
  identical*: same final store state (revisions included) and the same
  Checkout watch-event order, hashed into parity fingerprints.
- **pacing fidelity** -- one shaped order at ``factor=1``: a schedule
  second must cost about a real second (the carrier call really takes
  ~0.45 s on the wall), with bounded scheduler lateness.

Run directly (``python benchmarks/bench_realtime.py [--smoke]``), via
``knactor bench realtime``, or under pytest
(``pytest benchmarks/bench_realtime.py``).
"""

import argparse
import hashlib
import json
import time
from pathlib import Path

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER
from repro.realtime import RealtimeEnvironment
from repro.simnet import Environment
from repro.store import Topology

SEED = 11
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_realtime.json"

SHARD_COUNTS = (1, 2, 4)
SMOKE_SHARD_COUNTS = (1, 4)

BURST_ORDERS = 24
SMOKE_BURST_ORDERS = 12

#: Schedule seconds the pacing case must run (the carrier call alone).
PACING_MIN_SCHEDULE = 0.2


def _percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _digest(payload):
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


# -- one measured run -------------------------------------------------------


def run_case(backend, shards, orders):
    """One concurrent order burst on ``backend`` ("sim" | "realtime").

    Both backends get the identical configuration -- same seed, same
    profile, simulated infrastructure latencies zeroed (``factor=0``
    realtime is a raw-speed run; leaving the sim shaped would give it a
    different event schedule and break parity).  Returns wall-clock
    throughput/latency stats plus state and watch-order fingerprints.
    """
    if backend == "realtime":
        env = RealtimeEnvironment(factor=0.0)
    else:
        env = Environment()
    app = RetailKnactorApp.build(
        env=env, profile=K_APISERVER, with_notify=False, seed=SEED,
        topology=Topology(shards=shards) if shards > 1 else None,
        shape_latency=False,
    )

    # A read-only watcher on Checkout: the delivery order it sees is the
    # run's event-ordering fingerprint.
    watched = []
    app.de.grant("bench-watcher", "knactor-checkout", role="reader")
    app.de.handle("knactor-checkout", principal="bench-watcher").watch(
        lambda event: watched.append((event.key, event.type, event.revision))
    )

    workload = OrderWorkload(seed=SEED)
    batch = workload.orders(orders)
    latencies = []

    def submit(key, data):
        started = time.perf_counter()
        yield app.place_order(key, data)
        latencies.append(time.perf_counter() - started)

    ops_before = sum(app.de.backend.op_counts.values())
    wall_started = time.perf_counter()
    burst = [app.env.process(submit(key, data)) for key, data in batch]
    app.env.run(until=app.env.all_of(burst))
    burst_wall = time.perf_counter() - wall_started
    ops_in_window = sum(app.de.backend.op_counts.values()) - ops_before

    app.run_until_quiet(max_seconds=300.0)
    total_wall = time.perf_counter() - wall_started

    fulfilled = 0
    state = []
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment"):
        handle = app.de.handle(store, principal=app.de.store(store).owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["revision"], view["data"]))
            if store == "knactor-checkout":
                fulfilled += view["data"].get("status") == "fulfilled"

    return {
        "backend": backend,
        "shards": shards,
        "orders": orders,
        "burst_wall_s": burst_wall,
        "total_wall_s": total_wall,
        "ops_in_window": ops_in_window,
        "wall_ops_per_sec": (
            ops_in_window / burst_wall if burst_wall > 0 else 0.0
        ),
        "create_wall_p50_s": _percentile(latencies, 0.50),
        "create_wall_p99_s": _percentile(latencies, 0.99),
        "fulfilled": fulfilled,
        "state_fingerprint": _digest(state),
        "event_order_fingerprint": _digest(watched),
    }


def run_pacing_case():
    """One shaped order at ``factor=1``: schedule time == wall time.

    The carrier call is a ~0.45 schedule-second service time; on the
    realtime backend it must cost about that many *real* seconds, with
    the scheduler's worst lateness reported.
    """
    env = RealtimeEnvironment(factor=1.0)
    app = RetailKnactorApp.build(
        env=env, with_notify=False, seed=SEED, shape_latency=True,
    )
    key, data = OrderWorkload(seed=SEED).next_order()
    schedule_started = env.now
    wall_started = time.perf_counter()
    app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    wall = time.perf_counter() - wall_started
    schedule = env.now - schedule_started
    view = app.env.run(until=app.order(key))
    return {
        "factor": 1.0,
        "schedule_s": schedule,
        "wall_s": wall,
        "wall_to_schedule_ratio": wall / schedule if schedule else 0.0,
        "max_lateness_s": env.max_lateness,
        "fulfilled": view["data"].get("status") == "fulfilled",
    }


# -- the sweep -------------------------------------------------------------


def run_sweep(smoke=False):
    shard_counts = SMOKE_SHARD_COUNTS if smoke else SHARD_COUNTS
    orders = SMOKE_BURST_ORDERS if smoke else BURST_ORDERS
    cases = []
    for shards in shard_counts:
        sim = run_case("sim", shards, orders)
        realtime = run_case("realtime", shards, orders)
        cases.append({
            "shards": shards,
            "orders": orders,
            "sim": sim,
            "realtime": realtime,
            "parity_state": (
                sim["state_fingerprint"] == realtime["state_fingerprint"]
            ),
            "parity_event_order": (
                sim["event_order_fingerprint"]
                == realtime["event_order_fingerprint"]
            ),
        })
    return {
        "schema": 1,
        "bench": "realtime",
        "seed": SEED,
        "smoke": smoke,
        "cases": cases,
        "pacing": run_pacing_case(),
    }


def write_results(results, path=OUTPUT):
    path = Path(path)
    path.write_text(json.dumps(results, indent=2) + "\n")
    return path


def describe(results):
    lines = ["realtime backend (retail order burst, wall clock)"]
    lines.append(
        f"{'shards':>8} {'backend':>9} {'ops/sec':>10} "
        f"{'p50 ms':>9} {'p99 ms':>9} {'parity':>7}"
    )
    for case in results["cases"]:
        parity = "yes" if (
            case["parity_state"] and case["parity_event_order"]
        ) else "NO"
        for backend in ("sim", "realtime"):
            run = case[backend]
            lines.append(
                f"{case['shards']:>8} {backend:>9} "
                f"{run['wall_ops_per_sec']:>10.0f} "
                f"{run['create_wall_p50_s'] * 1e3:>9.2f} "
                f"{run['create_wall_p99_s'] * 1e3:>9.2f} {parity:>7}"
            )
    pacing = results["pacing"]
    lines.append(
        f"pacing: {pacing['schedule_s']:.3f} schedule-s took "
        f"{pacing['wall_s']:.3f} wall-s at factor=1 "
        f"(max lateness {pacing['max_lateness_s'] * 1e3:.1f} ms)"
    )
    return "\n".join(lines)


# -- pytest surface --------------------------------------------------------


@pytest.fixture(scope="module")
def sweep():
    """Module-scoped smoke sweep; writes the JSON artifact as it goes."""
    results = run_sweep(smoke=True)
    write_results(results)
    return results


def test_realtime_completes_with_nonzero_throughput(sweep, report):
    for case in sweep["cases"]:
        run = case["realtime"]
        assert run["wall_ops_per_sec"] > 0.0
        assert run["fulfilled"] == run["orders"], (
            f"{run['fulfilled']}/{run['orders']} orders fulfilled at "
            f"{case['shards']} shard(s) on the realtime backend"
        )
    report(describe(sweep))


def test_sim_realtime_parity(sweep):
    for case in sweep["cases"]:
        assert case["parity_state"], (
            f"final store state diverged at {case['shards']} shard(s)"
        )
        assert case["parity_event_order"], (
            f"watch-event order diverged at {case['shards']} shard(s)"
        )


def test_pacing_tracks_wall_clock(sweep):
    pacing = sweep["pacing"]
    assert pacing["fulfilled"]
    assert pacing["schedule_s"] >= PACING_MIN_SCHEDULE
    # The run may be late (slow CI hardware) but never early: real time
    # actually passed for the schedule to advance.
    assert pacing["wall_s"] >= 0.9 * pacing["schedule_s"], (
        f"{pacing['schedule_s']:.3f} schedule-s finished in "
        f"{pacing['wall_s']:.3f} wall-s at factor=1"
    )


def test_artifact_written(sweep):
    data = json.loads(OUTPUT.read_text())
    assert data["bench"] == "realtime"
    assert data["cases"] and data["pacing"]


# -- CLI surface -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Wall-clock retail benchmark on the realtime backend."
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (CI): shards 1/4, 12 orders")
    parser.add_argument("--out", default=str(OUTPUT),
                        help="output JSON path")
    args = parser.parse_args(argv)
    results = run_sweep(smoke=args.smoke)
    path = write_results(results, args.out)
    print(describe(results))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
