"""Table 1: composition cost, API-centric vs Knactor.

Regenerates the paper's Table 1 from the real task artifacts in
``repro.apps.retail.tasks`` (operations, #files, SLOC), and additionally
prices the ``b``/``d`` operations in virtual time using the cluster
model -- the cost Knactor avoids entirely.
"""

import pytest

from repro.apps.retail.tasks import (
    all_tasks,
    generated_stub_sloc,
    rebuild_redeploy_seconds,
)
from repro.metrics.report import Table
from repro.simnet import Environment

#: The paper's Table 1 rows for side-by-side reporting.
PAPER_ROWS = [
    ("T1", "c / f / b / d", "f", 8, 1, 109, 7),
    ("T2", "c / f / b / d", "f", 2, 1, 14, 1),
    ("T3", "c / f / b / d", "f", 4, 1, 93, 7),
]


@pytest.fixture(scope="module")
def comparisons():
    return all_tasks()


def render_rows(rows, title):
    table = Table(
        ["Task", "API ops", "KN ops", "API files", "KN files",
         "API SLOC", "KN SLOC"],
        title=title,
    )
    for row in rows:
        table.add_row(*row)
    return table.render()


def test_table1_report(comparisons, report):
    measured = [c.row() for c in comparisons]
    text = render_rows(PAPER_ROWS, "Table 1 (paper)")
    text += "\n\n" + render_rows(measured, "Table 1 (measured, this repro)")
    text += (
        f"\n\ngenerated stub SLOC additionally carried by the API approach: "
        f"{generated_stub_sloc()}"
    )
    report(text)
    for comparison in comparisons:
        wins = comparison.knactor_wins()
        assert all(wins.values()), (comparison.task, wins)


def test_rebuild_redeploy_cost_report(report):
    """Price the b/d operations the API approach pays per change."""
    env = Environment()
    build_seconds, rollout_seconds = env.run(
        until=rebuild_redeploy_seconds(env)
    )
    report(
        "API-centric b/d cost per composition change (virtual time):\n"
        f"  rebuild+push : {build_seconds:8.1f} s\n"
        f"  rolling update: {rollout_seconds:7.1f} s\n"
        "Knactor equivalent: 0 s (integrator reconfiguration only)"
    )
    assert build_seconds > 30.0
    assert rollout_seconds > 5.0


def test_bench_task_accounting(benchmark):
    """Measure the accounting itself (it parses every artifact)."""
    def run():
        return [c.row() for c in all_tasks()]

    rows = benchmark(run)
    assert len(rows) == 3


def test_bench_rollout_simulation(benchmark):
    def run():
        env = Environment()
        return env.run(until=rebuild_redeploy_seconds(env))

    build_seconds, rollout_seconds = benchmark(run)
    assert build_seconds > 0 and rollout_seconds > 0
