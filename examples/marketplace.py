#!/usr/bin/env python
"""The integrator marketplace (paper §5, "Ecosystem").

An integration vendor publishes a reusable package: a DXG plus its schema
requirements.  A home operator runs a thermostat from vendor X and a
display from vendor Y -- neither service has ever heard of the other, and
their hosted store names follow each vendor's own conventions.  The
catalog discovers compatibility FROM THE SCHEMAS alone and installs the
integrator in one step.

Run:  python examples/marketplace.py
"""

from repro.core import (
    Catalog,
    IntegratorPackage,
    Knactor,
    KnactorRuntime,
    StoreBinding,
)
from repro.exchange import ObjectDE
from repro.simnet import Environment
from repro.store import MemKV

THERMOSTAT_SCHEMA = """\
schema: Home/v1/Thermostat/Reading
celsius: number
room: string
"""

DISPLAY_SCHEMA = """\
schema: Home/v1/Display/Panel
text: string # +kr: external
"""


def main():
    print("1. a vendor publishes an integrator package to the marketplace:")
    catalog = Catalog()
    package = IntegratorPackage(
        name="thermo-display",
        version="1.0",
        description="Show any Home/v1 thermostat on any Home/v1 display",
        author="acme-integrations",
        dxg="""\
Input:
  T: Home/v1/Thermostat/any
  D: Home/v1/Display/any
DXG:
  D:
    text: concat(T.room, ': ', T.celsius, ' C')
""",
    )
    catalog.publish(package)
    print(f"   published {package.name}@{package.version} "
          f"by {package.author}")

    print("\n2. an operator's home runs two unrelated vendors' services:")
    env = Environment()
    runtime = KnactorRuntime(env)
    de = ObjectDE(env, MemKV(env, runtime.network))
    runtime.add_exchange("object", de)
    runtime.add_knactor(Knactor(
        "vendorX-thermo",
        [StoreBinding("default", "object", THERMOSTAT_SCHEMA,
                      store_name="vx-thermo-livingroom")],
    ))
    runtime.add_knactor(Knactor(
        "vendorY-display",
        [StoreBinding("default", "object", DISPLAY_SCHEMA,
                      store_name="vy-panel-kitchen")],
    ))
    runtime.start()

    print("\n3. the catalog discovers what fits, from schemas alone:")
    for pkg, report in catalog.compatible_packages(de):
        print("   " + report.describe().replace("\n", "\n   "))

    print("\n4. one-step install (grants + Cast, no service changes):")
    catalog.install("thermo-display", runtime)

    thermostat = runtime.handle_of("vendorX-thermo")
    env.run(until=thermostat.create("living", {"celsius": 21.0, "room": "living"}))
    env.run(until=env.now + 1.0)
    display = runtime.handle_of("vendorY-display")
    panel = env.run(until=display.get("living"))["data"]
    print(f"   the display now shows: {panel['text']!r}")


if __name__ == "__main__":
    main()
