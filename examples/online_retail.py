#!/usr/bin/env python
"""The online retail app (paper §2 example 1, Figs. 3/5/6, Tables 1-2).

Runs the 11-knactor data-centric variant, places orders, and shows the
full exchange: the Cast integrator creates shipments and charges from
orders, the service reconcilers do their work against their own stores,
and the order is back-filled and fulfilled.

Options:
  --show-schemas   print the data-store schemas (Fig. 5) and exit
  --show-dxg       print the integrator's DXG (Fig. 6) and exit
  --profile NAME   K-apiserver (default) | K-redis | K-redis-udf
  --orders N       how many orders to place (default 3)
  --rpc            run the API-centric baseline instead

Run:  python examples/online_retail.py --profile K-redis --orders 3
"""

import argparse

from repro.apps.retail.knactor_app import RETAIL_DXG, RetailKnactorApp
from repro.apps.retail.rpc_app import RetailRpcApp
from repro.apps.retail.schemas import ALL_SCHEMAS
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import PROFILES
from repro.metrics.report import format_seconds


def run_knactor(profile_name, order_count):
    app = RetailKnactorApp.build(profile=PROFILES[profile_name])
    workload = OrderWorkload(seed=7)
    env = app.env
    print(f"profile: {profile_name}; placing {order_count} order(s)\n")

    keys = []
    for _ in range(order_count):
        key, data = workload.next_order()
        data["email"] = "shopper@example.com"
        env.run(until=app.place_order(key, data))
        items = ", ".join(sorted(data["items"]))
        print(f"  placed {key}: {items} "
              f"({data['cost']} {data['currency']}) at t={env.now:.3f}s")
        keys.append(key)
    app.run_until_quiet(max_seconds=60.0)

    print(f"\nafter {env.now:.3f}s of virtual time:")
    for key in keys:
        order = env.run(until=app.order(key))["data"]
        cid = key.split("/", 1)[1]
        shipment = env.run(until=app.shipment(cid))["data"]
        print(
            f"  {key}: status={order['status']} method={shipment['method']} "
            f"tracking={order.get('trackingID')} payment={order.get('paymentID')} "
            f"shippingCost={order.get('shippingCost')}"
        )

    print("\nwho touched whose state (the visibility RPC hides):")
    for (principal, store), count in sorted(app.de.audit.exchange_matrix().items()):
        print(f"  {principal:14} -> {store:22} {count:4} accesses")
    print(f"\nintegrator status: {app.cast.status()}")


def run_rpc(order_count):
    app = RetailRpcApp.build()
    workload = OrderWorkload(seed=7)
    print(f"API-centric baseline; placing {order_count} order(s)\n")
    for _ in range(order_count):
        _key, data = workload.next_order()
        start = app.env.now
        response = app.env.run(until=app.place_order(data))
        elapsed = app.env.now - start
        print(
            f"  {response['order_id']}: total={response['total_cost']} "
            f"tracking={response['tracking_id']} "
            f"latency={format_seconds(elapsed)} ms"
        )
    print(
        "\nnote: Checkout holds client stubs for Currency, Payment, "
        "Shipping, and Email -- the coupling Table 1 prices."
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--show-schemas", action="store_true")
    parser.add_argument("--show-dxg", action="store_true")
    parser.add_argument("--profile", default="K-apiserver", choices=sorted(PROFILES))
    parser.add_argument("--orders", type=int, default=3)
    parser.add_argument("--rpc", action="store_true")
    args = parser.parse_args()

    if args.show_schemas:
        for name, schema in ALL_SCHEMAS.items():
            print(f"# --- {name} ---\n{schema}")
        return
    if args.show_dxg:
        print(RETAIL_DXG)
        return
    if args.rpc:
        run_rpc(args.orders)
    else:
        run_knactor(args.profile, args.orders)


if __name__ == "__main__":
    main()
