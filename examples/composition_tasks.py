#!/usr/bin/env python
"""Composition-cost walkthrough (paper Table 1, tasks T1-T3).

Prints, for each task, exactly which files each approach touches and
what they contain -- the evidence behind Table 1's counts -- then the
table itself and the virtual-time price of the API approach's rebuild +
redeploy steps.

Run:  python examples/composition_tasks.py [--show-artifacts]
"""

import argparse

from repro.apps.retail.tasks import (
    all_tasks,
    generated_stub_sloc,
    rebuild_redeploy_seconds,
)
from repro.metrics.report import Table
from repro.simnet import Environment


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--show-artifacts", action="store_true",
                        help="dump every artifact's full content")
    args = parser.parse_args()

    comparisons = all_tasks()
    table = Table(
        ["Task", "API ops", "KN ops", "API files", "KN files",
         "API SLOC", "KN SLOC"],
        title="Table 1: composition cost (measured from the artifacts below)",
    )
    for comparison in comparisons:
        table.add_row(*comparison.row())
    print(table.render())
    print(f"\n(+{generated_stub_sloc()} SLOC of generated stubs the API "
          "approach builds and ships)\n")

    for comparison in comparisons:
        for side in (comparison.api, comparison.knactor):
            print(f"{side.task} [{side.approach}] {side.description}")
            print(f"  operations: {side.operation_string}")
            for path, language, sloc in side.artifact_index():
                print(f"    {path:32} {language:7} {sloc:4} SLOC")
                if args.show_artifacts:
                    content = next(
                        a.content for a in side.artifacts if a.path == path
                    )
                    for line in content.splitlines():
                        print(f"      | {line}")
        print()

    env = Environment()
    build_s, rollout_s = env.run(until=rebuild_redeploy_seconds(env))
    print("The API approach additionally pays, per change:")
    print(f"  rebuild + push image : {build_s:7.1f} s")
    print(f"  rolling update       : {rollout_s:7.1f} s")
    print("The Knactor approach reconfigures the running integrator: ~0 s.")


if __name__ == "__main__":
    main()
