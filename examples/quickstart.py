#!/usr/bin/env python
"""Quickstart: compose two services without touching their code.

This is Fig. 1 in miniature.  Service A (a thermostat) externalizes its
readings; service B (a display) externalizes what it shows.  Neither has
ever heard of the other.  A five-line DXG composes them -- and is then
reconfigured at run time to change the composition (Fahrenheit!), still
without touching either service.

Run:  python examples/quickstart.py
"""

from repro.core import Cast, Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.exchange import ObjectDE
from repro.simnet import Environment
from repro.store import MemKV

THERMOSTAT_SCHEMA = """\
schema: Quickstart/v1/Thermostat/Reading
celsius: number
room: string
"""

DISPLAY_SCHEMA = """\
schema: Quickstart/v1/Display/Panel
text: string # +kr: external
unit: string # +kr: external
"""

DXG = """\
Input:
  T: Quickstart/v1/Thermostat/knactor-thermostat
  D: Quickstart/v1/Display/knactor-display
DXG:
  D:
    text: concat(T.room, ": ", T.celsius)
    unit: "'C'"
"""


class DisplayReconciler(Reconciler):
    """The display service: renders whatever lands in its store."""

    def reconcile(self, ctx, key, obj):
        if obj and obj.get("text"):
            print(f"  [display] {obj['text']} degrees {obj.get('unit', '?')}")


def main():
    env = Environment()
    runtime = KnactorRuntime(env)
    de = ObjectDE(env, MemKV(env, runtime.network))
    runtime.add_exchange("object", de)

    runtime.add_knactor(
        Knactor("thermostat", [StoreBinding("default", "object", THERMOSTAT_SCHEMA)])
    )
    runtime.add_knactor(
        Knactor("display", [StoreBinding("default", "object", DISPLAY_SCHEMA)],
                reconciler=DisplayReconciler())
    )

    # Composition is a grant plus an integrator -- not service code.
    de.grant("quick-cast", "knactor-thermostat", role="reader")
    de.grant("quick-cast", "knactor-display", role="integrator")
    cast = Cast("quick-cast", DXG)
    runtime.add_integrator(cast)
    runtime.start()

    thermostat = runtime.handle_of("thermostat")

    print("1. thermostat reports 21.5 C in the den:")
    env.run(until=thermostat.create("den", {"celsius": 21.5, "room": "den"}))
    env.run(until=env.now + 1.0)

    print("2. reconfigure the integrator at run time (show Fahrenheit):")
    cast.reconfigure(body={
        "D": {
            "text": "concat(T.room, ': ', round(T.celsius * 9 / 5 + 32, 1))",
            "unit": "'F'",
        }
    })
    env.run(until=thermostat.patch("den", {"celsius": 22.0}))
    env.run(until=env.now + 1.0)

    print("3. the thermostat and display never exchanged a call:")
    for (principal, store), count in sorted(de.audit.exchange_matrix().items()):
        print(f"  {principal:12} -> {store:22} {count} accesses")


if __name__ == "__main__":
    main()
