#!/usr/bin/env python
"""Framework support for robust composition (paper §5).

Shows the two verification layers a Cast developer gets:

1. **Static analysis** -- dependency cycles, unknown functions, schema
   violations, unused `+kr: external` fields -- rejected before the
   integrator ever runs.
2. **Bounded confluence checking** -- does the composition converge to
   the same state under every cross-store event interleaving?  Catches
   order-dependence bugs (like first-writer-wins latches) that static
   analysis cannot see.

Run:  python examples/verification.py
"""

from repro.core.dxg import analyze, check_confluence, parse_dxg, standard_functions
from repro.schema import Schema

CHECKOUT = Schema.from_text(
    "schema: Retail/v1/Checkout/Order\n"
    "cost: number\n"
    "address: string\n"
    "trackingID: string # +kr: external\n"
    "giftNote: string # +kr: external\n"
)
SHIPPING = Schema.from_text(
    "schema: Retail/v1/Shipping/Shipment\n"
    "addr: string # +kr: external\n"
    "method: string # +kr: external\n"
    "id: string\n"
)


def show(title, text):
    print(f"--- {title} ---")
    print(text)
    print()


def main():
    print("1. static analysis rejects a cyclic composition outright:\n")
    cyclic = parse_dxg(
        "Input:\n"
        "  C: Retail/v1/Checkout/knactor-checkout\n"
        "  S: Retail/v1/Shipping/knactor-shipping\n"
        "DXG:\n"
        "  C.order:\n"
        "    trackingID: S.id\n"
        "  S:\n"
        "    id: C.order.trackingID\n"  # the cycle
    )
    report = analyze(cyclic, functions=standard_functions())
    show("analysis", report.summary())

    print("2. a healthy spec passes, but warns about declared intent the")
    print("   composition does not meet (unused external field):\n")
    healthy = parse_dxg(
        "Input:\n"
        "  C: Retail/v1/Checkout/knactor-checkout\n"
        "  S: Retail/v1/Shipping/knactor-shipping\n"
        "DXG:\n"
        "  C.order:\n"
        "    trackingID: S.id\n"
        "  S:\n"
        "    addr: C.order.address\n"
        "    method: '\"air\" if C.order.cost > 1000 else \"ground\"'\n"
    )
    report = analyze(
        healthy, functions=standard_functions(),
        schemas={"C": CHECKOUT, "S": SHIPPING},
    )
    show("analysis", report.summary())

    print("3. the bounded checker proves the healthy spec confluent under")
    print("   every cross-store event interleaving:\n")
    confluence = check_confluence(
        healthy,
        {"C": CHECKOUT, "S": SHIPPING},
        updates=[
            ("C", "order", {"cost": 2000.0, "address": "12 Elm"}),
            ("C", "order", {"cost": 10.0}),
            ("S", "", {"id": "trk-1"}),
        ],
    )
    show("confluence", confluence.describe())

    print("4. ...and catches an order-dependent latch that static analysis")
    print("   cannot see (dynamic self-access evades the cycle check):\n")
    latch = parse_dxg(
        "Input:\n"
        "  C: Retail/v1/Checkout/knactor-checkout\n"
        "  S: Retail/v1/Shipping/knactor-shipping\n"
        "DXG:\n"
        "  C.order:\n"
        "    giftNote: >\n"
        "      coalesce(lookup(this, 'giftNote'),\n"
        "      concat('first seen: ', S.id, ' @ ', C.order.cost))\n"
    )
    assert analyze(latch, functions=standard_functions()).ok  # static: fine!
    confluence = check_confluence(
        latch,
        {"C": CHECKOUT, "S": SHIPPING},
        updates=[
            ("C", "order", {"cost": 100.0, "address": "x"}),
            ("C", "order", {"cost": 200.0}),
            ("S", "", {"id": "trk-9"}),
        ],
    )
    show("confluence", confluence.describe())


if __name__ == "__main__":
    main()
