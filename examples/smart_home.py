#!/usr/bin/env python
"""The smart home app (paper §2 example 2, Fig. 4).

Runs BOTH variants over the same occupancy trace and the same simulated
devices, then shows three things the data-centric variant adds:

1. identical end behaviour with zero schema sharing between vendors,
2. app-level analytics over the House's own log store,
3. a data-centric access policy (no lamp control during sleep hours).

Run:  python examples/smart_home.py [--sleep-policy]
"""

import argparse

from repro.apps.smarthome import (
    MotionTrace,
    SmartHomeKnactorApp,
    SmartHomePubSubApp,
)
from repro.core.policy import deny_during

DURATION = 130.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sleep-policy", action="store_true",
                        help="demonstrate the sleep-hours access policy")
    args = parser.parse_args()
    trace = MotionTrace(seed=11)

    print("=== API-centric variant (MQTT broker, shared codecs) ===")
    pubsub = SmartHomePubSubApp.build(trace=trace)
    pubsub.run(until=DURATION)
    print(f"  lamp brightness changes : {len(pubsub.lamp.device.changes)}")
    print(f"  house energy total (kWh): {pubsub.house.kwh_total:.6f}")
    print(f"  motion events observed  : {len(pubsub.house.motion_log)}")
    print("  coupling: House holds Motion's AND Lamp's message codecs\n")

    print("=== Data-centric variant (Knactor, Fig. 4) ===")
    knactor = SmartHomeKnactorApp.build(trace=trace)
    if args.sleep_policy:
        print("  installing policy: control-cast may not touch the lamp")
        deny_during(
            knactor.object_de, "control-cast", "knactor-lamp",
            start_hour=0, end_hour=23.9, seconds_per_hour=1e9,
        )
    knactor.run(until=DURATION)
    print(f"  lamp brightness changes : {len(knactor.lamp_device.changes)}")
    print(f"  house energy total (kWh): {knactor.house.kwh_total:.6f}")
    print(f"  motion events observed  : {len(knactor.house.motion_log)}")
    if args.sleep_policy:
        denials = knactor.object_de.audit.denials()
        print(f"  policy denials recorded : {len(denials)}")

    [report] = knactor.env.run(until=knactor.energy_report())
    print(
        f"  analytics on House's log: total_kwh={report['total_kwh']:.6f} "
        f"events={report['motion_events']}"
    )
    print("  coupling: none -- House reads only its own stores;")
    print("  two Sync flows and one Cast carry all composition logic")


if __name__ == "__main__":
    main()
