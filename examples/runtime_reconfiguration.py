#!/usr/bin/env python
"""Run-time reconfiguration (paper Fig. 2 and §3.3, tasks T2/T3).

Demonstrates, against a LIVE retail app with orders in flight:

1. T2 -- adding the conditional-shipping policy as one assignment,
2. swapping the Shipping service for an alternative carrier knactor
   (Fig. 2's "compose S_A and S_C without modifying S_A"),

with zero service code changes, rebuilds, or redeployments.

Run:  python examples/runtime_reconfiguration.py
"""

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.apps.retail.schemas import SHIPPING
from repro.core import Knactor, Reconciler, StoreBinding
from repro.core.optimizer import K_REDIS


class DroneShippingReconciler(Reconciler):
    """The alternative carrier: instant quotes, drone delivery."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("id") or obj.get("addr") is None:
            return
        yield ctx.env.timeout(0.05)  # drones are fast
        yield ctx.store.patch(
            key,
            {"id": f"drone-{key}", "status": "shipped",
             "quote": {"price": 15.0, "currency": "USD"}},
        )


def place(app, workload, note):
    key, data = workload.next_order()
    app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=30.0)
    order = app.env.run(until=app.order(key))["data"]
    print(f"  {note}: {key} -> method set by integrator, "
          f"tracking={order.get('trackingID')} status={order['status']}")
    return order


def main():
    app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
    workload = OrderWorkload(seed=21, big_order_fraction=1.0)  # all expensive

    print("1. initial composition (Fig. 6 DXG):")
    place(app, workload, "order")

    print("\n2. T2: add a shipment policy at run time (ONE assignment):")
    app.cast.set_assignment(
        "S", "method", '"air" if C.order.cost > 500 else "ground"'
    )
    print(f"  integrator generation is now {app.cast.generation}; "
          "no service was touched")
    place(app, workload, "order")

    print("\n3. Fig. 2: swap Shipping for a drone-delivery vendor:")
    schema2 = SHIPPING.replace("OnlineRetail/v1/Shipping", "OnlineRetail/v1/Shipping2")
    app.runtime.add_knactor(
        Knactor("shipping2", [StoreBinding("default", "object", schema2)],
                reconciler=DroneShippingReconciler())
    )
    app.de.grant("retail-cast", "knactor-shipping2", role="integrator")
    app.cast.reconfigure(
        spec=(
            "Input:\n"
            "  C: OnlineRetail/v1/Checkout/knactor-checkout\n"
            "  S: OnlineRetail/v1/Shipping2/knactor-shipping2\n"
            "  P: OnlineRetail/v1/Payment/knactor-payment\n"
            "DXG:\n"
            "  C.order:\n"
            "    shippingCost: >\n"
            "      currency_convert(S.quote.price,\n"
            "      S.quote.currency, this.currency)\n"
            "    paymentID: P.id\n"
            "    trackingID: S.id\n"
            "  P:\n"
            "    amount: C.order.totalCost\n"
            "    currency: C.order.currency\n"
            "  S:\n"
            "    items: '[item.name for item in C.order.items]'\n"
            "    addr: C.order.address\n"
            "    method: '\"drone\"'\n"
        )
    )
    order = place(app, workload, "order")
    assert str(order.get("trackingID", "")).startswith("drone-")
    print("  Checkout's code, image, and deployment: untouched throughout.")
    print(f"\nreconfiguration history: {app.cast.reconfigurations}")


if __name__ == "__main__":
    main()
