"""Tests for the delta-encoded watch/replication protocol.

The server ships revision-chained JSON-merge-patch deltas once a watcher
has seen a key's full object; the client-side Watch materializes full
events, detects chain gaps (a lost message), resyncs the key with one
GET, and only breaks the stream when the store won't answer.  Handlers
must never observe the encoding.
"""

import pytest

from repro.store import (
    ADDED,
    DELETED,
    MODIFIED,
    ApiServer,
    ApiServerClient,
    FrozenViewError,
    MemKV,
    MemKVClient,
)


@pytest.fixture
def server(env, zero_net):
    return MemKV(env, zero_net, watch_overhead=0.0, delta_watch=True)


@pytest.fixture
def client(server):
    return MemKVClient(server, location="tester")


class TestDeltaEncoding:
    def test_first_event_is_full_then_deltas(self, env, server, client, call):
        events = []
        client.watch(events.append)
        call(client.create("k", {"a": 1, "blob": "x" * 200}))
        call(client.patch("k", {"a": 2}))
        call(client.patch("k", {"a": 3}))
        env.run()
        assert server.watch_fulls_sent == 1
        assert server.watch_deltas_sent == 2

    def test_handlers_see_full_objects(self, env, server, client, call):
        events = []
        client.watch(events.append)
        call(client.create("k", {"a": 1, "b": {"c": 1}}))
        call(client.patch("k", {"b": {"c": 2}}))
        env.run()
        assert [e.type for e in events] == [ADDED, MODIFIED]
        assert events[1].object == {"a": 1, "b": {"c": 2}}
        # Materialized events are full-object: no wire encoding leaks.
        assert all(e.object is not None for e in events)

    def test_update_ships_as_diff(self, env, server, client, call):
        events = []
        client.watch(events.append)
        call(client.create("k", {"a": 1, "blob": "x" * 500}))
        call(client.update("k", {"a": 2, "blob": "x" * 500}))
        env.run()
        assert server.watch_deltas_sent == 1  # diff, not a full snapshot
        assert events[1].object == {"a": 2, "blob": "x" * 500}

    def test_delete_is_tombstone_with_last_object(self, env, server, client, call):
        events = []
        client.watch(events.append)
        call(client.create("k", {"a": 1}))
        call(client.delete("k"))
        env.run()
        assert events[-1].type == DELETED
        assert events[-1].object == {"a": 1}  # synthesized from held state

    def test_wire_bytes_smaller_than_snapshot_mode(self, env, zero_net, call):
        def run_mode(env, net, delta):
            server = MemKV(env, net, location=f"s-{delta}",
                           watch_overhead=0.0, delta_watch=delta)
            client = MemKVClient(server, location="w")
            client.watch(lambda e: None)
            call(client.create("k", {"n": 0, "blob": "x" * 400}))
            for i in range(20):
                call(client.patch("k", {"n": i}))
            env.run()
            return server.watch_wire_bytes

        full = run_mode(env, zero_net, delta=False)
        delta = run_mode(env, zero_net, delta=True)
        assert delta < full / 2

    def test_per_watch_streams_are_independent(self, env, server, call):
        # A watcher arriving later gets a full re-anchor even though
        # earlier watchers are on the delta chain.
        early_client = MemKVClient(server, location="early")
        late_client = MemKVClient(server, location="late")
        early, late = [], []
        early_client.watch(early.append)
        call(early_client.create("k", {"v": 0}))
        call(early_client.patch("k", {"v": 1}))
        env.run()
        late_client.watch(late.append)
        call(early_client.patch("k", {"v": 2}))
        env.run()
        assert early[-1].object == {"v": 2}
        assert late[-1].object == {"v": 2}  # full anchor, then correct


class TestBatchingComposition:
    def test_one_message_carries_n_deltas(self, env, zero_net, call):
        server = MemKV(env, zero_net, watch_overhead=0.0,
                       delta_watch=True, watch_batch_window=0.01)
        client = MemKVClient(server, location="w")
        batches = []
        client.watch(None, batch_handler=batches.append)
        call(client.create("k", {"v": 0}))
        env.run()
        for i in range(1, 4):
            call(client.patch("k", {"v": i}))
        env.run()
        assert server.watch_messages_sent == 2  # create + one batch
        assert server.watch_deltas_sent == 3
        # The batch handler received materialized full objects in order.
        assert [e.object["v"] for e in batches[-1]] == [1, 2, 3]


class TestGapResync:
    def test_dropped_message_triggers_key_resync(self, env, server, client, call):
        events = []
        watch = client.watch(events.append)
        call(client.create("k", {"v": 0, "keep": "me"}))
        env.run()
        server.drop_next_watch_message()
        call(client.patch("k", {"v": 1}))  # lost after encoding
        call(client.patch("k", {"v": 2}))  # delta chained past the hole
        env.run()
        assert watch.gaps_detected == 1
        assert watch.key_resyncs == 1
        assert watch.active  # resync healed the stream; no break
        assert events[-1].object == {"v": 2, "keep": "me"}

    def test_resync_preserves_final_state_convergence(self, env, server,
                                                      client, call):
        state = {}

        def absorb(event):
            if event.type == DELETED:
                state.pop(event.key, None)
            else:
                state[event.key] = event.object

        client.watch(absorb)
        call(client.create("a", {"v": 0}))
        call(client.create("b", {"v": 0}))
        env.run()
        server.drop_next_watch_message()
        call(client.patch("a", {"v": 1}))
        call(client.patch("b", {"v": 1}))
        call(client.patch("a", {"v": 2}))
        env.run()
        assert state["a"] == {"v": 2}
        assert state["b"] == {"v": 1}

    def test_gap_resolving_to_deletion(self, env, server, client, call):
        events = []
        watch = client.watch(events.append)
        call(client.create("k", {"v": 0}))
        env.run()
        server.drop_next_watch_message()
        call(client.patch("k", {"v": 1}))  # lost
        call(client.delete("k"))
        env.run()
        # DELETED tombstones materialize from held state, so no gap
        # machinery is needed -- the watcher converges on "gone".
        assert events[-1].type == DELETED
        assert watch.active

    def test_exhausted_resync_breaks_stream(self, env, server, client, call):
        closed = []
        watch = client.watch(lambda e: None,
                             on_close=lambda: closed.append(True))
        watch.resync_attempts = 0  # the store will never answer in time
        call(client.create("k", {"v": 0}))
        env.run()
        server.drop_next_watch_message()
        call(client.patch("k", {"v": 1}))
        call(client.patch("k", {"v": 2}))  # gap detected here
        env.run()
        assert closed == [True]  # classic break -> full re-watch path
        assert not watch.active

    def test_resync_rides_through_unavailability_window(self, env, zero_net,
                                                        call):
        # Fan-out is delayed (watch_overhead), so the gap is DETECTED
        # inside the unavailability window: the resync must retry with
        # backoff until the store answers, then heal the stream.
        server = MemKV(env, zero_net, watch_overhead=0.01, delta_watch=True)
        client = MemKVClient(server, location="tester")
        events = []
        watch = client.watch(events.append)
        call(client.create("k", {"v": 0}))
        env.run()
        server.drop_next_watch_message()
        call(client.patch("k", {"v": 1}))
        call(client.patch("k", {"v": 2}))
        server.set_available(False)  # down before the delayed fan-out
        recover = env.timeout(0.2)
        recover.callbacks.append(lambda _evt: server.set_available(True))
        env.run(until=env.now + 10.0)
        assert watch.gaps_detected == 1
        assert watch.active
        assert events[-1].object == {"v": 2}


class TestDeltaWal:
    @pytest.fixture
    def server(self, env, zero_net):
        return ApiServer(env, zero_net, watch_overhead=0.0, delta_watch=True)

    @pytest.fixture
    def client(self, server):
        return ApiServerClient(server, location="tester")

    def test_wal_stores_deltas(self, env, server, client, call):
        call(client.create("k", {"v": 0, "blob": "x" * 500}))
        for i in range(10):
            call(client.patch("k", {"v": i}))
        env.run()
        # 1 full record + 10 delta records; far smaller than 11 fulls.
        full_size = server._wal[0].event.wire_size()
        assert server.wal_bytes < full_size * 3

    def test_restart_materializes_deltas(self, env, server, client, call):
        call(client.create("k", {"a": {"x": 1}, "b": 1}))
        call(client.patch("k", {"a": {"x": 2}}))
        call(client.patch("k", {"b": None, "c": 3}))
        env.run()
        before = call(client.get("k"))["data"]
        server.crash()
        server.restart()
        after = call(client.get("k"))["data"]
        assert after == before == {"a": {"x": 2}, "c": 3}

    def test_replay_after_restart_sends_full_events(self, env, server,
                                                    client, call):
        call(client.create("k", {"v": 0}))
        call(client.patch("k", {"v": 1}))
        env.run()
        server.crash()
        server.restart()
        events = []
        client.watch(events.append, from_revision=0)
        env.run()
        # History was rebuilt as full events: a fresh watcher can replay.
        assert [e.revision for e in events] == [1, 2]
        assert events[-1].object == {"v": 1}


class TestInformerFrozenReads:
    def test_cached_read_is_frozen(self, env, zero_net, call):
        server = MemKV(env, zero_net, watch_overhead=0.0)
        client = MemKVClient(server, location="w")
        client.enable_read_cache()
        call(client.create("k", {"nested": {"v": 1}}))
        env.run()  # let the informer absorb the event
        view = call(client.get("k"))
        assert client.cache_hits == 1
        with pytest.raises(FrozenViewError):
            view["data"]["nested"]["v"] = 999
        with pytest.raises(FrozenViewError):
            view["extra"] = True
        assert call(client.get("k"))["data"] == {"nested": {"v": 1}}

    def test_cached_read_shares_no_copy(self, env, zero_net, call):
        server = MemKV(env, zero_net, watch_overhead=0.0)
        client = MemKVClient(server, location="w")
        client.enable_read_cache()
        call(client.create("k", {"v": 1}))
        env.run()
        shared_before = server.copy_meter.shared_views
        call(client.get("k"))
        assert server.copy_meter.shared_views == shared_before + 1

    def test_classic_mode_cache_still_copies(self, env, zero_net, call):
        server = MemKV(env, zero_net, watch_overhead=0.0, zero_copy=False)
        client = MemKVClient(server, location="w")
        client.enable_read_cache()
        call(client.create("k", {"nested": {"v": 1}}))
        env.run()
        view = call(client.get("k"))
        assert client.cache_hits == 1
        view["data"]["nested"]["v"] = 999  # plain mutable copy
        assert call(client.get("k"))["data"]["nested"]["v"] == 1
