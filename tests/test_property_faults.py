"""Property: watch completeness under random seeded fault schedules.

An informer-style watcher (watch + cursor + re-watch-with-replay on
close) must observe **every committed write exactly once**, no matter
what the network and the store do in between: partitions, drop windows,
latency spikes, crash/restart cycles, brown-outs.  The ground truth is
the server's WAL -- the writer's view is weaker, because a response lost
after the commit means an acknowledged-to-nobody (yet durable) write.
"""

import pytest

from repro.errors import AlreadyExistsError, ReproError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer, ApiServerClient

WRITES = 12
WATCHERS = 2


class _Informer:
    """Reliable watcher: cursor + re-watch with replay on stream break."""

    def __init__(self, client):
        self.client = client
        self.seen = []  # (key, revision) in delivery order
        self.cursor = 0
        self.reconnects = 0
        self._watch()

    def _watch(self):
        self.client.watch(self._handle, on_close=self._reconnect)

    def _handle(self, event):
        self.seen.append((event.key, event.revision))
        self.cursor = max(self.cursor, event.revision)

    def _reconnect(self):
        self.reconnects += 1
        self.client.watch(self._handle, from_revision=self.cursor,
                          on_close=self._reconnect)


def _writer(env, client, done):
    """Write through the chaos; every write retries until acknowledged."""
    for i in range(WRITES):
        key = f"obj/{i % 5}"  # a few keys, mixing creates and updates
        while True:
            try:
                if key in done:
                    yield client.update(key, {"v": i})
                else:
                    yield client.create(key, {"v": i})
                break
            except AlreadyExistsError:
                break  # response to our create was lost; it committed
            except ReproError as exc:
                if not getattr(exc, "retryable", False):
                    raise
                yield env.timeout(0.03)
        done.add(key)
        yield env.timeout(0.12)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_every_committed_write_observed_exactly_once(seed):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0005))
    server = ApiServer(env, net, watch_overhead=0.0)
    policy = RetryPolicy(max_attempts=12, base_backoff=0.02,
                         max_backoff=0.2, seed=seed)
    writer_client = ApiServerClient(server, "writer", retry_policy=policy)
    watchers = [
        _Informer(ApiServerClient(server, f"watcher-{i}"))
        for i in range(WATCHERS)
    ]

    plan = FaultPlan.random(
        seed,
        horizon=1.2,
        endpoints=("writer", "watcher-0", "watcher-1", server.location),
        stores=(server.location,),
        n_faults=7,
    )
    injector = FaultInjector(env, net, stores=[server]).schedule(plan)

    done = set()
    env.run(until=env.process(_writer(env, writer_client, done)))
    env.run()  # drain: fault reverts, keepalive timers, replays

    assert len(done) == 5  # every write eventually acknowledged
    assert server.available
    assert injector.active_faults() == []
    committed = sorted(
        (record.event.key, record.event.revision) for record in server._wal
    )
    assert len(committed) >= WRITES
    for watcher in watchers:
        observed = sorted(watcher.seen)
        assert len(watcher.seen) == len(set(watcher.seen))  # no duplicates
        assert observed == committed  # ...and nothing missing
