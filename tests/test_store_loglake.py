"""Unit tests for the Zed-lake-like Log store."""

import pytest

from repro.errors import AlreadyExistsError, NotFoundError, StoreError
from repro.store import FrozenViewError, LogLake, LogLakeClient


@pytest.fixture
def server(env, zero_net):
    return LogLake(env, zero_net, watch_overhead=0.0)


@pytest.fixture
def client(server, call):
    c = LogLakeClient(server, location="tester")
    call(c.create_pool("motion"))
    return c


class TestPools:
    def test_create_and_list_pools(self, client, call):
        call(client.create_pool("energy"))
        assert call(client.pools()) == ["energy", "motion"]

    def test_duplicate_pool_rejected(self, client, call):
        with pytest.raises(AlreadyExistsError):
            call(client.create_pool("motion"))

    def test_missing_pool_raises(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.load("nope", [{"a": 1}]))


class TestLoad:
    def test_records_stamped_with_seq_and_ts(self, env, client, call):
        env.run(until=1.0)
        result = call(client.load("motion", [{"triggered": True}, {"triggered": False}]))
        assert result == {"pool": "motion", "first_seq": 0, "count": 2}
        rows = call(client.query("motion"))
        assert [r["_seq"] for r in rows] == [0, 1]
        assert all(r["_ts"] >= 1.0 for r in rows)

    def test_seq_monotonic_across_batches(self, client, call):
        call(client.load("motion", [{"a": 1}]))
        result = call(client.load("motion", [{"a": 2}, {"a": 3}]))
        assert result["first_seq"] == 1
        rows = call(client.query("motion"))
        assert [r["_seq"] for r in rows] == [0, 1, 2]

    def test_non_dict_record_rejected(self, client, call):
        with pytest.raises(StoreError):
            call(client.load("motion", ["not-a-dict"]))

    def test_load_input_not_aliased(self, client, call):
        batch = [{"v": 1}]
        call(client.load("motion", batch))
        batch[0]["v"] = 999
        assert call(client.query("motion"))[0]["v"] == 1

    def test_stats(self, client, call):
        call(client.load("motion", [{"a": 1}, {"a": 2}]))
        stats = call(client.stats("motion"))
        assert stats["records"] == 2 and stats["next_seq"] == 2


class TestQuery:
    def test_filter_and_rename_pipeline(self, client, call):
        call(
            client.load(
                "motion",
                [
                    {"triggered": True, "device": "d1"},
                    {"triggered": False, "device": "d2"},
                    {"triggered": True, "device": "d3"},
                ],
            )
        )
        rows = call(
            client.query(
                "motion",
                ops=[
                    {"op": "filter", "expr": "triggered == True"},
                    {"op": "rename", "from": "triggered", "to": "motion"},
                    {"op": "cut", "fields": ["device", "motion"]},
                ],
            )
        )
        assert rows == [
            {"device": "d1", "motion": True},
            {"device": "d3", "motion": True},
        ]

    def test_since_seq_incremental_read(self, client, call):
        call(client.load("motion", [{"a": 1}, {"a": 2}]))
        call(client.load("motion", [{"a": 3}]))
        rows = call(client.query("motion", since_seq=2))
        assert [r["a"] for r in rows] == [3]

    def test_query_does_not_mutate_pool(self, client, call):
        call(client.load("motion", [{"a": 1}]))
        rows = call(client.query("motion", ops=[{"op": "rename", "from": "a", "to": "b"}]))
        assert rows[0]["b"] == 1
        original = call(client.query("motion"))
        assert original[0]["a"] == 1

    def test_query_results_are_frozen_views(self, client, call):
        # Scan results alias the pool's frozen rows (zero-copy): local
        # mutation raises instead of corrupting the pool.
        call(client.load("motion", [{"nested": {"v": 1}}]))
        rows = call(client.query("motion"))
        with pytest.raises(FrozenViewError):
            rows[0]["nested"]["v"] = 999
        mine = rows[0].thaw()
        mine["nested"]["v"] = 999
        assert call(client.query("motion"))[0]["nested"]["v"] == 1

    def test_scan_cost_scales_with_pool_size(self, env, server, client, call):
        call(client.load("motion", [{"i": i} for i in range(1000)]))
        start = env.now
        call(client.query("motion"))
        big_cost = env.now - start
        start = env.now
        call(client.query("motion", since_seq=999))
        small_cost = env.now - start
        assert big_cost > small_cost


class TestWatch:
    def test_batch_delivery(self, env, client, call):
        batches = []
        client.watch_pool("motion", batches.append)
        call(client.load("motion", [{"a": 1}, {"a": 2}]))
        env.run()
        assert len(batches) == 1
        event = batches[0]
        assert event.key == "motion"
        assert [r["a"] for r in event.object["records"]] == [1, 2]
        assert event.object["first_seq"] == 0

    def test_empty_load_does_not_notify(self, env, client, call):
        batches = []
        client.watch_pool("motion", batches.append)
        call(client.load("motion", []))
        env.run()
        assert batches == []

    def test_pool_isolation(self, env, client, call):
        call(client.create_pool("energy"))
        batches = []
        client.watch_pool("energy", batches.append)
        call(client.load("motion", [{"a": 1}]))
        env.run()
        assert batches == []
