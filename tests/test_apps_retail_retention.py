"""App-level state retention (paper §3.3) on the retail flow.

"states in the data stores are preserved until they're no longer required
by entities such as the knactor's reconciler or integrators [...] Once a
reconciler or integrator has performed its operation on a state object,
the object is marked as unused and the DEs can then perform garbage
collection."

Two properties interact here and both are verified:

1. **Self-healing**: derived state (a shipment) deleted while its source
   (the order) still exists is *re-created* by the integrator -- the
   fixpoint includes it.  Retention of derived state therefore only
   sticks once the whole exchange group is released.
2. **Group collection**: with readers registered over the order AND the
   shipment, marking both done lets the GC collect the group for good
   (orders first -- no source left to re-derive from).
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_REDIS
from repro.errors import NotFoundError
from repro.store import MemKVClient, RefCountRetention
from repro.store.retention import GarbageCollector


def build_app(orders=1):
    app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
    workload = OrderWorkload(seed=7)
    keys = []
    for _ in range(orders):
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
        keys.append(key)
    app.run_until_quiet(max_seconds=30.0)
    return app, keys


def make_gc(app, policy):
    client = MemKVClient(app.de.backend, location="gc")
    return GarbageCollector(app.env, client, policy, interval=1.0)


class TestSelfHealing:
    def test_derived_state_resurrected_while_source_exists(self):
        """Deleting ONLY the shipment is undone by the integrator: the
        order still implies a shipment, so the fixpoint re-creates it."""
        app, [key] = build_app()
        cid = key.split("/", 1)[1]
        policy = RefCountRetention()
        policy.register_reader("knactor-shipping/", "archiver")
        gc = make_gc(app, policy)
        gc.start()
        policy.mark_done(f"knactor-shipping/{cid}", "archiver")
        app.run_until_quiet(max_seconds=15.0)
        assert gc.collected, "the GC did collect the shipment once"
        # ...but the integrator re-derived it from the live order.
        shipment = app.env.run(until=app.shipment(cid))["data"]
        assert shipment["addr"]


class TestGroupCollection:
    def test_whole_exchange_group_collected(self):
        app, keys = build_app(orders=2)
        policy = RefCountRetention()
        policy.register_reader("knactor-checkout/", "archiver")
        policy.register_reader("knactor-shipping/", "archiver")
        policy.register_reader("knactor-payment/", "archiver")
        gc = make_gc(app, policy)
        gc.start()
        app.env.run(until=app.env.now + 3.0)
        # Nothing marked yet: everything retained.
        for key in keys:
            assert app.env.run(until=app.order(key))["data"]
        # The archiver releases every object of both groups.
        for key in keys:
            cid = key.split("/", 1)[1]
            policy.mark_done(f"knactor-checkout/{key}", "archiver")
            policy.mark_done(f"knactor-shipping/{cid}", "archiver")
            policy.mark_done(f"knactor-payment/{cid}", "archiver")
        app.run_until_quiet(max_seconds=20.0)
        for key in keys:
            cid = key.split("/", 1)[1]
            with pytest.raises(NotFoundError):
                app.env.run(until=app.order(key))
            with pytest.raises(NotFoundError):
                app.env.run(until=app.shipment(cid))
            with pytest.raises(NotFoundError):
                app.env.run(until=app.charge(cid))

    def test_unreleased_group_survives_alongside_released_one(self):
        app, keys = build_app(orders=2)
        released, kept = keys
        policy = RefCountRetention()
        policy.register_reader("knactor-checkout/", "archiver")
        policy.register_reader("knactor-shipping/", "archiver")
        policy.register_reader("knactor-payment/", "archiver")
        gc = make_gc(app, policy)
        gc.start()
        cid = released.split("/", 1)[1]
        policy.mark_done(f"knactor-checkout/{released}", "archiver")
        policy.mark_done(f"knactor-shipping/{cid}", "archiver")
        policy.mark_done(f"knactor-payment/{cid}", "archiver")
        app.run_until_quiet(max_seconds=20.0)
        with pytest.raises(NotFoundError):
            app.env.run(until=app.order(released))
        kept_order = app.env.run(until=app.order(kept))["data"]
        assert kept_order["status"] == "fulfilled"
