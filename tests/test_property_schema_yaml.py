"""Property-based tests: yamlish, dotted paths, schemas, expressions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import Schema, diff_schemas
from repro.util import yamlish
from repro.util.paths import get_path, set_path, walk_leaves
from repro.util.safeexpr import SafeExpression

_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=8
)
_safe_text = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), max_size=10
)
_scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.booleans(),
    st.none(),
    _safe_text,
)
_nested = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.dictionaries(_keys, children, min_size=1, max_size=4),
        st.lists(children, min_size=1, max_size=4),
    ),
    max_leaves=16,
)


class TestYamlishProperties:
    @given(data=st.dictionaries(_keys, _nested, max_size=5))
    def test_dumps_parse_roundtrip(self, data):
        assert yamlish.parse(yamlish.dumps(data)) == data

    @given(data=st.dictionaries(_keys, _nested, min_size=1, max_size=5))
    def test_parse_is_deterministic(self, data):
        text = yamlish.dumps(data)
        assert yamlish.parse(text) == yamlish.parse(text)


class TestPathProperties:
    @given(
        parts=st.lists(_keys, min_size=1, max_size=4),
        value=st.integers(),
    )
    def test_set_then_get(self, parts, value):
        # Path components must not collide with a prefix being a scalar:
        # build into an empty dict, which set_path handles by creation.
        obj = {}
        path = ".".join(parts)
        set_path(obj, path, value)
        assert get_path(obj, path) == value
        leaves = dict(walk_leaves(obj))
        assert leaves == {tuple(parts): value}


_field_types = st.sampled_from(
    ["string", "number", "integer", "boolean", "object", "array",
     "array<string>", "array<number>"]
)
_annotations = st.sampled_from(
    [None, "+kr: external", "+kr: ingest", "+kr: secret",
     "+kr: external, immutable"]
)


from repro.util.yamlish import _parse_scalar

_field_names = _keys.filter(
    lambda k: k.isidentifier()
    and k != "schema"
    and _parse_scalar(k) == k  # excludes yes/no/true/nan/inf/...
)


@st.composite
def schemas(draw, name="App/v1/Svc/Res"):
    field_names = draw(
        st.lists(_field_names, min_size=1, max_size=8, unique=True)
    )
    lines = [f"schema: {name}"]
    for field_name in field_names:
        type_name = draw(_field_types)
        annotation = draw(_annotations)
        suffix = f" # {annotation}" if annotation else ""
        lines.append(f"{field_name}: {type_name}{suffix}")
    return Schema.from_text("\n".join(lines) + "\n")


class TestSchemaProperties:
    @settings(max_examples=60)
    @given(schema=schemas())
    def test_text_roundtrip(self, schema):
        assert Schema.from_text(schema.to_text()) == schema

    @settings(max_examples=60)
    @given(schema=schemas())
    def test_dict_roundtrip(self, schema):
        assert Schema.from_dict(schema.to_dict()) == schema

    @settings(max_examples=60)
    @given(schema=schemas())
    def test_self_diff_is_empty_and_compatible(self, schema):
        delta = diff_schemas(schema, schema)
        assert delta.empty and delta.is_backward_compatible()

    @settings(max_examples=60)
    @given(schema=schemas())
    def test_external_fields_exactly_the_annotated_ones(self, schema):
        externals = {f.path for f in schema.external_fields()}
        expected = {
            f.path for f in schema.fields if "external" in f.annotations.tokens
        }
        assert externals == expected


class TestExpressionProperties:
    @given(
        a=st.integers(min_value=-1000, max_value=1000),
        b=st.integers(min_value=-1000, max_value=1000),
        c=st.integers(min_value=1, max_value=1000),
    )
    def test_arithmetic_matches_python(self, a, b, c):
        expr = SafeExpression("x + y * 2 - (x // z)")
        assert expr.evaluate({"x": a, "y": b, "z": c}) == a + b * 2 - (a // c)

    @given(
        values=st.lists(st.integers(min_value=-100, max_value=100),
                        min_size=0, max_size=10)
    )
    def test_builtins_match_python(self, values):
        expr = SafeExpression("sum(v) + len(v)")
        assert expr.evaluate({"v": values}) == sum(values) + len(values)

    @given(cost=st.floats(min_value=0, max_value=10000, allow_nan=False))
    def test_fig6_conditional_total(self, cost):
        expr = SafeExpression('"air" if C.order.cost > 1000 else "ground"')
        result = expr.evaluate({"C": {"order": {"cost": cost}}})
        assert result == ("air" if cost > 1000 else "ground")

    @given(
        items=st.lists(
            st.dictionaries(st.just("name"), _safe_text, min_size=1, max_size=1),
            max_size=8,
        )
    )
    def test_fig6_comprehension(self, items):
        expr = SafeExpression("[item.name for item in C.order.items]")
        data = {f"k{i}": item for i, item in enumerate(items)}
        result = expr.evaluate({"C": {"order": {"items": data}}})
        assert sorted(result) == sorted(item["name"] for item in items)

    @given(value=_nested)
    def test_results_are_plain_python(self, value):
        """Evaluation must never leak wrapper objects into stores."""
        expr = SafeExpression("v")
        result = expr.evaluate({"v": value})
        assert result == value
        assert type(result) in (type(value), list)  # tuples become lists
