"""Property test: watch batching is observably invisible.

For any seeded random workload against a sharded store, running with
``watch_batch_window > 0`` versus ``0`` must be indistinguishable to
every observer:

- the final store state is **byte-identical** (the JSON dump of the full
  scatter-gather ``list``, revisions and timestamps included -- the
  drivers are delivery-independent, so even commit times must agree);
- every watcher sees the **identical per-key event sequence** (type and
  revision), because batching may merge deliveries into fewer messages
  but must never reorder or drop events for a key;
- the same number of events travels in strictly fewer messages.

The drivers here issue writes on their own clock (they never react to
watch deliveries), which is what makes full event-order identity a hard
invariant; app-level feedback loops are exercised by the shard-scaling
benchmark instead.
"""

import json
import random

import pytest

from repro.simnet import Environment, FixedLatency, Network
from repro.store import MemKV, ShardedStore, ShardedStoreClient

SHARDS = 3
KEYS = [f"k/{i}" for i in range(8)]
WAVES = 10
WAVE_WIDTH = 4
BATCH_WINDOW = 0.01


def build_workload(seed):
    """A deterministic op schedule: waves of concurrent distinct-key ops."""
    rng = random.Random(seed)
    exists = set()
    waves = []
    for wave_index in range(WAVES):
        wave = []
        for key in rng.sample(KEYS, WAVE_WIDTH):
            marker = wave_index * WAVE_WIDTH + len(wave)
            if key not in exists:
                wave.append(("create", key, {"v": marker}))
                exists.add(key)
            else:
                kind = rng.choice(("update", "patch", "delete"))
                if kind == "delete":
                    wave.append(("delete", key, None))
                    exists.discard(key)
                elif kind == "update":
                    wave.append(("update", key, {"v": marker}))
                else:
                    wave.append(("patch", key, {"p": marker}))
        waves.append(wave)
    return waves


def run_case(seed, batch_window, watchers=4):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0005))
    shards = [
        MemKV(env, net, location=f"shard-{i}", watch_batch_window=batch_window)
        for i in range(SHARDS)
    ]
    store = ShardedStore(shards, name="kv")
    driver = ShardedStoreClient(store, "driver")

    observed = {}  # watcher index -> key -> [(type, revision), ...]
    for index in range(watchers):
        seen = observed.setdefault(index, {})

        def record(event, seen=seen):
            seen.setdefault(event.key, []).append((event.type, event.revision))

        ShardedStoreClient(store, f"watcher-{index}").watch(record)

    def drive(env):
        for wave in build_workload(seed):
            inflight = []
            for op, key, payload in wave:
                if op == "create":
                    inflight.append(driver.create(key, payload))
                elif op == "update":
                    inflight.append(driver.update(key, payload))
                elif op == "patch":
                    inflight.append(driver.patch(key, payload))
                else:
                    inflight.append(driver.delete(key))
            yield env.all_of(inflight)

    env.run(until=env.process(drive(env)))
    env.run()  # drain every buffered flush and delivery

    state = json.dumps(env.run(until=driver.list()), sort_keys=True)
    return {
        "state": state,
        "observed": observed,
        "messages": store.watch_messages_sent,
        "events": store.watch_events_sent,
    }


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_batching_is_observably_invisible(seed):
    plain = run_case(seed, batch_window=0.0)
    batched = run_case(seed, batch_window=BATCH_WINDOW)

    # Byte-identical final state, including revisions and timestamps.
    assert plain["state"] == batched["state"]
    # Identical per-key event order for every watcher.
    assert plain["observed"] == batched["observed"]
    # Same events, strictly fewer network messages.
    assert plain["events"] == batched["events"]
    assert batched["messages"] < plain["messages"]


@pytest.mark.parametrize("seed", [1, 2])
def test_workload_is_deterministic(seed):
    assert build_workload(seed) == build_workload(seed)
    one = run_case(seed, batch_window=BATCH_WINDOW)
    two = run_case(seed, batch_window=BATCH_WINDOW)
    assert one["state"] == two["state"]
    assert one["observed"] == two["observed"]
    assert one["messages"] == two["messages"]
