"""End-to-end tests for the Sync integrator (Log dataflow)."""

import pytest

from repro.core import Flow, Knactor, KnactorRuntime, Pipeline, StoreBinding, Sync
from repro.errors import ConfigurationError
from repro.exchange import LogDE
from repro.store import LogLake

MOTION = """\
schema: SmartHome/v1/Motion/Readings
triggered: boolean
device: string
"""

HOUSE = """\
schema: SmartHome/v1/House/Readings
motion: boolean # +kr: ingest
kwh: number # +kr: ingest
device: string # +kr: ingest
"""


def build_runtime(env, net, at_source=True, pipeline=None):
    runtime = KnactorRuntime(env, network=net)
    de = LogDE(env, LogLake(env, net, watch_overhead=0.0))
    runtime.add_exchange("log", de)
    runtime.add_knactor(
        Knactor("motion", [StoreBinding("log", "log", MOTION)])
    )
    runtime.add_knactor(
        Knactor("house", [StoreBinding("log", "log", HOUSE)])
    )
    de.grant("home-sync", "knactor-motion-log", role="integrator")
    de.grant("home-sync", "knactor-house-log", role="integrator")
    if pipeline is None:
        pipeline = (
            Pipeline()
            .filter("triggered == True")
            .rename("triggered", "motion")
            .cut("motion", "device")
        )
    sync = Sync(
        "home-sync",
        flows=[
            Flow(
                source="knactor-motion-log",
                target="knactor-house-log",
                pipeline=pipeline,
                at_source=at_source,
            )
        ],
    )
    runtime.add_integrator(sync)
    runtime.start()
    return runtime, de, sync


class TestSyncFlow:
    @pytest.mark.parametrize("at_source", [True, False])
    def test_filter_rename_load(self, env, zero_net, call, at_source):
        runtime, _de, sync = build_runtime(env, zero_net, at_source=at_source)
        motion = runtime.handle_of("motion", "log")
        call(
            motion.load(
                [
                    {"triggered": True, "device": "d1"},
                    {"triggered": False, "device": "d2"},
                    {"triggered": True, "device": "d3"},
                ]
            )
        )
        env.run()
        house = runtime.handle_of("house", "log")
        rows = call(house.query())
        assert [(r["device"], r["motion"]) for r in rows] == [
            ("d1", True),
            ("d3", True),
        ]

    def test_multiple_batches_no_duplicates(self, env, zero_net, call):
        runtime, _de, sync = build_runtime(env, zero_net)
        motion = runtime.handle_of("motion", "log")
        for i in range(5):
            call(motion.load([{"triggered": True, "device": f"d{i}"}]))
        env.run()
        house = runtime.handle_of("house", "log")
        rows = call(house.query())
        assert sorted(r["device"] for r in rows) == [f"d{i}" for i in range(5)]
        assert sync.status()["flows"][0]["records_moved"] == 5

    def test_internal_stamps_stripped_on_load(self, env, zero_net, call):
        runtime, _de, _sync = build_runtime(env, zero_net)
        motion = runtime.handle_of("motion", "log")
        call(motion.load([{"triggered": True, "device": "d1"}]))
        env.run()
        house = runtime.handle_of("house", "log")
        rows = call(house.query())
        # The record got FRESH stamps in the house pool (seq restarts at 0).
        assert rows[0]["_seq"] == 0

    def test_all_filtered_batch_loads_nothing(self, env, zero_net, call):
        runtime, _de, sync = build_runtime(env, zero_net)
        motion = runtime.handle_of("motion", "log")
        call(motion.load([{"triggered": False, "device": "d1"}]))
        env.run()
        house = runtime.handle_of("house", "log")
        assert call(house.query()) == []
        assert sync.status()["flows"][0]["records_moved"] == 0

    def test_self_flow_rejected(self, env, zero_net):
        with pytest.raises(ConfigurationError):
            build_runtime_self = KnactorRuntime(env, network=zero_net)
            de = LogDE(env, LogLake(env, zero_net))
            build_runtime_self.add_exchange("log", de)
            build_runtime_self.add_knactor(
                Knactor("motion", [StoreBinding("log", "log", MOTION)])
            )
            sync = Sync(
                "bad",
                flows=[Flow(source="knactor-motion-log", target="knactor-motion-log")],
            )
            build_runtime_self.add_integrator(sync)

    def test_invalid_pipeline_rejected_at_bind(self, env, zero_net):
        with pytest.raises(Exception):
            build_runtime(env, zero_net, pipeline=[{"op": "explode"}])


class TestSyncReconfiguration:
    def test_swap_pipeline_at_runtime(self, env, zero_net, call):
        runtime, _de, sync = build_runtime(env, zero_net)
        motion = runtime.handle_of("motion", "log")
        call(motion.load([{"triggered": True, "device": "d1"}]))
        env.run()
        # Reconfigure: stop filtering, keep everything, derive a flag.
        sync.reconfigure(
            [
                Flow(
                    source="knactor-motion-log",
                    target="knactor-house-log",
                    pipeline=Pipeline()
                    .rename("triggered", "motion")
                    .cut("motion", "device"),
                )
            ]
        )
        call(motion.load([{"triggered": False, "device": "d2"}]))
        env.run()
        house = runtime.handle_of("house", "log")
        rows = call(house.query())
        devices = [r["device"] for r in rows]
        assert "d2" in devices  # no longer filtered out
        assert sync.generation == 1

    def test_stop_halts_flows(self, env, zero_net, call):
        runtime, _de, sync = build_runtime(env, zero_net)
        sync.stop()
        motion = runtime.handle_of("motion", "log")
        call(motion.load([{"triggered": True, "device": "d1"}]))
        env.run()
        house = runtime.handle_of("house", "log")
        assert call(house.query()) == []
