"""Tests for the integrator marketplace catalog (§5 ecosystem)."""

import pytest

from repro.core import Knactor, KnactorRuntime, StoreBinding
from repro.core.catalog import Catalog, IntegratorPackage
from repro.errors import ConfigurationError, NotFoundError
from repro.exchange import ObjectDE
from repro.store import ApiServer

THERMOSTAT = """\
schema: Home/v1/Thermostat/Reading
celsius: number
room: string
"""

DISPLAY = """\
schema: Home/v1/Display/Panel
text: string # +kr: external
"""

PACKAGE = IntegratorPackage(
    name="thermo-display",
    version="1.0",
    description="Shows thermostat readings on any compatible display",
    author="acme-integrations",
    dxg="""\
Input:
  T: Home/v1/Thermostat/any
  D: Home/v1/Display/any
DXG:
  D:
    text: concat(T.room, ': ', T.celsius)
""",
)


@pytest.fixture
def runtime(env, zero_net):
    rt = KnactorRuntime(env, network=zero_net)
    de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
    rt.add_exchange("object", de)
    rt.add_knactor(Knactor("thermostat",
                           [StoreBinding("default", "object", THERMOSTAT)]))
    rt.add_knactor(Knactor("display",
                           [StoreBinding("default", "object", DISPLAY)]))
    rt.start()
    return rt


@pytest.fixture
def catalog():
    c = Catalog()
    c.publish(PACKAGE)
    return c


class TestPublishing:
    def test_publish_and_get(self, catalog):
        assert catalog.get("thermo-display").version == "1.0"
        assert catalog.get("thermo-display", "1.0") is not None

    def test_duplicate_version_rejected(self, catalog):
        with pytest.raises(ConfigurationError):
            catalog.publish(PACKAGE)

    def test_latest_version_wins(self, catalog):
        catalog.publish(
            IntegratorPackage("thermo-display", "1.1", "newer", dxg=PACKAGE.dxg)
        )
        assert catalog.get("thermo-display").version == "1.1"

    def test_unknown_package(self, catalog):
        with pytest.raises(NotFoundError):
            catalog.get("nope")

    def test_broken_dxg_rejected_at_publish(self):
        broken = IntegratorPackage(
            "bad", "1.0", "cycles",
            dxg="Input:\n  A: x/v1/A/a\n  B: x/v1/B/b\n"
                "DXG:\n  A:\n    x: B.y\n  B:\n    y: A.x\n",
        )
        with pytest.raises(Exception):
            Catalog().publish(broken)


class TestCompatibility:
    def test_compatible_on_matching_de(self, catalog, runtime):
        de = runtime.exchange("object")
        report = catalog.check(PACKAGE, de)
        assert report.compatible
        assert report.store_map == {
            "T": "knactor-thermostat", "D": "knactor-display",
        }

    def test_incompatible_when_store_missing(self, catalog, env, zero_net):
        de = ObjectDE(env, ApiServer(env, zero_net))
        de.host_store("knactor-thermostat", THERMOSTAT, owner="t")
        report = catalog.check(PACKAGE, de)
        assert not report.compatible
        assert any("Display" in p for p in report.problems)
        assert "NOT compatible" in report.describe()

    def test_incompatible_on_version_mismatch(self, catalog, env, zero_net):
        de = ObjectDE(env, ApiServer(env, zero_net))
        de.host_store(
            "knactor-thermostat",
            THERMOSTAT.replace("Home/v1", "Home/v2"), owner="t",
        )
        de.host_store("knactor-display", DISPLAY, owner="d")
        assert not catalog.check(PACKAGE, de).compatible

    def test_incompatible_on_missing_field(self, catalog, env, zero_net):
        de = ObjectDE(env, ApiServer(env, zero_net))
        de.host_store(
            "knactor-thermostat",
            "schema: Home/v1/Thermostat/Reading\ncelsius: number\n",  # no room
            owner="t",
        )
        de.host_store("knactor-display", DISPLAY, owner="d")
        report = catalog.check(PACKAGE, de)
        assert not report.compatible
        assert any("room" in p for p in report.problems)

    def test_compatible_packages_listing(self, catalog, runtime):
        matches = catalog.compatible_packages(runtime.exchange("object"))
        assert [p.name for p, _r in matches] == ["thermo-display"]


class TestInstall:
    def test_install_wires_grants_and_cast(self, catalog, runtime, env, call):
        cast = catalog.install("thermo-display", runtime)
        assert cast.started
        thermostat = runtime.handle_of("thermostat")
        call(thermostat.create("den", {"celsius": 20.0, "room": "den"}))
        env.run()
        display = runtime.handle_of("display")
        assert call(display.get("den"))["data"]["text"] == "den: 20.0"

    def test_install_incompatible_fails(self, catalog, env, zero_net):
        rt = KnactorRuntime(env, network=zero_net)
        rt.add_exchange("object", ObjectDE(env, ApiServer(env, zero_net)))
        with pytest.raises(ConfigurationError):
            catalog.install("thermo-display", rt)

    def test_install_uses_store_map_not_name_convention(self, catalog, env,
                                                        zero_net, call):
        """Hosted store names differ from the package's Input refs --
        discovery is by SCHEMA, not by naming convention."""
        rt = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        rt.add_exchange("object", de)
        rt.add_knactor(Knactor(
            "vendorX-thermo",
            [StoreBinding("default", "object", THERMOSTAT,
                          store_name="vendorX-thermo-store")],
        ))
        rt.add_knactor(Knactor(
            "vendorY-display",
            [StoreBinding("default", "object", DISPLAY,
                          store_name="vendorY-display-store")],
        ))
        rt.start()
        cast = catalog.install("thermo-display", rt)
        handle = rt.handle_of("vendorX-thermo")
        call(handle.create("hall", {"celsius": 18.5, "room": "hall"}))
        env.run()
        display = rt.handle_of("vendorY-display")
        assert call(display.get("hall"))["data"]["text"] == "hall: 18.5"
