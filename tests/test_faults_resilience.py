"""Resilience layer: retry, circuit breaking, DLQs, graceful degradation."""

import pytest

from repro import config
from repro.core import Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    NotFoundError,
    ReproError,
    RPCStatusError,
    UnavailableError,
)
from repro.exchange import ObjectDE
from repro.faults import CircuitBreaker, RetryPolicy, default_retryable
from repro.metrics.telemetry import resilience_snapshot
from repro.pubsub import Broker, PubSubClient
from repro.rpc import RPCChannel, RPCServer
from repro.store import ApiServer, ApiServerClient
from repro.store.base import OpLatency


class _Flaky:
    """An attempt factory failing ``failures`` times, then succeeding."""

    def __init__(self, env, failures, exc=None, latency=0.0):
        self.env = env
        self.remaining = failures
        self.exc = exc if exc is not None else UnavailableError("down")
        self.latency = latency
        self.calls = 0

    def __call__(self):
        def attempt(env):
            self.calls += 1
            if self.latency:
                yield env.timeout(self.latency)
            else:
                yield env.timeout(0)
            if self.remaining > 0:
                self.remaining -= 1
                raise self.exc
            return "ok"

        return self.env.process(attempt(self.env))


class TestRetryPolicy:
    def test_retries_transient_failures_then_succeeds(self, env):
        policy = RetryPolicy(max_attempts=5, base_backoff=0.01, seed=0)
        flaky = _Flaky(env, failures=3)
        assert env.run(until=policy.execute(env, flaky)) == "ok"
        assert flaky.calls == 4
        assert policy.stats()["retries"] == 3

    def test_gives_up_after_max_attempts(self, env):
        policy = RetryPolicy(max_attempts=2, base_backoff=0.001)
        with pytest.raises(UnavailableError):
            env.run(until=policy.execute(env, _Flaky(env, failures=10)))
        assert policy.giveups == 1

    def test_non_retryable_errors_surface_immediately(self, env):
        policy = RetryPolicy(max_attempts=5)
        flaky = _Flaky(env, failures=3, exc=NotFoundError("gone"))
        with pytest.raises(NotFoundError):
            env.run(until=policy.execute(env, flaky))
        assert flaky.calls == 1
        assert not default_retryable(NotFoundError("gone"))
        assert default_retryable(UnavailableError("x"))
        assert default_retryable(RPCStatusError("UNAVAILABLE", "x"))

    def test_backoff_is_jittered_and_seed_deterministic(self, env):
        delays = [
            RetryPolicy(jitter=0.5, seed=4).backoff_delay(n)
            for n in (1, 2, 3)
        ]
        again = [
            RetryPolicy(jitter=0.5, seed=4).backoff_delay(n)
            for n in (1, 2, 3)
        ]
        assert delays == again
        unjittered = [0.01, 0.02, 0.04]
        assert delays != unjittered
        for delay, base in zip(delays, unjittered):
            assert 0.5 * base <= delay <= 1.5 * base

    def test_attempt_timeout_abandons_slow_attempt(self, env):
        policy = RetryPolicy(
            max_attempts=3, base_backoff=0.001, attempt_timeout=0.05
        )
        calls = []

        def factory():
            calls.append(env.now)

            def attempt(env):
                yield env.timeout(0.2 if len(calls) == 1 else 0.001)
                return "late" if len(calls) == 1 else "fast"

            return env.process(attempt(env))

        assert env.run(until=policy.execute(env, factory)) == "fast"
        assert policy.timeouts == 1

    def test_attempt_timeout_exhaustion_raises_deadline_error(self, env):
        policy = RetryPolicy(
            max_attempts=2, base_backoff=0.001, attempt_timeout=0.01
        )

        def factory():
            def attempt(env):
                yield env.timeout(1.0)

            return env.process(attempt(env))

        with pytest.raises(DeadlineExceededError):
            env.run(until=policy.execute(env, factory))
        env.run()  # abandoned attempts must not crash the loop later

    def test_overall_deadline_bounds_total_time(self, env):
        policy = RetryPolicy(
            max_attempts=100, base_backoff=0.05, jitter=0.0, deadline=0.1
        )
        with pytest.raises(DeadlineExceededError):
            env.run(until=policy.execute(env, _Flaky(env, failures=1000)))
        assert env.now < 0.2

    def test_shared_retry_budget_caps_retries(self, env):
        policy = RetryPolicy(max_attempts=10, base_backoff=0.001, budget=2)
        with pytest.raises(UnavailableError):
            env.run(until=policy.execute(env, _Flaky(env, failures=50)))
        assert policy.retries == 2  # budget spent; later ops get no retries
        with pytest.raises(UnavailableError):
            env.run(until=policy.execute(env, _Flaky(env, failures=1)))
        assert policy.retries == 2


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fast_fails(self, env):
        breaker = CircuitBreaker(env, failure_threshold=2, reset_timeout=0.5)
        policy = RetryPolicy(max_attempts=1)
        for _ in range(2):
            with pytest.raises(UnavailableError):
                env.run(until=policy.execute(
                    env, _Flaky(env, failures=9), breaker=breaker))
        assert breaker.state == "open"
        target = _Flaky(env, failures=0)
        with pytest.raises(CircuitOpenError):
            env.run(until=policy.execute(env, target, breaker=breaker))
        assert target.calls == 0  # fast-fail: the network was never touched
        assert breaker.stats()["rejected"] == 1

    def test_half_open_probe_closes_on_success(self, env):
        breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=0.1)
        policy = RetryPolicy(max_attempts=1)
        with pytest.raises(UnavailableError):
            env.run(until=policy.execute(
                env, _Flaky(env, failures=1), breaker=breaker))
        assert breaker.state == "open"
        env.run(until=env.timeout(0.2))
        assert env.run(until=policy.execute(
            env, _Flaky(env, failures=0), breaker=breaker)) == "ok"
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self, env):
        breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=0.1)
        policy = RetryPolicy(max_attempts=1)
        for _ in range(2):
            with pytest.raises(UnavailableError):
                env.run(until=policy.execute(
                    env, _Flaky(env, failures=5), breaker=breaker))
            env.run(until=env.timeout(0.2))
        assert breaker.opened_count == 2

    def test_application_errors_do_not_trip_the_breaker(self, env):
        breaker = CircuitBreaker(env, failure_threshold=1)
        policy = RetryPolicy(max_attempts=1)
        with pytest.raises(NotFoundError):
            env.run(until=policy.execute(
                env, _Flaky(env, failures=3, exc=NotFoundError("x")),
                breaker=breaker))
        assert breaker.state == "closed"  # the dependency answered


class TestWiredClients:
    def test_store_client_rides_through_unavailable_window(
            self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        policy = RetryPolicy(max_attempts=6, base_backoff=0.02, seed=2)
        client = ApiServerClient(server, "c", retry_policy=policy)
        server.set_available(False)

        def heal(env):
            yield env.timeout(0.05)
            server.set_available(True)

        env.process(heal(env))
        result = env.run(until=client.create("k", {"v": 1}))
        assert result["revision"] == 1
        assert policy.retries >= 1
        assert call(client.get("k"))["data"] == {"v": 1}

    def test_rpc_channel_retries_downed_server(self, env, net, call):
        server = RPCServer(env, net, "shipping")
        server.register("Svc", "Echo", lambda req: {"echo": req["v"]})
        plain = RPCChannel(env, server, "checkout")
        server.set_available(False)
        with pytest.raises(RPCStatusError) as err:
            call(plain.call("Svc", "Echo", {"v": 1}))
        assert err.value.code == "UNAVAILABLE"
        assert server.rejected_while_down == 1

        retrying = RPCChannel(
            env, server, "checkout",
            retry_policy=RetryPolicy(max_attempts=6, base_backoff=0.02),
        )

        def heal(env):
            yield env.timeout(0.05)
            server.set_available(True)

        env.process(heal(env))
        assert call(retrying.call("Svc", "Echo", {"v": 2})) == {"echo": 2}

    def test_rpc_channel_with_breaker_fast_fails(self, env, net, call):
        server = RPCServer(env, net, "shipping")
        server.register("Svc", "Echo", lambda req: req)
        breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=9.0)
        channel = RPCChannel(env, server, "checkout", circuit_breaker=breaker)
        server.set_available(False)
        with pytest.raises(RPCStatusError):
            call(channel.call("Svc", "Echo", {}))
        served_before = server.calls_served
        rejected_before = server.rejected_while_down
        with pytest.raises(CircuitOpenError):
            call(channel.call("Svc", "Echo", {}))
        assert server.calls_served == served_before
        assert server.rejected_while_down == rejected_before

    def test_pubsub_publish_retries_through_partition(self, env, net, call):
        broker = Broker(env, net)
        received = []
        broker.subscribe("t", lambda t, m: received.append(m), "sub")
        client = PubSubClient(
            broker, "pub",
            retry_policy=RetryPolicy(max_attempts=8, base_backoff=0.02),
        )
        net.partition("pub", broker.location)

        def heal(env):
            yield env.timeout(0.05)
            net.heal("pub", broker.location)

        env.process(heal(env))
        call(client.publish("t", b"m"))
        env.run()
        assert received == [b"m"]

    def test_broker_counts_dropped_subscriber_deliveries(self, env, net, call):
        broker = Broker(env, net)
        broker.subscribe("t", lambda t, m: None, "sub")
        net.set_drop_rate(broker.location, "sub", rate=1.0)
        call(broker.publish("t", b"m", "pub"))
        env.run()
        assert broker.dropped == 1  # QoS 0: lost fan-out is counted, not retried


SCHEMA = """\
schema: App/v1/A/Obj
value: number
"""


class _Poison(ReproError):
    """A permanent, non-retryable reconcile failure."""


class _PoisonedReconciler(Reconciler):
    def __init__(self, **kwargs):
        super().__init__("poisoned", **kwargs)
        self.healthy_seen = []

    def reconcile(self, ctx, key, obj):
        if obj is None:
            return
        if key.startswith("poison"):
            raise _Poison(f"cannot digest {key}")
        self.healthy_seen.append(key)
        if False:
            yield  # pragma: no cover - make this a generator


class TestReconcilerDegradation:
    def _runtime(self, env, zero_net, **rec_kwargs):
        runtime = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        runtime.add_exchange("object", de)
        reconciler = _PoisonedReconciler(**rec_kwargs)
        runtime.add_knactor(
            Knactor("a", [StoreBinding("default", "object", SCHEMA)],
                    reconciler=reconciler)
        )
        runtime.start()
        return runtime, reconciler

    def test_poison_object_dead_letters_without_stalling_others(
            self, env, zero_net):
        runtime, reconciler = self._runtime(env, zero_net, max_requeues=2)
        owner = runtime.handle_of("a")
        env.run(until=owner.create("poison/1", {"value": 0}))
        env.run(until=owner.create("healthy/1", {"value": 1}))
        env.run(until=owner.create("healthy/2", {"value": 2}))
        env.run()
        assert reconciler.dead_letters.keys() == ["poison/1"]
        [letter] = list(reconciler.dead_letters)
        assert "cannot digest" in letter.error
        assert letter.attempts == 3  # initial + 2 requeues
        assert letter.source == "poisoned"
        assert sorted(reconciler.healthy_seen) == ["healthy/1", "healthy/2"]
        assert reconciler.health() == "degraded"
        assert "poison/1" not in reconciler._queue

    def test_dead_letter_replay_after_fix(self, env, zero_net):
        runtime, reconciler = self._runtime(env, zero_net, max_requeues=0)
        owner = runtime.handle_of("a")
        env.run(until=owner.create("poison/1", {"value": 0}))
        env.run()
        assert reconciler.dead_letters.keys() == ["poison/1"]
        # Operator fixes the bug, replays the letter.
        reconciler.reconcile = lambda ctx, key, obj: None
        for letter in reconciler.dead_letters.clear():
            reconciler.requeue(letter.key)
        env.run()
        assert reconciler.health() == "ready"

    def test_telemetry_surfaces_resilience_counters(self, env, zero_net):
        runtime, reconciler = self._runtime(env, zero_net, max_requeues=0)
        owner = runtime.handle_of("a")
        env.run(until=owner.create("poison/1", {"value": 0}))
        env.run()
        breaker = CircuitBreaker(env, name="b")
        snapshot = resilience_snapshot(runtime, breakers=[breaker])
        assert snapshot["reconcilers"]["a"]["dead_letters"] == 1
        assert snapshot["reconcilers"]["a"]["dead_letter_keys"] == ["poison/1"]
        assert snapshot["reconcilers"]["a"]["health"] == "degraded"
        assert snapshot["stores"]["apiserver"]["available"] is True
        assert snapshot["circuits"]["b"]["state"] == "closed"

    def test_backoff_defaults_come_from_config(self):
        assert Reconciler.max_retries == config.RECONCILER_MAX_RETRIES
        assert Reconciler.backoff == config.RECONCILER_BACKOFF
        assert Reconciler.backoff_jitter == config.RECONCILER_BACKOFF_JITTER
        assert Reconciler.max_requeues == config.RECONCILER_MAX_REQUEUES
        custom = Reconciler("r", max_retries=9, backoff=0.1,
                            backoff_jitter=0.0, max_requeues=7)
        assert (custom.max_retries, custom.backoff) == (9, 0.1)
        assert (custom.backoff_jitter, custom.max_requeues) == (0.0, 7)

    def test_conflict_backoff_is_jittered_and_deterministic(self):
        first = Reconciler("r", backoff=0.01, backoff_jitter=0.5)
        second = Reconciler("r", backoff=0.01, backoff_jitter=0.5)
        delays = [first._backoff_delay(n) for n in range(1, 5)]
        assert delays == [second._backoff_delay(n) for n in range(1, 5)]
        for n, delay in enumerate(delays, start=1):
            base = 0.01 * 2 ** n
            assert 0.5 * base <= delay <= 1.5 * base
        assert len(set(delays)) == len(delays)  # jitter actually varies
        no_jitter = Reconciler("r", backoff=0.01, backoff_jitter=0.0)
        assert no_jitter._backoff_delay(1) == pytest.approx(0.02)


SCHEMA_X = """\
schema: App/v1/X/Obj
value: number
"""

SCHEMA_Y = """\
schema: App/v1/Y/Obj
value: number
"""


class TestTransactionAtomicityUnderCrash:
    def test_store_crash_mid_commit_aborts_atomically(self, env, zero_net):
        """Satellite: a cross-store txn interrupted by a crash applies
        nothing -- neither store ever shows partial state."""
        backend = ApiServer(
            env, zero_net, watch_overhead=0.0,
            ops={"txn": OpLatency(0.05)},
        )
        de = ObjectDE(env, backend)
        de.host_store("store-x", SCHEMA_X, owner="owner")
        de.host_store("store-y", SCHEMA_Y, owner="owner")
        txn = de.transaction("owner")
        txn.create("store-x", "k", {"value": 1})
        txn.create("store-y", "k", {"value": 2})
        commit = txn.commit()
        env.run(until=env.timeout(0.01))  # commit is now in flight
        backend.crash()
        with pytest.raises(UnavailableError):
            env.run(until=commit)
        backend.restart()
        env.run()
        for handle in (de.handle("store-x", principal="owner"),
                       de.handle("store-y", principal="owner")):
            with pytest.raises(NotFoundError):
                env.run(until=handle.get("k"))

    def test_retried_transaction_commits_after_restart(self, env, zero_net):
        backend = ApiServer(
            env, zero_net, watch_overhead=0.0,
            ops={"txn": OpLatency(0.05)},
        )
        policy = RetryPolicy(max_attempts=6, base_backoff=0.03, seed=5)
        de = ObjectDE(env, backend, retry_policy=policy)
        de.host_store("store-x", SCHEMA_X, owner="owner")
        de.host_store("store-y", SCHEMA_Y, owner="owner")
        txn = de.transaction("owner")
        txn.create("store-x", "k", {"value": 1})
        txn.create("store-y", "k", {"value": 2})
        commit = txn.commit()
        env.run(until=env.timeout(0.01))
        backend.crash()

        def recover(env):
            yield env.timeout(0.02)
            backend.restart()

        env.process(recover(env))
        views = env.run(until=commit)  # the retry wrapper rode through
        assert len(views) == 2
        assert policy.retries >= 1
        x = env.run(until=de.handle("store-x", principal="owner").get("k"))
        y = env.run(until=de.handle("store-y", principal="owner").get("k"))
        assert (x["data"], y["data"]) == ({"value": 1}, {"value": 2})
