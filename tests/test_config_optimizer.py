"""Tests for the calibration config, optimization profiles, and Cast workers."""

import pytest

from repro import config
from repro.core.optimizer import (
    K_APISERVER,
    K_REDIS,
    K_REDIS_UDF,
    PROFILES,
    OptimizationProfile,
)
from repro.errors import ConfigurationError


class TestConfig:
    def test_apiserver_writes_slower_than_memkv(self):
        api_write = config.APISERVER.ops["create"].base
        kv_write = config.MEMKV.ops["create"].base
        assert api_write > 10 * kv_write

    def test_watch_overheads_ordered(self):
        assert config.APISERVER.watch_overhead > config.MEMKV.watch_overhead

    def test_shipment_latency_model_centred_on_446ms(self):
        model = config.shipment_latency_model(seed=1)
        samples = sorted(model.sample() for _ in range(999))
        assert samples[499] == pytest.approx(0.446, rel=0.05)

    def test_shipment_model_seeded_reproducibly(self):
        a = config.shipment_latency_model(seed=5)
        b = config.shipment_latency_model(seed=5)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_all_write_ops_calibrated(self):
        for calibration in (config.APISERVER, config.MEMKV):
            for op in ("create", "update", "patch", "get", "list"):
                assert op in calibration.ops


class TestProfiles:
    def test_table2_rows_registered(self):
        assert set(PROFILES) == {"K-apiserver", "K-redis", "K-redis-udf"}

    def test_pushdown_only_on_udf_profile(self):
        assert not K_APISERVER.pushdown and not K_REDIS.pushdown
        assert K_REDIS_UDF.pushdown and K_REDIS_UDF.backend == "memkv"

    def test_executor_options_informer_style(self):
        options = K_REDIS.executor_options()
        assert options.trust_cache_for_missing
        assert options.consolidate

    def test_integrator_location_zero_copy(self):
        zero_copy = OptimizationProfile(name="zc", zero_copy=True)
        assert zero_copy.integrator_location("backend-node", "own-node") == "backend-node"
        assert K_REDIS.integrator_location("backend-node", "own-node") == "own-node"


class TestCastWorkers:
    def build(self, workers):
        from repro.core import Cast, Knactor, KnactorRuntime, Reconciler, StoreBinding
        from repro.exchange import ObjectDE
        from repro.simnet import Environment, FixedLatency, Network
        from repro.store import ApiServer

        env = Environment()
        net = Network(env, default_latency=FixedLatency(0.0005))
        runtime = KnactorRuntime(env, network=net)
        de = ObjectDE(env, ApiServer(env, net, watch_overhead=0.0))
        runtime.add_exchange("object", de)
        runtime.add_knactor(Knactor("src", [StoreBinding(
            "default", "object", "schema: A/v1/Src/S\nv: number\n")]))
        runtime.add_knactor(Knactor("dst", [StoreBinding(
            "default", "object",
            "schema: A/v1/Dst/D\ncopy: number # +kr: external\n")]))
        de.grant("c", "knactor-src", role="integrator")
        de.grant("c", "knactor-dst", role="integrator")
        cast = Cast("c", (
            "Input:\n  A: A/v1/Src/knactor-src\n  B: A/v1/Dst/knactor-dst\n"
            "DXG:\n  B:\n    copy: A.v * 2\n"
        ), workers=workers)
        runtime.add_integrator(cast)
        runtime.start()
        return env, runtime, de, cast

    def test_invalid_worker_count(self):
        from repro.core import Cast

        with pytest.raises(ConfigurationError):
            Cast("c", "x", workers=0)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_all_exchanges_complete(self, workers):
        env, runtime, de, cast = self.build(workers)
        src = runtime.handle_of("src")
        for i in range(10):
            env.run(until=src.create(f"x{i}", {"v": i}))
        env.run()
        dst = runtime.handle_of("dst")
        for i in range(10):
            assert env.run(until=dst.get(f"x{i}"))["data"]["copy"] == i * 2

    def test_more_workers_finish_sooner_under_burst(self):
        def completion_time(workers):
            env, runtime, de, cast = self.build(workers)
            src = runtime.handle_of("src")
            for i in range(12):
                env.run(until=src.create(f"x{i}", {"v": i}))
            env.run()
            return env.now

        assert completion_time(4) < completion_time(1)

    def test_same_cid_never_processed_concurrently(self):
        env, runtime, de, cast = self.build(4)
        # Instrument: track overlapping processing of one cid.
        active = set()
        overlaps = []
        original = cast._process

        def traced(env_, cid):
            if cid in active:
                overlaps.append(cid)
            active.add(cid)
            try:
                yield env_.process(original(env_, cid))
            finally:
                active.discard(cid)

        cast._process = traced
        src = runtime.handle_of("src")
        for i in range(5):
            env.run(until=src.create("same", {"v": i}) if i == 0
                    else src.update("same", {"v": i}))
        env.run()
        assert overlaps == []
