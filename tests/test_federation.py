"""Cross-store query federation: composed views, planner, maintenance.

Covers the view spec grammar, the two execution strategies behind one
handle (scatter-gather federated vs incrementally maintained
materialized), the planner's freshness rules, viewer-role RBAC with
mask composition at the view boundary, and -- the load-bearing
property -- *answer identity*: at ``freshness=0`` the federated and
materialized strategies return byte-identical records even under
concurrent writes with injected watch-message drops (the PR-3
gap-detect + resync machinery healing the maintenance streams).
"""

import json
import random

import pytest

from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    NotFoundError,
    QueryError,
)
from repro.exchange import LogDE, ObjectDE
from repro.federation import ComposedView, ViewSource, compose
from repro.obs.registry import Registry
from repro.query import Query, QueryResult
from repro.store import LogLake, MemKV

ORDER_SCHEMA = """\
schema: Retail/v1/Checkout/Order
status: string
total: number
cardToken: string # +kr: secret
"""

SHIPMENT_SCHEMA = """\
schema: Retail/v1/Shipping/Shipment
carrier: string
eta: number
"""

EVENTS_SCHEMA = """\
schema: Retail/v1/Audit/Events
kind: string # +kr: ingest
order: string # +kr: ingest
"""


def _plain(value):
    if hasattr(value, "items"):
        return {k: _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def canonical(records):
    return json.dumps(_plain(list(records)), sort_keys=True)


@pytest.fixture
def object_de(env, zero_net):
    de = ObjectDE(env, MemKV(env, zero_net, watch_overhead=0.0,
                             delta_watch=True))
    de.host_store("orders", ORDER_SCHEMA, owner="checkout")
    de.host_store("shipments", SHIPMENT_SCHEMA, owner="shipping")
    return de


@pytest.fixture
def log_de(env, zero_net):
    de = LogDE(env, LogLake(env, zero_net, watch_overhead=0.0))
    de.host_store("events", EVENTS_SCHEMA, owner="audit")
    return de


VIEW = ComposedView(
    name="order-view",
    sources=(
        ViewSource(alias="order", store="orders"),
        ViewSource(alias="shipment", store="shipments"),
        ViewSource(alias="events", store="events", exchange="log",
                   match="order", into="history"),
    ),
    freshness=0.25,
)


@pytest.fixture
def registered(env, object_de, log_de):
    registry = Registry(env)
    view = object_de.register_view(
        VIEW, exchanges={"log": log_de}, registry=registry,
    )
    object_de.grant("page", "order-view", role="viewer")
    env.run(until=env.now + 0.05)  # let maintenance seed
    return view


@pytest.fixture
def seeded(env, object_de, log_de, registered, call):
    orders = object_de.handle("orders", principal="checkout")
    shipments = object_de.handle("shipments", principal="shipping")
    events = log_de.handle("events", principal="audit")
    for n in (1, 2, 3):
        call(orders.create(f"o{n}", {
            "status": "placed", "total": 10.0 * n, "cardToken": f"tok-{n}",
        }))
    call(shipments.create("o1", {"carrier": "dhl", "eta": 2}))
    call(events.load([
        {"kind": "placed", "order": "o1"},
        {"kind": "charged", "order": "o1"},
        {"kind": "placed", "order": "o2"},
    ]))
    env.run(until=env.now + 0.2)  # drain watch fan-out
    return {"orders": orders, "shipments": shipments, "events": events}


class TestViewSpec:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(ConfigurationError, match="alias"):
            ComposedView("v", sources=(
                ViewSource(alias="a", store="s1"),
                ViewSource(alias="a", store="s2"),
            ))

    def test_needs_at_least_one_source(self):
        with pytest.raises(ConfigurationError):
            ComposedView("v", sources=())

    def test_negative_freshness_rejected(self):
        with pytest.raises(ConfigurationError):
            ComposedView("v", sources=(ViewSource(alias="a", store="s"),),
                         freshness=-1.0)

    def test_bad_ops_rejected_eagerly(self):
        with pytest.raises(QueryError):
            ComposedView("v", sources=(ViewSource(alias="a", store="s"),),
                         ops=({"op": "explode"},))

    def test_root_and_field_resolution(self):
        assert VIEW.root.alias == "order"
        assert VIEW.source("events").field == "history"
        assert VIEW.source("shipment").field == "shipment"

    def test_compose_joins_objects_single_and_logs_as_lists(self):
        view = ComposedView("v", sources=(
            ViewSource(alias="a", store="sa"),
            ViewSource(alias="b", store="sb"),
            ViewSource(alias="l", store="sl", match="a_key"),
        ))
        rows = compose(
            view,
            {
                "a": [{"_key": "k1"}, {"_key": "k2"}],
                "b": [{"_key": "k1", "x": 1}],
                "l": [{"a_key": "k1", "n": 1}, {"a_key": "k1", "n": 2}],
            },
            {"a": "object", "b": "object", "l": "log"},
        )
        assert rows[0]["b"] == {"_key": "k1", "x": 1}
        assert [r["n"] for r in rows[0]["l"]] == [1, 2]
        assert rows[1]["b"] is None and rows[1]["l"] == []

    def test_required_source_inner_joins(self):
        view = ComposedView("v", sources=(
            ViewSource(alias="a", store="sa"),
            ViewSource(alias="b", store="sb", required=True),
        ))
        rows = compose(
            view,
            {"a": [{"_key": "k1"}, {"_key": "k2"}],
             "b": [{"_key": "k2", "x": 1}]},
            {"a": "object", "b": "object"},
        )
        assert [r["_key"] for r in rows] == ["k2"]


class TestPlanner:
    def test_fresh_read_goes_federated(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        result = env.run(until=handle.query(freshness=0))
        assert result.strategy == "federated"
        assert result.staleness == 0.0

    def test_bounded_read_served_materialized(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        result = env.run(until=handle.query())
        assert result.strategy == "materialized"
        assert result.staleness <= VIEW.freshness

    def test_consistency_levels(self, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        assert handle.plan(consistency="strong").strategy == "federated"
        assert handle.plan(consistency="any").strategy == "materialized"
        assert handle.plan(freshness=0).strategy == "federated"

    def test_unmaterialized_view_always_federated(self, env, object_de):
        view = ComposedView("lean", sources=(
            ViewSource(alias="order", store="orders"),
        ))
        object_de.register_view(view, materialize=False)
        object_de.grant("page", "lean", role="viewer")
        handle = object_de.view("lean", principal="page")
        plan = handle.plan(consistency="any")
        assert plan.strategy == "federated"
        assert "no materialized copy" in plan.reason

    def test_forced_stale_serve_counts_violation(self, env, registered,
                                                 seeded):
        handle = registered.home.view("order-view", principal="page")
        registry = registered.registry
        counter = registry.counter(
            "view_freshness_violations_total", view="order-view",
        )
        before = counter.value
        # The staleness floor (2 ms) exceeds this bound, so the planner
        # would go federated; forcing materialized is a counted override.
        result = env.run(until=handle.query(
            freshness=0.0001, strategy="materialized",
        ))
        assert result.strategy == "materialized"
        assert counter.value == before + 1

    def test_auto_planner_never_violates(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        for freshness in (0.0001, 0.01, 1.0):
            result = env.run(until=handle.query(freshness=freshness))
            if result.strategy == "materialized":
                assert result.staleness <= freshness
        counter = registered.registry.counter(
            "view_freshness_violations_total", view="order-view",
        )
        assert counter.value == 0


class TestAnswerIdentity:
    def test_strategies_agree_when_quiet(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        federated = env.run(until=handle.query(freshness=0))
        materialized = env.run(until=handle.query(consistency="any"))
        assert materialized.strategy == "materialized"
        assert canonical(federated.records) == canonical(materialized.records)
        row = federated.records[0]
        assert row["_key"] == "o1"
        assert row["shipment"]["carrier"] == "dhl"
        assert [e["kind"] for e in row["history"]] == ["placed", "charged"]

    def test_keyed_read_restricts_and_orders(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="page")
        result = env.run(until=handle.query(freshness=0, keys=["o2", "o1"]))
        assert [r["_key"] for r in result.records] == ["o2", "o1"]
        keyed_mat = env.run(until=handle.query(
            consistency="any", keys=["o2", "o1"],
        ))
        assert canonical(result.records) == canonical(keyed_mat.records)

    def test_view_ops_apply_after_compose(self, env, object_de, log_de,
                                          seeded):
        view = ComposedView("totals", sources=(
            ViewSource(alias="order", store="orders"),
        ), ops=({"op": "agg", "aggs": {"sum": "sum(total)"}},))
        object_de.register_view(view, materialize=False)
        object_de.grant("page", "totals", role="viewer")
        result = env.run(
            until=object_de.view("totals", principal="page").query()
        )
        assert result.records == [{"sum": pytest.approx(60.0)}]


SEEDS = [3, 11, 27]


@pytest.mark.parametrize("seed", SEEDS)
def test_identity_under_concurrent_writes_and_drops(env, object_de, log_de,
                                                    seed):
    """The seeded property: freshness=0 federated answers equal forced
    materialized answers after quiesce, across random interleavings of
    creates / patches / deletes / appends with watch messages dropped
    mid-run (gap-detect + resync heal the maintenance streams)."""
    registry = Registry(env)
    registered = object_de.register_view(
        VIEW, exchanges={"log": log_de}, registry=registry,
    )
    object_de.grant("page", "order-view", role="viewer")
    orders = object_de.handle("orders", principal="checkout")
    shipments = object_de.handle("shipments", principal="shipping")
    events = log_de.handle("events", principal="audit")
    rng = random.Random(seed)

    def writer(env):
        created = 0
        live, shipped = [], set()
        for step in range(60):
            yield env.timeout(rng.uniform(0.0005, 0.004))
            roll = rng.random()
            if roll < 0.45 or not live:
                created += 1
                key = f"o{created:03d}"
                live.append(key)
                yield orders.create(key, {
                    "status": "placed",
                    "total": float(rng.randint(5, 500)),
                    "cardToken": f"tok-{step}",
                })
            elif roll < 0.70:
                yield orders.patch(rng.choice(live), {
                    "status": rng.choice(["charged", "shipped", "done"]),
                })
            elif roll < 0.80 and len(live) > 1:
                victim = live.pop(rng.randrange(len(live)))
                shipped.discard(victim)
                yield orders.delete(victim)
            elif roll < 0.90:
                key = rng.choice(live)
                payload = {"carrier": rng.choice(["dhl", "ups"]),
                           "eta": rng.randint(1, 9)}
                if key in shipped:
                    yield shipments.update(key, payload)
                else:
                    shipped.add(key)
                    yield shipments.create(key, payload)
            else:
                yield events.load([{
                    "kind": rng.choice(["placed", "charged", "audit"]),
                    "order": rng.choice(live),
                }])
            if step in (10, 25, 40):
                # Lose the very next maintenance delivery on each
                # backend (a patch / append we issue right here): the
                # following same-key delta or log batch trips
                # gap-detect and resyncs.  The healing contract is
                # per-chain -- a later message must flow -- which the
                # sealing pass below guarantees for every key.
                object_de.backend.drop_next_watch_message()
                yield orders.patch(live[0], {"status": f"lost-{step}"})
                log_de.backend.drop_next_watch_message()
                yield events.load([{"kind": "lost", "order": live[0]}])
        for key in live:  # seal every delta chain past any drop
            yield orders.patch(key, {"status": "sealed"})
        yield events.load([{"kind": "seal", "order": "none"}])

    env.run(until=env.process(writer(env)))
    env.run(until=env.now + 3.0)  # quiesce: drain resyncs + lag window
    handle = object_de.view("order-view", principal="page")
    federated = env.run(until=handle.query(freshness=0))
    materialized = env.run(until=handle.query(
        consistency="any", strategy="materialized",
    ))
    assert materialized.strategy == "materialized"
    assert canonical(federated.records) == canonical(materialized.records)
    status = registered.materialized.status()
    assert not any(s["resyncing"] for s in status.values())


class TestViewerRoleAndMasks:
    def test_viewer_role_required_for_view_grants(self, object_de,
                                                  registered):
        with pytest.raises(ConfigurationError, match="viewer"):
            object_de.grant("p2", "order-view", role="reader")

    def test_viewer_role_rejected_on_hosted_stores(self, object_de):
        with pytest.raises(ConfigurationError, match="composed views"):
            object_de.grant("p2", "orders", role="viewer")

    def test_ungranted_principal_denied(self, env, registered, seeded):
        handle = registered.home.view("order-view", principal="stranger")
        with pytest.raises(AccessDeniedError):
            handle.query(freshness=0)

    def test_view_handles_raise_toward_view_api(self, object_de, registered):
        with pytest.raises(ConfigurationError, match="view"):
            object_de.handle("order-view", principal="page")

    @pytest.mark.parametrize("kwargs", [
        {"freshness": 0}, {"consistency": "any"},
    ])
    def test_secret_fields_masked_in_both_strategies(self, env, registered,
                                                     seeded, kwargs):
        """cardToken is ``+kr: secret``: the view's service principal is
        a plain reader on each source, so the per-source mask composes
        into every strategy's answer."""
        handle = registered.home.view("order-view", principal="page")
        result = env.run(until=handle.query(**kwargs))
        assert result.records
        assert all("cardToken" not in r for r in result.records)


class TestUnifiedQuery:
    def test_object_store_query_with_keys_and_ops(self, env, object_de,
                                                  seeded):
        result = env.run(until=object_de.query(
            "orders", keys=["o3", "o1"], principal="checkout",
            ops=({"op": "cut", "fields": ["_key", "total"]},),
        ))
        assert isinstance(result, QueryResult)
        assert result.strategy == "direct"
        assert list(result) == [{"_key": "o3", "total": 30.0},
                                {"_key": "o1", "total": 10.0}]

    def test_log_store_query_pushes_down(self, env, log_de, seeded):
        result = env.run(until=log_de.query(
            "events", principal="audit",
            ops=({"op": "agg", "aggs": {"n": "count()"}, "by": ["order"]},
                 {"op": "sort", "by": "order"}),
        ))
        assert [(r["order"], r["n"]) for r in result] == [("o1", 2),
                                                          ("o2", 1)]

    def test_log_store_rejects_keys(self, log_de, seeded):
        with pytest.raises(QueryError, match="keys"):
            log_de.query("events", keys=["o1"], principal="audit")

    def test_store_target_rejects_strategy(self, object_de, seeded):
        with pytest.raises(QueryError, match="strategy"):
            object_de.query("orders", principal="checkout",
                            strategy="materialized")

    def test_principal_required(self, object_de):
        with pytest.raises(TypeError, match="principal"):
            object_de.query("orders")

    def test_view_target_routes_through_planner(self, env, object_de,
                                                registered, seeded):
        result = env.run(until=object_de.query(
            "order-view", principal="page", freshness=0,
        ))
        assert result.strategy == "federated"

    def test_query_instance_target(self, env, object_de, seeded):
        spec = Query(target="orders", principal="checkout", keys=("o2",))
        result = env.run(until=object_de.query(spec))
        assert [r["_key"] for r in result] == ["o2"]

    def test_spec_validation_is_eager(self):
        with pytest.raises(QueryError):
            Query(target="t", consistency="eventual")
        with pytest.raises(QueryError):
            Query(target="t", freshness=-0.5)
        with pytest.raises(QueryError):
            Query(target="t", ops=({"op": "explode"},))

    def test_effective_consistency(self):
        assert Query(target="t").effective_consistency() == "strong"
        assert Query(target="t", freshness=0.5).effective_consistency() \
            == "bounded"
        assert Query(target="t", freshness=0.5, consistency="any") \
            .effective_consistency() == "any"


class TestRealtimeParity:
    def test_de_query_and_view_identity_on_realtime_backend(self):
        from repro.realtime import RealtimeEnvironment
        from repro.simnet import FixedLatency, Network

        env = RealtimeEnvironment(factor=0.0)
        net = Network(env, default_latency=FixedLatency(0.0))
        de = ObjectDE(env, MemKV(env, net, watch_overhead=0.0))
        de.host_store("orders", ORDER_SCHEMA, owner="checkout")
        de.host_store("shipments", SHIPMENT_SCHEMA, owner="shipping")
        view = ComposedView("rt-view", sources=(
            ViewSource(alias="order", store="orders"),
            ViewSource(alias="shipment", store="shipments"),
        ))
        de.register_view(view)
        de.grant("page", "rt-view", role="viewer")
        orders = de.handle("orders", principal="checkout")
        shipments = de.handle("shipments", principal="shipping")
        env.run(until=orders.create("o1", {"status": "placed", "total": 9.0,
                                           "cardToken": "tok"}))
        env.run(until=shipments.create("o1", {"carrier": "dhl", "eta": 1}))
        env.run(until=env.now + 0.05)
        federated = env.run(until=de.query(
            "rt-view", principal="page", freshness=0,
        ))
        materialized = env.run(until=de.query(
            "rt-view", principal="page", consistency="any",
        ))
        direct = env.run(until=de.query("orders", principal="checkout",
                                        keys=["o1"]))
        env.close()
        assert federated.strategy == "federated"
        assert materialized.strategy == "materialized"
        assert canonical(federated.records) == canonical(materialized.records)
        assert direct.records[0]["cardToken"] == "tok"  # owner sees secrets
