"""Unit tests for generator-based simulation processes."""

import pytest

from repro.simnet import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestProcess:
    def test_timeout_sequence(self, env):
        log = []

        def proc(env):
            log.append(env.now)
            yield env.timeout(1.0)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [0.0, 1.0, 3.5]

    def test_return_value_propagates(self, env):
        def child(env):
            yield env.timeout(1.0)
            return "result"

        def parent(env):
            value = yield env.process(child(env))
            return value + "!"

        p = env.process(parent(env))
        assert env.run(until=p) == "result!"

    def test_exception_in_child_raises_in_parent(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise RuntimeError("child failed")

        def parent(env):
            try:
                yield env.process(child(env))
            except RuntimeError as exc:
                return f"caught: {exc}"

        p = env.process(parent(env))
        assert env.run(until=p) == "caught: child failed"

    def test_unhandled_process_exception_surfaces(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("oops")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_yield_non_event_is_error(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_already_processed_event(self, env):
        evt = env.event()
        evt.succeed("early")
        env.run()  # process the event before the process waits on it

        def proc(env):
            value = yield evt
            return value

        p = env.process(proc(env))
        assert env.run(until=p) == "early"

    def test_many_processes_interleave_deterministically(self, env):
        log = []

        def proc(env, name, period):
            while env.now < 3:
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(proc(env, "fast", 1.0))
        env.process(proc(env, "slow", 1.5))
        env.run(until=4.0)
        assert log == [
            (1.0, "fast"),
            (1.5, "slow"),
            (2.0, "fast"),
            (3.0, "slow"),
            (3.0, "fast"),
        ]


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                log.append((env.now, intr.cause))

        def waker(env, target):
            yield env.timeout(2.0)
            target.interrupt(cause="wake up")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert log == [(2.0, "wake up")]

    def test_original_target_does_not_resume_twice(self, env):
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(5.0)
            except Interrupt:
                pass
            yield env.timeout(10.0)
            resumed.append(env.now)

        def waker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        # Interrupted at t=1, then sleeps 10 more: resumes at 11, not 5.
        assert resumed == [11.0]

    def test_cannot_interrupt_finished_process(self, env):
        def quick(env):
            yield env.timeout(0.1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()
