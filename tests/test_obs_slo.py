"""Unit suite for the declarative SLO layer (``repro.obs.slo``).

Everything runs against a standalone registry on a bare simnet
environment: objective judgements, exemplar linkage, multi-window
burn-rate math, and error-budget accounting, with hand-built counts so
every expected number is derivable by inspection.
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Registry
from repro.obs.slo import (
    AvailabilitySLO,
    BurnRateTracker,
    BurnWindow,
    FreshnessSLO,
    LatencySLO,
    SLOReport,
    TraceLatencySLO,
    evaluate,
)
from repro.simnet import Environment, Tracer


def _env_registry():
    env = Environment()
    return env, Registry(env)


def _advance(env, seconds):
    """Move the sim clock forward by ``seconds``."""
    env.run(until=env.now + seconds)


class TestLatencySLO:
    def test_met_under_threshold(self):
        env, registry = _env_registry()
        series = registry.histogram("request_latency_seconds", scenario="t")
        for value in (0.01, 0.02, 0.03):
            series.observe(value)
        result = LatencySLO("lat", percentile=0.99,
                            threshold_seconds=0.1).evaluate(registry)
        assert result.met
        assert result.observed <= 0.03
        assert result.exemplars == []
        assert "MET" in result.describe()

    def test_violation_carries_worst_exemplars(self):
        env, registry = _env_registry()
        series = registry.histogram("request_latency_seconds", scenario="t")
        for index in range(20):
            series.observe(0.01, exemplar=f"t-fast-{index}")
        for index, value in enumerate((0.5, 0.9, 0.7)):
            series.observe(value, exemplar=f"t-slow-{index}")
        result = LatencySLO("lat", percentile=0.95,
                            threshold_seconds=0.1).evaluate(registry)
        assert not result.met
        values = [e["value"] for e in result.exemplars]
        assert values == sorted(values, reverse=True)
        assert values[0] == 0.9
        assert all(v > 0.1 for v in values)
        assert result.exemplars[0]["trace_id"] == "t-slow-1"

    def test_label_filter_selects_series(self):
        env, registry = _env_registry()
        registry.histogram("request_latency_seconds",
                           scenario="a").observe(0.01)
        registry.histogram("request_latency_seconds",
                           scenario="b").observe(9.0)
        result = LatencySLO("lat", labels={"scenario": "a"},
                            threshold_seconds=0.1).evaluate(registry)
        assert result.met and result.sample_count == 1

    def test_no_data(self):
        env, registry = _env_registry()
        result = LatencySLO("lat", threshold_seconds=0.1).evaluate(registry)
        assert result.no_data and not result.met
        assert "NO DATA" in result.describe()

    def test_good_total_counts_under_threshold(self):
        env, registry = _env_registry()
        series = registry.histogram("request_latency_seconds")
        for value in (0.01, 0.02, 0.5, 0.9):
            series.observe(value)
        good, total = LatencySLO(
            "lat", threshold_seconds=0.1).good_total(registry)
        assert (good, total) == (2, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencySLO("lat")  # no threshold
        with pytest.raises(ConfigurationError):
            LatencySLO("lat", threshold_seconds=-1)
        with pytest.raises(ConfigurationError):
            LatencySLO("lat", threshold_seconds=0.1, percentile=1.5)
        with pytest.raises(ConfigurationError):
            LatencySLO("", threshold_seconds=0.1)


class TestFreshnessSLO:
    def test_reads_watch_lag_by_default(self):
        env, registry = _env_registry()
        registry.histogram("watch_lag_seconds").observe(0.02)
        result = FreshnessSLO("fresh",
                              threshold_seconds=0.1).evaluate(registry)
        assert result.kind == "freshness"
        assert result.met and result.sample_count == 1


class TestAvailabilitySLO:
    def _spec(self, target=0.9, **kwargs):
        return AvailabilitySLO(
            "avail", target=target,
            total=[("requests_total", {})],
            bad=[("requests_total", {"outcome": "rejected"})],
            **kwargs,
        )

    def test_good_fraction(self):
        env, registry = _env_registry()
        registry.counter("requests_total", outcome="ok").inc(95)
        registry.counter("requests_total", outcome="rejected").inc(5)
        result = self._spec(target=0.9).evaluate(registry)
        assert result.met
        assert result.observed == pytest.approx(0.95)
        assert (result.good, result.total) == (95, 100)

    def test_violation_borrows_exemplars_from_histogram(self):
        env, registry = _env_registry()
        registry.counter("requests_total", outcome="ok").inc(5)
        registry.counter("requests_total", outcome="rejected").inc(5)
        lat = registry.histogram("request_latency_seconds", scenario="t")
        lat.observe(0.3, exemplar="t-worst")
        lat.observe(0.1, exemplar="t-mild")
        result = self._spec(
            target=0.99,
            exemplar_metric="request_latency_seconds",
            exemplar_labels={"scenario": "t"},
        ).evaluate(registry)
        assert not result.met
        assert result.exemplars[0]["trace_id"] == "t-worst"

    def test_violation_without_companion_histogram_has_no_exemplars(self):
        env, registry = _env_registry()
        registry.counter("requests_total", outcome="rejected").inc(10)
        result = self._spec(target=0.99).evaluate(registry)
        assert not result.met and result.exemplars == []

    def test_no_data(self):
        env, registry = _env_registry()
        result = self._spec().evaluate(registry)
        assert result.no_data and not result.met

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AvailabilitySLO("a", target=1.5, total=[("x", {})])
        with pytest.raises(ConfigurationError):
            AvailabilitySLO("a", target=0.9, total=[])


class TestBurnWindows:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurnWindow(long_seconds=5, short_seconds=5, factor=2)
        with pytest.raises(ConfigurationError):
            BurnWindow(long_seconds=10, short_seconds=1, factor=0)


class TestBurnRateTracker:
    """Hand-built counts: every burn rate below is derivable on paper."""

    WINDOW = BurnWindow(long_seconds=10.0, short_seconds=1.0, factor=3.0)

    def _setup(self):
        env, registry = _env_registry()
        spec = AvailabilitySLO(
            "avail", target=0.8,  # error budget: 20%
            total=[("requests_total", {})],
            bad=[("requests_total", {"outcome": "rejected"})],
            windows=(self.WINDOW,),
        )
        tracker = BurnRateTracker(env, registry, [spec])
        ok = registry.counter("requests_total", outcome="ok")
        bad = registry.counter("requests_total", outcome="rejected")
        return env, registry, spec, tracker, ok, bad

    def test_burn_math_and_alerting(self):
        env, registry, spec, tracker, ok, bad = self._setup()
        tracker.sample()  # t=0: (0, 0)

        _advance(env, 1.0)
        ok.inc(90), bad.inc(10)  # 10% bad of 100
        tracker.sample()
        [entry] = tracker.burn_rates(spec)
        assert entry["long_burn"] == pytest.approx(0.5)   # 0.1 / 0.2
        assert not entry["alert"]
        assert tracker.error_budget_remaining(spec) == pytest.approx(0.5)

        _advance(env, 1.0)
        bad.inc(50)  # cumulative: 60 bad / 150
        tracker.sample()
        [entry] = tracker.burn_rates(spec)
        assert entry["long_burn"] == pytest.approx(2.0)   # 0.4 / 0.2
        assert entry["short_burn"] == pytest.approx(5.0)  # 50/50 / 0.2
        assert not entry["alert"]  # long window not yet over factor
        assert tracker.alerts() == []

        _advance(env, 1.0)
        bad.inc(100)  # cumulative: 160 bad / 250
        tracker.sample()
        [entry] = tracker.burn_rates(spec)
        assert entry["long_burn"] == pytest.approx(3.2)   # 0.64 / 0.2
        assert entry["short_burn"] == pytest.approx(5.0)  # 100/100 / 0.2
        assert entry["alert"]
        assert [name for name, _ in tracker.alerts()] == ["avail"]
        assert tracker.error_budget_remaining(spec) == 0.0

    def test_recovery_clears_the_short_window(self):
        env, registry, spec, tracker, ok, bad = self._setup()
        tracker.sample()
        _advance(env, 1.0)
        bad.inc(100)
        tracker.sample()
        _advance(env, 1.0)
        ok.inc(100)  # a clean recent window
        tracker.sample()
        [entry] = tracker.burn_rates(spec)
        assert entry["short_burn"] == pytest.approx(0.0)
        assert not entry["alert"]  # recovered burns stop paging

    def test_no_traffic_is_no_burn(self):
        env, registry, spec, tracker, ok, bad = self._setup()
        tracker.sample()
        _advance(env, 1.0)
        tracker.sample()
        [entry] = tracker.burn_rates(spec)
        assert entry["long_burn"] is None and not entry["alert"]
        assert tracker.error_budget_remaining(spec) is None

    def test_periodic_sampling_process(self):
        env, registry, spec, tracker, ok, bad = self._setup()
        tracker.interval = 0.5
        tracker.start()
        assert tracker.start() is None  # idempotent
        _advance(env, 2.0)
        tracker.stop()
        _advance(env, 5.0)
        samples = tracker._samples["avail"]
        assert len(samples) == 4  # 0.5, 1.0, 1.5, 2.0 -- none after stop
        assert samples[-1][0] == pytest.approx(2.0)

    def test_validation(self):
        env, registry = _env_registry()
        with pytest.raises(ConfigurationError):
            BurnRateTracker(env, registry, [], interval=0)


class TestTraceLatencySLO:
    def test_needs_a_tracer(self):
        env, registry = _env_registry()
        spec = TraceLatencySLO("legacy", integrator="sync",
                               target_seconds=0.1)
        with pytest.raises(ConfigurationError):
            spec.evaluate(registry)

    def test_empty_tracer_is_no_data(self):
        env = Environment()
        spec = TraceLatencySLO("legacy", integrator="sync",
                               target_seconds=0.1)
        result = spec.evaluate_trace(Tracer(env))
        assert result.no_data and not result.met

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceLatencySLO("legacy", target_seconds=0.1)  # no integrator
        with pytest.raises(ConfigurationError):
            TraceLatencySLO("legacy", integrator="sync", target_seconds=0)


class TestEvaluateAndReport:
    def test_report_shape(self):
        env, registry = _env_registry()
        registry.histogram("request_latency_seconds").observe(0.01)
        registry.counter("requests_total", outcome="ok").inc(10)
        specs = [
            LatencySLO("lat", threshold_seconds=0.1),
            AvailabilitySLO("avail", target=0.9,
                            total=[("requests_total", {})], bad=[]),
            TraceLatencySLO("legacy", integrator="sync", target_seconds=1.0),
        ]
        report = evaluate(specs, registry, scenario="unit", env=env,
                          meta={"run": 1})
        assert report.met
        # The trace-vocabulary spec is skipped, not judged.
        assert [r.name for r in report.results] == ["lat", "avail"]
        doc = report.to_json()
        assert doc["scenario"] == "unit"
        assert doc["met"] is True
        assert doc["meta"] == {"run": 1}
        assert {o["name"] for o in doc["objectives"]} == {"lat", "avail"}
        for objective in doc["objectives"]:
            assert set(objective) >= {
                "name", "kind", "met", "observed", "objective",
                "exemplars", "burn", "budget_remaining",
            }

    def test_violations_listed(self):
        env, registry = _env_registry()
        registry.histogram("request_latency_seconds").observe(5.0)
        report = SLOReport(scenario="unit", results=[
            LatencySLO("lat", threshold_seconds=0.1).evaluate(registry),
        ])
        assert not report.met
        assert [r.name for r in report.violated()] == ["lat"]
        assert "VIOLATIONS" in report.describe()
