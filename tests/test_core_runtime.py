"""Unit tests for the runtime, knactor wiring, policies, and pipelines."""

import pytest

from repro.core import (
    Knactor,
    KnactorRuntime,
    create_environment,
    Pipeline,
    StoreBinding,
    TimeWindowCondition,
    deny_during,
)
from repro.core.policy import threshold_route
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    NotFoundError,
    StoreError,
)
from repro.exchange import ObjectDE
from repro.store import ApiServer

SCHEMA = "schema: App/v1/Svc/Thing\nname: string\n"


@pytest.fixture
def runtime(env, zero_net):
    rt = KnactorRuntime(env, network=zero_net)
    rt.add_exchange("object", ObjectDE(env, ApiServer(env, zero_net)))
    return rt


class TestRuntime:
    def test_add_knactor_hosts_stores(self, runtime):
        runtime.add_knactor(Knactor("svc", [StoreBinding("default", "object", SCHEMA)]))
        de = runtime.exchange("object")
        assert de.stores() == ["knactor-svc"]
        assert runtime.store_owner("knactor-svc") == "svc"

    def test_duplicate_knactor_rejected(self, runtime):
        runtime.add_knactor(Knactor("svc", [StoreBinding("default", "object", SCHEMA)]))
        with pytest.raises(ConfigurationError):
            runtime.add_knactor(Knactor("svc", []))

    def test_unknown_lookups_raise(self, runtime):
        with pytest.raises(NotFoundError):
            runtime.knactor("nope")
        with pytest.raises(NotFoundError):
            runtime.exchange("nope")
        with pytest.raises(NotFoundError):
            runtime.integrator("nope")
        with pytest.raises(NotFoundError):
            runtime.store_owner("nope")

    def test_multiple_stores_per_knactor(self, runtime):
        knactor = Knactor(
            "svc",
            [
                StoreBinding("default", "object", SCHEMA),
                StoreBinding("extra", "object", "schema: App/v1/Svc/Extra\nv: number\n"),
            ],
        )
        runtime.add_knactor(knactor)
        assert knactor.binding("extra").store_name == "knactor-svc-extra"
        assert runtime.handle_of("svc", "extra").store_name == "knactor-svc-extra"

    def test_duplicate_store_local_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Knactor(
                "svc",
                [
                    StoreBinding("default", "object", SCHEMA),
                    StoreBinding("default", "object", SCHEMA),
                ],
            )

    def test_describe_runs(self, runtime):
        runtime.add_knactor(Knactor("svc", [StoreBinding("default", "object", SCHEMA)]))
        text = runtime.describe()
        assert "knactor svc" in text and "knactor-svc" in text

    def test_start_stop_idempotent(self, runtime):
        runtime.start()
        runtime.start()
        runtime.stop()
        runtime.stop()

    def test_knactor_added_after_start_begins_running(self, env, runtime, call):
        from repro.core import Reconciler

        class Counter(Reconciler):
            def __init__(self):
                super().__init__("counter")
                self.count = 0

            def reconcile(self, ctx, key, obj):
                self.count += 1

        runtime.start()
        rec = Counter()
        runtime.add_knactor(
            Knactor("late", [StoreBinding("default", "object", SCHEMA)], reconciler=rec)
        )
        handle = runtime.handle_of("late")
        call(handle.create("x", {"name": "n"}))
        env.run()
        assert rec.count >= 1


class TestExecutionModes:
    """Backend selection through KnactorRuntime(mode=) / create_environment."""

    def test_default_mode_is_sim(self):
        rt = KnactorRuntime()
        assert rt.mode == "sim"
        assert getattr(rt.env, "backend", "sim") == "sim"

    def test_realtime_mode_builds_realtime_environment(self):
        rt = KnactorRuntime(mode="realtime")
        assert rt.mode == "realtime"
        assert rt.env.backend == "realtime"
        # Real scheduling is the latency: the default network adds none.
        assert rt.network.default_latency.delay == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution mode"):
            KnactorRuntime(mode="warp")
        with pytest.raises(ConfigurationError, match="unknown execution mode"):
            create_environment("warp")

    def test_mode_environment_mismatch_rejected(self, env):
        with pytest.raises(ConfigurationError, match="does not match"):
            KnactorRuntime(env, mode="realtime")

    def test_matching_mode_and_environment_accepted(self, env):
        assert KnactorRuntime(env, mode="sim").env is env

    def test_create_environment_kwargs_reach_the_backend(self):
        env = create_environment("realtime", factor=0.25)
        assert env.factor == 0.25
        env.close()


class TestPolicies:
    def test_time_window_condition(self):
        condition = TimeWindowCondition(
            principal="house", store="lamp", start_hour=22, end_hour=6,
            seconds_per_hour=1.0,
        )
        assert condition("house", "lamp", "patch", now=12.0)  # daytime: allowed
        assert not condition("house", "lamp", "patch", now=23.0)  # sleep
        assert not condition("house", "lamp", "patch", now=2.0)  # wraps midnight
        assert condition("other", "lamp", "patch", now=23.0)  # other principal

    def test_time_window_validation(self):
        with pytest.raises(ConfigurationError):
            TimeWindowCondition("p", "s", start_hour=25, end_hour=3)
        with pytest.raises(ConfigurationError):
            TimeWindowCondition("p", "s", 0, 1, seconds_per_hour=0)

    def test_deny_during_installed_on_de(self, env, runtime, call):
        runtime.add_knactor(Knactor("svc", [StoreBinding("default", "object", SCHEMA)]))
        de = runtime.exchange("object")
        de.grant("house", "knactor-svc", verbs={"get"})
        # Window covering (almost) the whole day: every access denied.
        deny_during(de, "house", "knactor-svc", start_hour=0, end_hour=23.99,
                    seconds_per_hour=1e9)
        handle = de.handle("knactor-svc", principal="house")
        with pytest.raises(AccessDeniedError):
            call(handle.get("x"))

    def test_threshold_route_expression(self):
        expr = threshold_route("C.order.cost", 1000, "air", "ground")
        from repro.util.safeexpr import SafeExpression

        e = SafeExpression(expr)
        assert e.evaluate({"C": {"order": {"cost": 2000}}}) == "air"
        assert e.evaluate({"C": {"order": {"cost": 10}}}) == "ground"


class TestPipeline:
    def test_builder_is_immutable(self):
        base = Pipeline().filter("x > 1")
        extended = base.rename("x", "y")
        assert len(base) == 1 and len(extended) == 2

    def test_build_validates(self):
        with pytest.raises(StoreError):
            Pipeline().agg(x="median(v)").build()

    def test_full_surface(self):
        ops = (
            Pipeline()
            .filter("a > 0")
            .rename("a", "b")
            .cut("b")
            .drop("c")
            .derive("d", "b * 2")
            .sort("d", reverse=True)
            .head(5)
            .tail(2)
            .distinct("b")
            .agg(by=["b"], total="sum(d)")
            .build()
        )
        assert [o["op"] for o in ops] == [
            "filter", "rename", "cut", "drop", "derive",
            "sort", "head", "tail", "distinct", "agg",
        ]
