"""Unit tests for the reconciler work loop."""

import pytest

from repro.core import Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.errors import ConfigurationError
from repro.exchange import LogDE, ObjectDE
from repro.store import ApiServer, LogLake

TASK_SCHEMA = """\
schema: App/v1/Tasks/Task
title: string
done: boolean
doneAt: number
"""


class MarkDone(Reconciler):
    """Marks every task done, recording what it saw."""

    def __init__(self):
        super().__init__("mark-done")
        self.seen = []

    def reconcile(self, ctx, key, obj):
        self.seen.append((ctx.env.now, key, None if obj is None else dict(obj)))
        if obj is not None and not obj.get("done"):
            yield ctx.store.patch(key, {"done": True, "doneAt": ctx.env.now})


@pytest.fixture
def runtime(env, zero_net):
    rt = KnactorRuntime(env, network=zero_net)
    backend = ApiServer(env, zero_net, watch_overhead=0.0)
    rt.add_exchange("object", ObjectDE(env, backend))
    return rt


def build(runtime, reconciler):
    knactor = Knactor(
        name="tasks",
        stores=[StoreBinding("default", "object", TASK_SCHEMA)],
        reconciler=reconciler,
    )
    runtime.add_knactor(knactor)
    runtime.start()
    return knactor


class TestReconcileLoop:
    def test_reacts_to_created_object(self, env, runtime, call):
        rec = MarkDone()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t1", {"title": "write tests", "done": False}))
        env.run()
        assert call(handle.get("t1"))["data"]["done"] is True
        assert rec.reconcile_count >= 1

    def test_own_patch_triggers_requeue_but_quiesces(self, env, runtime, call):
        rec = MarkDone()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t1", {"done": False}))
        env.run()
        # Second pass sees done=True and performs no write: quiescent.
        final_count = rec.reconcile_count
        env.run(until=env.now + 10.0)
        assert rec.reconcile_count == final_count

    def test_coalesces_rapid_updates(self, env, runtime, call):
        rec = MarkDone()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")

        def burst(env):
            yield handle.create("t1", {"done": True, "title": "a"})
            yield handle.update("t1", {"done": True, "title": "b"})
            yield handle.update("t1", {"done": True, "title": "c"})

        env.run(until=env.process(burst(env)))
        env.run()
        # Level-triggered: strictly fewer reconciles than events is fine;
        # the final state must have been observed.
        assert rec.seen[-1][2]["title"] == "c"

    def test_deleted_object_reconciled_with_none(self, env, runtime, call):
        rec = MarkDone()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t1", {"done": True}))
        env.run()
        call(handle.delete("t1"))
        env.run()
        assert rec.seen[-1][2] is None

    def test_service_time_delays_processing(self, env, runtime, call):
        class Slow(MarkDone):
            service_time = 0.5

        rec = Slow()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t1", {"done": True}))
        env.run()
        assert rec.seen[0][0] >= 0.5

    def test_start_requires_attach(self):
        with pytest.raises(ConfigurationError):
            Reconciler("loose").start()


class TestConflictRetry:
    def test_conflicting_write_retried(self, env, runtime, call):
        class CASWriter(Reconciler):
            """Writes with a resourceVersion that races a saboteur."""

            def __init__(self):
                super().__init__("cas")
                self.conflicts_seen = 0

            def reconcile(self, ctx, key, obj):
                if obj is None or obj.get("done"):
                    return
                view = yield ctx.store.get(key)
                # A saboteur bumps the object between read and write on
                # the first attempt (see below).
                yield ctx.store.patch(
                    key, {"done": True}, resource_version=view["revision"]
                )

        rec = CASWriter()
        build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t1", {"done": False, "title": "x"}))
        # Sabotage: immediately bump the object so the first CAS conflicts.
        call(handle.patch("t1", {"title": "bumped"}))
        env.run()
        assert call(handle.get("t1"))["data"]["done"] is True


class TestLogSubscriptions:
    def test_log_batches_delivered(self, env, zero_net, call):
        rt = KnactorRuntime(env, network=zero_net)
        rt.add_exchange("object", ObjectDE(env, ApiServer(env, zero_net)))
        rt.add_exchange("log", LogDE(env, LogLake(env, zero_net, watch_overhead=0.0)))

        class LogWatcher(Reconciler):
            log_subscriptions = ("log",)

            def __init__(self):
                super().__init__("log-watcher")
                self.batches = []

            def on_log_batch(self, ctx, local_name, records):
                self.batches.append((local_name, records))

        rec = LogWatcher()
        knactor = Knactor(
            name="sensor",
            stores=[
                StoreBinding("default", "object", "schema: App/v1/Sensor/Cfg\nmode: string\n"),
                StoreBinding("log", "log", "schema: App/v1/Sensor/Readings\nvalue: number\n"),
            ],
            reconciler=rec,
        )
        rt.add_knactor(knactor)
        rt.start()
        log_handle = rt.handle_of("sensor", "log")
        call(log_handle.load([{"value": 1.0}, {"value": 2.0}]))
        env.run()
        assert len(rec.batches) == 1
        assert [r["value"] for r in rec.batches[0][1]] == [1.0, 2.0]


class SlowMarkDone(MarkDone):
    """A deliberately slow consumer: keys pile up in the dirty queue."""

    service_time = 0.5


class TestBoundedWorkQueue:
    """max_queue / queue_overflow: the dirty-key queue under overload."""

    def overload(self, env, runtime, call, reconciler, keys=8):
        knactor = build(runtime, reconciler)
        handle = runtime.handle_of("tasks")
        for index in range(keys):
            call(handle.create(f"t{index}", {"title": f"#{index}", "done": False}))
        env.run()
        return knactor

    def test_shed_oldest_bounds_queue_and_dead_letters(self, env, runtime,
                                                       call):
        rec = SlowMarkDone()
        rec.max_queue = 2
        self.overload(env, runtime, call, rec)
        assert rec.queue_peak <= 2
        assert rec.shed_count > 0
        assert len(rec.dead_letters) == rec.shed_count
        entry = rec.dead_letters.letters[0]
        assert "shed" in str(entry.error)
        # Level triggering makes the shed recoverable: the keys still
        # reconciled never exceed the bound's working set.
        seen_keys = {key for _, key, _ in rec.seen}
        assert len(seen_keys) < 8

    def test_shed_newest_drops_latest_arrivals(self, env, runtime, call):
        rec = SlowMarkDone()
        rec.max_queue = 2
        rec.queue_overflow = "shed_newest"
        self.overload(env, runtime, call, rec)
        assert rec.shed_count > 0
        seen_keys = {key for _, key, _ in rec.seen}
        assert "t0" in seen_keys  # earliest arrivals kept their slot

    def test_dirty_key_update_never_sheds(self, env, runtime, call):
        """A key already queued coalesces in place -- the bound only
        bites on NEW keys, so level-triggered dedup stays lossless."""
        rec = SlowMarkDone()
        rec.max_queue = 1
        knactor = build(runtime, rec)
        handle = runtime.handle_of("tasks")
        call(handle.create("t0", {"title": "a", "done": False}))
        for _ in range(5):
            call(handle.patch("t0", {"title": "a+"}))
        env.run()
        assert rec.shed_count == 0

    def test_unbounded_by_default(self, env, runtime, call):
        rec = SlowMarkDone()
        self.overload(env, runtime, call, rec, keys=12)
        assert rec.max_queue is None
        assert rec.queue_peak > 2
        assert rec.shed_count == 0

    def test_constructor_validates_policy(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="overflow"):
            MarkDoneWithBadPolicy = type(
                "Bad", (MarkDone,), {"queue_overflow": "spill"})
            MarkDoneWithBadPolicy()
