"""The real TCP front door: HttpListener + the retail REST gateway.

These tests bind real sockets on 127.0.0.1 (ephemeral ports), issue
requests from a client thread with ``http.client``, and drive the
kernel in the main thread until the client reports completion.
"""

import http.client
import json
import threading
from urllib.parse import quote

import pytest

from repro.apps.retail.rest_gateway import serve_retail
from repro.apps.retail.workload import OrderWorkload
from repro.errors import ConfigurationError
from repro.realtime import RealtimeEnvironment
from repro.rest import RestServer
from repro.simnet import Environment, Network


def _drive(env, listener, done, settle=0.05):
    """Run the kernel until the client thread flags completion."""

    def monitor():
        while not done.is_set():
            yield env.timeout(settle)
        listener.stop()

    env.process(monitor())
    env.run()


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, payload,
                     {"Content-Type": "application/json"} if payload else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpListener:
    def test_serve_refused_on_sim_backend(self):
        env = Environment()
        server = RestServer(env, Network(env), "api")
        with pytest.raises(ConfigurationError, match="realtime backend"):
            server.serve()

    def test_round_trip_and_404(self):
        env = RealtimeEnvironment(factor=0.0)
        server = RestServer(env, Network(env), "api")
        server.route("GET", "/ping", lambda request: {"pong": True})
        server.route(
            "POST", "/echo", lambda request: {"got": request.body}
        )
        listener = server.serve(port=0)
        assert listener.port != 0

        results = {}
        done = threading.Event()

        def client():
            try:
                results["ping"] = _request(listener.port, "GET", "/ping")
                results["echo"] = _request(
                    listener.port, "POST", "/echo", body={"n": 3}
                )
                results["missing"] = _request(listener.port, "GET", "/nope")
            finally:
                done.set()

        thread = threading.Thread(target=client)
        thread.start()
        _drive(env, listener, done)
        thread.join()
        env.close()

        assert results["ping"] == (200, {"pong": True})
        assert results["echo"] == (200, {"got": {"n": 3}})
        assert results["missing"][0] == 404
        assert server.requests_served == 2  # 404s are not served requests

    def test_keep_alive_reuses_one_connection(self):
        env = RealtimeEnvironment(factor=0.0)
        server = RestServer(env, Network(env), "api")
        server.route("GET", "/ping", lambda request: {"pong": True})
        listener = server.serve(port=0)

        statuses = []
        done = threading.Event()

        def client():
            conn = http.client.HTTPConnection(
                "127.0.0.1", listener.port, timeout=10
            )
            try:
                for _ in range(3):
                    conn.request("GET", "/ping")
                    response = conn.getresponse()
                    response.read()
                    statuses.append(response.status)
            finally:
                conn.close()
                done.set()

        thread = threading.Thread(target=client)
        thread.start()
        _drive(env, listener, done)
        thread.join()
        env.close()

        assert statuses == [200, 200, 200]
        assert listener.connections_accepted == 1


class TestRetailGateway:
    def test_order_lifecycle_over_tcp(self):
        app, gateway, listener = serve_retail(port=0, factor=0.02)
        key, data = OrderWorkload(seed=9).next_order()
        results = {}
        done = threading.Event()

        def client():
            try:
                results["health"] = _request(
                    listener.port, "GET", "/healthz"
                )
                results["created"] = _request(
                    listener.port, "POST", "/orders",
                    body={**data, "key": key, "email": "shopper@example.com"},
                )
                # Poll until the integrator fulfils the order for real.
                for _ in range(100):
                    status, body = _request(
                        listener.port, "GET",
                        f"/orders/{quote(key, safe='')}",
                    )
                    if body.get("order", {}).get("status") == "fulfilled":
                        break
                results["final"] = (status, body)
                results["missing"] = _request(
                    listener.port, "GET", "/orders/nope"
                )
                results["metrics"] = _request(listener.port, "GET", "/metrics")
            finally:
                done.set()

        thread = threading.Thread(target=client)
        thread.start()
        _drive(app.env, listener, done)
        thread.join()
        app.env.close()

        assert results["health"][1]["backend"] == "realtime"
        status, created = results["created"]
        assert status == 201
        assert created["key"] == key
        assert created["order"]["status"] == "placed"
        assert results["final"][1]["order"]["status"] == "fulfilled"
        assert results["missing"][0] == 404
        metrics = results["metrics"][1]
        assert metrics["orders_placed"] == 1
        assert metrics["orders_fulfilled"] == 1

    def test_generated_key_order_fulfils(self):
        # No "key" in the body: the gateway must mint an order/* key --
        # the DXG matches objects by the key's kind, so a bare "order-1"
        # style key would never be picked up by the integrator.
        app, gateway, listener = serve_retail(port=0, factor=0.0)
        _, data = OrderWorkload(seed=9).next_order()
        results = {}
        done = threading.Event()

        def client():
            try:
                status, created = _request(
                    listener.port, "POST", "/orders", body=dict(data)
                )
                results["created"] = (status, created)
                key = created["key"]
                for _ in range(200):
                    status, body = _request(
                        listener.port, "GET",
                        f"/orders/{quote(key, safe='')}",
                    )
                    if body.get("order", {}).get("status") == "fulfilled":
                        break
                results["final"] = (status, body)
                results["namespaced"] = _request(
                    listener.port, "POST", "/orders",
                    body={**data, "key": "bare-key"},
                )
            finally:
                done.set()

        thread = threading.Thread(target=client)
        thread.start()
        _drive(app.env, listener, done)
        thread.join()
        app.env.close()

        status, created = results["created"]
        assert status == 201
        assert created["key"].startswith("order/")
        assert results["final"][1]["order"]["status"] == "fulfilled"
        assert results["namespaced"][1]["key"] == "order/bare-key"

    def test_bad_request_rejected(self):
        app, gateway, listener = serve_retail(port=0, factor=0.0)
        results = {}
        done = threading.Event()

        def client():
            try:
                results["empty"] = _request(
                    listener.port, "POST", "/orders", body={}
                )
                results["invalid"] = _request(
                    listener.port, "POST", "/orders", body={"items": "nope"}
                )
                results["wrong-kind"] = _request(
                    listener.port, "POST", "/orders",
                    body={"items": {}, "key": "shipment/s1"},
                )
            finally:
                done.set()

        thread = threading.Thread(target=client)
        thread.start()
        _drive(app.env, listener, done)
        thread.join()
        app.env.close()

        assert results["empty"][0] == 400
        assert results["invalid"][0] == 400
        assert results["wrong-kind"][0] == 400
