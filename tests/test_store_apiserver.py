"""Unit tests for the apiserver-like Object store."""

import copy

import pytest

from repro.errors import (
    AlreadyExistsError,
    ConflictError,
    NotFoundError,
    StoreError,
)
from repro.simnet.network import Network
from repro.store import (
    ADDED,
    DELETED,
    MODIFIED,
    ApiServer,
    ApiServerClient,
    FrozenViewError,
)
from repro.store.apiserver import merge_patch


@pytest.fixture
def server(env, zero_net):
    return ApiServer(env, zero_net, watch_overhead=0.0)


@pytest.fixture
def client(server):
    return ApiServerClient(server, location="tester")


class TestCRUD:
    def test_create_and_get(self, client, call):
        created = call(client.create("orders/o1", {"cost": 10}))
        assert created["data"] == {"cost": 10}
        assert created["revision"] == 1
        fetched = call(client.get("orders/o1"))
        assert fetched["data"] == {"cost": 10}

    def test_create_duplicate_rejected(self, client, call):
        call(client.create("k", {}))
        with pytest.raises(AlreadyExistsError):
            call(client.create("k", {}))

    def test_get_missing_raises(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.get("nope"))

    def test_update_replaces_data(self, client, call):
        call(client.create("k", {"a": 1, "b": 2}))
        updated = call(client.update("k", {"a": 9}))
        assert updated["data"] == {"a": 9}
        assert updated["revision"] == 2

    def test_update_missing_raises(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.update("nope", {}))

    def test_delete(self, client, call):
        call(client.create("k", {}))
        call(client.delete("k"))
        with pytest.raises(NotFoundError):
            call(client.get("k"))

    def test_delete_missing_raises(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.delete("nope"))

    def test_list_with_prefix(self, client, call):
        call(client.create("orders/o1", {}))
        call(client.create("orders/o2", {}))
        call(client.create("ships/s1", {}))
        orders = call(client.list("orders/"))
        assert [o["key"] for o in orders] == ["orders/o1", "orders/o2"]

    def test_unknown_op_surfaces_store_error(self, client, call):
        with pytest.raises(StoreError):
            call(client.request("frobnicate"))


class TestOptimisticConcurrency:
    def test_stale_update_conflicts(self, client, call):
        created = call(client.create("k", {"v": 1}))
        call(client.update("k", {"v": 2}))
        with pytest.raises(ConflictError):
            call(client.update("k", {"v": 3}, resource_version=created["revision"]))

    def test_fresh_update_succeeds(self, client, call):
        created = call(client.create("k", {"v": 1}))
        updated = call(
            client.update("k", {"v": 2}, resource_version=created["revision"])
        )
        assert updated["data"] == {"v": 2}

    def test_revisions_strictly_increase(self, client, call):
        revisions = [call(client.create(f"k{i}", {}))["revision"] for i in range(3)]
        revisions.append(call(client.update("k0", {"x": 1}))["revision"])
        assert revisions == sorted(revisions)
        assert len(set(revisions)) == len(revisions)

    def test_patch_with_stale_version_conflicts(self, client, call):
        created = call(client.create("k", {"v": 1}))
        call(client.patch("k", {"v": 2}))
        with pytest.raises(ConflictError):
            call(client.patch("k", {"v": 3}, resource_version=created["revision"]))


class TestPatch:
    def test_deep_merge(self, client, call):
        call(client.create("k", {"a": {"x": 1, "y": 2}, "b": 1}))
        patched = call(client.patch("k", {"a": {"y": 9}}))
        assert patched["data"] == {"a": {"x": 1, "y": 9}, "b": 1}

    def test_none_deletes_key(self, client, call):
        call(client.create("k", {"a": 1, "b": 2}))
        patched = call(client.patch("k", {"a": None}))
        assert patched["data"] == {"b": 2}

    def test_merge_patch_pure_function(self):
        original = {"a": {"x": 1}}
        result = merge_patch(original, {"a": {"y": 2}})
        assert result == {"a": {"x": 1, "y": 2}}
        assert original == {"a": {"x": 1}}  # input untouched


class TestIsolation:
    def test_returned_snapshot_is_immutable(self, client, call):
        # Zero-copy reads hand out frozen views: mutation raises instead
        # of silently diverging from (or corrupting) store state.
        call(client.create("k", {"nested": {"v": 1}}))
        view = call(client.get("k"))
        with pytest.raises(FrozenViewError):
            view["data"]["nested"]["v"] = 999
        assert call(client.get("k"))["data"]["nested"]["v"] == 1

    def test_thawed_snapshot_is_a_private_copy(self, client, call):
        call(client.create("k", {"nested": {"v": 1}}))
        mine = call(client.get("k"))["data"].thaw()
        mine["nested"]["v"] = 999
        assert call(client.get("k"))["data"]["nested"]["v"] == 1

    def test_deepcopy_of_view_is_mutable(self, client, call):
        # Legacy copy-then-edit code keeps working: deepcopy of a frozen
        # view is a plain mutable structure.
        call(client.create("k", {"nested": {"v": 1}}))
        mine = copy.deepcopy(call(client.get("k"))["data"])
        mine["nested"]["v"] = 999
        assert call(client.get("k"))["data"]["nested"]["v"] == 1

    def test_classic_mode_still_copies(self, env, call):
        network = Network(env)
        server = ApiServer(env, network, zero_copy=False)
        client = ApiServerClient(server, server.location)
        call(client.create("k", {"nested": {"v": 1}}))
        view = call(client.get("k"))
        view["data"]["nested"]["v"] = 999
        assert call(client.get("k"))["data"]["nested"]["v"] == 1

    def test_created_data_is_copied_in(self, client, call):
        payload = {"v": 1}
        call(client.create("k", payload))
        payload["v"] = 999
        assert call(client.get("k"))["data"]["v"] == 1


class TestWatch:
    def test_watch_sees_all_event_types(self, env, client, call):
        events = []
        client.watch(events.append)
        call(client.create("k", {"v": 1}))
        call(client.update("k", {"v": 2}))
        call(client.delete("k"))
        env.run()
        assert [e.type for e in events] == [ADDED, MODIFIED, DELETED]

    def test_watch_prefix_filters(self, env, client, call):
        events = []
        client.watch(events.append, key_prefix="orders/")
        call(client.create("orders/o1", {}))
        call(client.create("ships/s1", {}))
        env.run()
        assert [e.key for e in events] == ["orders/o1"]

    def test_watch_events_carry_object_and_revision(self, env, client, call):
        events = []
        client.watch(events.append)
        created = call(client.create("k", {"v": 1}))
        env.run()
        assert events[0].object == {"v": 1}
        assert events[0].revision == created["revision"]

    def test_each_commit_observed_exactly_once_in_order(self, env, client, call):
        events = []
        client.watch(events.append)
        for i in range(10):
            call(client.create(f"k{i}", {"i": i}))
        env.run()
        assert [e.object["i"] for e in events] == list(range(10))

    def test_cancelled_watch_stops_delivery(self, env, client, call):
        events = []
        watch = client.watch(events.append)
        call(client.create("k1", {}))
        env.run()
        watch.cancel()
        call(client.create("k2", {}))
        env.run()
        assert [e.key for e in events] == ["k1"]

    def test_replay_from_revision(self, env, client, call):
        call(client.create("k1", {"i": 1}))
        second = call(client.create("k2", {"i": 2}))
        env.run()
        events = []
        client.watch(events.append, from_revision=second["revision"] - 1)
        env.run()
        assert [e.key for e in events] == ["k2"]

    def test_multiple_watchers_all_notified(self, env, client, call):
        a, b = [], []
        client.watch(a.append)
        client.watch(b.append)
        call(client.create("k", {}))
        env.run()
        assert len(a) == 1 and len(b) == 1


class TestLatency:
    def test_writes_cost_more_than_reads(self, env, zero_net):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, location="tester")
        start = env.now
        env.run(until=client.create("k", {"v": 1}))
        write_cost = env.now - start
        start = env.now
        env.run(until=client.get("k"))
        read_cost = env.now - start
        assert write_cost > read_cost > 0

    def test_network_hops_add_latency(self, env, net):
        server = ApiServer(env, net, watch_overhead=0.0)
        remote = ApiServerClient(server, location="far-away")
        local = ApiServerClient(server, location=server.location)
        start = env.now
        env.run(until=remote.create("k1", {"v": 1}))
        remote_cost = env.now - start
        start = env.now
        env.run(until=local.create("k2", {"v": 1}))
        local_cost = env.now - start
        assert remote_cost == pytest.approx(local_cost + 2 * 0.00025)

    def test_payload_size_increases_cost(self, env, zero_net):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, location="t")
        start = env.now
        env.run(until=client.create("small", {"v": "x"}))
        small = env.now - start
        start = env.now
        env.run(until=client.create("big", {"v": "x" * 100000}))
        big = env.now - start
        assert big > small

    def test_op_counts_recorded(self, env, zero_net):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, location="t")
        env.run(until=client.create("k", {}))
        env.run(until=client.get("k"))
        env.run(until=client.get("k"))
        assert server.op_counts == {"create": 1, "get": 2}
