"""Tests for the legacy-RPC porting adapter (paper §5 proxies)."""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, StoreBinding
from repro.core.adapter import RpcAdapterReconciler
from repro.errors import ConfigurationError, RPCStatusError
from repro.exchange import ObjectDE
from repro.rpc import RPCChannel, RPCServer, parse_idl
from repro.store import ApiServer

LEGACY_PROTO = """\
syntax = "proto3";
package legacy.shipping;

message Item {
  string name = 1;
}

message ShipOrderRequest {
  repeated Item items = 1;
  string address = 2;
}

message ShipOrderResponse {
  string tracking_id = 1;
  double shipping_cost = 2;
}

service ShippingService {
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
}
"""

SHIPMENT_SCHEMA = """\
schema: App/v1/LegacyShipping/Shipment
items: array # +kr: external
addr: string # +kr: external
id: string
cost: number
"""


def build_legacy_service(env, net, fail_first=0):
    """An unmodified legacy RPC shipping service."""
    server = RPCServer(env, net, "legacy-shipping")
    idl = parse_idl(LEGACY_PROTO)
    state = {"count": 0, "failures_left": fail_first}

    def handler(request):
        if state["failures_left"] > 0:
            state["failures_left"] -= 1
            raise RPCStatusError("UNAVAILABLE", "warming up")
        yield env.timeout(0.05)
        state["count"] += 1
        return {"tracking_id": f"legacy-{state['count']}", "shipping_cost": 9.5}

    server.register("ShippingService", "ShipOrder", handler, idl=idl)
    return server, state


def build_adapted_runtime(env, net, fail_first=0):
    runtime = KnactorRuntime(env, network=net)
    de = ObjectDE(env, ApiServer(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", de)
    server, state = build_legacy_service(env, net, fail_first=fail_first)
    adapter = RpcAdapterReconciler(
        channel=RPCChannel(env, server, "legacy-adapter"),
        service="ShippingService",
        method="ShipOrder",
        request_map={"items": "items", "address": "addr"},
        response_map={"id": "tracking_id", "cost": "shipping_cost"},
        guard_fields=("addr", "items"),
        done_field="id",
    )
    runtime.add_knactor(
        Knactor("legacy-shipping",
                [StoreBinding("default", "object", SHIPMENT_SCHEMA)],
                reconciler=adapter)
    )
    runtime.start()
    return runtime, de, adapter, state


class TestAdapter:
    def test_store_write_drives_legacy_call(self, env, zero_net, call):
        runtime, _de, adapter, state = build_adapted_runtime(env, zero_net)
        handle = runtime.handle_of("legacy-shipping")
        call(handle.create("s1", {"items": [{"name": "mug"}], "addr": "12 Elm"}))
        env.run()
        view = call(handle.get("s1"))["data"]
        assert view["id"] == "legacy-1"
        assert view["cost"] == 9.5
        assert adapter.calls_made == 1

    def test_already_processed_objects_skipped(self, env, zero_net, call):
        runtime, _de, adapter, state = build_adapted_runtime(env, zero_net)
        handle = runtime.handle_of("legacy-shipping")
        call(handle.create("s1", {"items": [], "addr": "x", "id": "pre-set"}))
        env.run()
        assert adapter.calls_made == 0

    def test_incomplete_objects_wait_for_fields(self, env, zero_net, call):
        runtime, _de, adapter, state = build_adapted_runtime(env, zero_net)
        handle = runtime.handle_of("legacy-shipping")
        call(handle.create("s1", {"items": [{"name": "pen"}]}))  # no addr
        env.run()
        assert adapter.calls_made == 0
        call(handle.patch("s1", {"addr": "late address"}))
        env.run()
        assert adapter.calls_made == 1

    def test_transient_failures_retried(self, env, zero_net, call):
        runtime, _de, adapter, state = build_adapted_runtime(
            env, zero_net, fail_first=2
        )
        handle = runtime.handle_of("legacy-shipping")
        call(handle.create("s1", {"items": [], "addr": "x"}))
        env.run()
        view = call(handle.get("s1"))["data"]
        assert view["id"] == "legacy-1"  # eventually succeeded
        assert len(adapter.failures) == 2

    def test_permanent_failure_poisons_without_wedging(self, env, zero_net, call):
        runtime, _de, adapter, state = build_adapted_runtime(
            env, zero_net, fail_first=10**6
        )
        handle = runtime.handle_of("legacy-shipping")
        call(handle.create("bad", {"items": [], "addr": "x"}))
        env.run()
        assert len(adapter.failures) == adapter.max_call_attempts
        # A later object still gets processed once the service recovers.
        state["failures_left"] = 0
        call(handle.create("good", {"items": [], "addr": "y"}))
        env.run()
        assert call(handle.get("good"))["data"]["id"] == "legacy-1"

    def test_configuration_validation(self, env, zero_net):
        server, _state = build_legacy_service(env, zero_net)
        channel = RPCChannel(env, server, "a")
        with pytest.raises(ConfigurationError):
            RpcAdapterReconciler(channel, "S", "M", {}, {"a": "b"}, done_field="x")
        with pytest.raises(ConfigurationError):
            RpcAdapterReconciler(channel, "S", "M", {"a": "b"}, {"c": "d"})


class TestAdapterComposesWithCast:
    def test_legacy_service_composed_via_dxg(self, env, zero_net, call):
        """End-to-end: a Cast composes Checkout with the ADAPTED legacy
        service -- the legacy code never changed."""
        runtime, de, adapter, _state = build_adapted_runtime(env, zero_net)
        runtime.add_knactor(
            Knactor("checkout", [StoreBinding("default", "object", """\
schema: App/v1/Checkout/Order
items: object
address: string
trackingID: string # +kr: external
""")])
        )
        de.grant("bridge-cast", "knactor-checkout", role="integrator")
        de.grant("bridge-cast", "knactor-legacy-shipping", role="integrator")
        cast = Cast("bridge-cast", """\
Input:
  C: App/v1/Checkout/knactor-checkout
  L: App/v1/LegacyShipping/knactor-legacy-shipping
DXG:
  C.order:
    trackingID: L.id
  L:
    items: '[{"name": item.name} for item in C.order.items]'
    addr: C.order.address
""")
        runtime.add_integrator(cast)
        cast.start()
        checkout = runtime.handle_of("checkout")
        call(checkout.create(
            "order/o1",
            {"items": {"m": {"name": "mug"}}, "address": "12 Elm"},
        ))
        env.run()
        order = call(checkout.get("order/o1"))["data"]
        assert order["trackingID"] == "legacy-1"
