"""Tests for the social network scattering reproduction."""

import pytest

from repro.apps.socialnetwork import (
    SERVICE_METHODS,
    SocialNetworkRpcApp,
    build_idls,
)
from repro.apps.socialnetwork.services import (
    COMPOSE_POST_CALL_GRAPH,
    total_methods,
    total_services,
)


class TestInventory:
    def test_paper_counts(self):
        """§2: '36 [methods] across 14 services'."""
        assert total_services() == 14
        assert total_methods() == 36

    def test_idls_parse_and_cover_every_method(self):
        idls = build_idls()
        for service, methods in SERVICE_METHODS.items():
            parsed = idls[service].service(service)
            assert sorted(m.name for m in parsed.methods) == sorted(methods)

    def test_call_graph_targets_exist(self):
        for source, calls in COMPOSE_POST_CALL_GRAPH.items():
            assert source in SERVICE_METHODS
            for service, method in calls:
                assert method in SERVICE_METHODS[service], (service, method)


class TestApp:
    @pytest.fixture(scope="class")
    def app(self):
        return SocialNetworkRpcApp.build()

    def test_handler_counts_measured_from_live_servers(self, app):
        assert app.service_count() == 14
        assert app.handler_count() == 36

    def test_compose_post_fans_out(self, app):
        touched = app.services_touched_by_compose()
        assert len(touched) >= 10  # one user action, most of the app
        assert "SocialGraphService" in touched  # transitive fan-out

    def test_compose_post_returns(self, app):
        response = app.env.run(until=app.compose_post(req_id="r2"))
        assert response["req_id"] == "r2"
