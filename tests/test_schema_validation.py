"""Unit tests for state validation and schema diff/registry."""

import pytest

from repro.errors import NotFoundError, SchemaError
from repro.schema import Schema, SchemaRegistry, diff_schemas, validate_state


def make_schema(text="schema: App/v1/Svc/Res\nname: string\ncount: number\n"):
    return Schema.from_text(text)


class TestValidation:
    def test_valid_state(self):
        result = validate_state({"name": "x", "count": 3}, make_schema())
        assert result.ok

    def test_type_violation_reported(self):
        result = validate_state({"name": 5}, make_schema())
        assert not result.ok
        assert "name" in result.errors[0]

    def test_all_violations_reported(self):
        result = validate_state({"name": 5, "count": "x"}, make_schema())
        assert len(result.errors) == 2

    def test_unknown_field_rejected_by_default(self):
        result = validate_state({"bogus": 1}, make_schema())
        assert not result.ok

    def test_unknown_field_allowed_when_requested(self):
        result = validate_state({"bogus": 1}, make_schema(), allow_unknown=True)
        assert result.ok

    def test_required_field(self):
        schema = Schema.from_dict(
            {
                "schema": "App/v1/Svc/Res",
                "fields": [{"path": "id", "type": "string", "required": True}],
            }
        )
        assert not validate_state({}, schema).ok
        assert validate_state({}, schema, partial=True).ok
        assert validate_state({"id": "x"}, schema).ok

    def test_open_object_accepts_arbitrary_children(self):
        schema = make_schema("schema: App/v1/Svc/Res\nitems: object\n")
        result = validate_state({"items": {"anything": {"nested": 1}}}, schema)
        assert result.ok

    def test_declared_children_are_closed(self):
        schema = make_schema(
            "schema: App/v1/Svc/Res\nquote:\n  price: number\n"
        )
        assert validate_state({"quote": {"price": 1}}, schema).ok
        assert not validate_state({"quote": {"other": 1}}, schema).ok

    def test_non_dict_state_rejected(self):
        assert not validate_state([1, 2], make_schema()).ok

    def test_raise_if_invalid(self):
        result = validate_state({"name": 5}, make_schema())
        with pytest.raises(SchemaError):
            result.raise_if_invalid()

    def test_nested_type_checked(self):
        schema = make_schema(
            "schema: App/v1/Svc/Res\nquote:\n  price: number\n"
        )
        assert not validate_state({"quote": {"price": "cheap"}}, schema).ok


class TestDiff:
    def test_no_changes(self):
        delta = diff_schemas(make_schema(), make_schema())
        assert delta.empty and delta.is_backward_compatible()
        assert delta.summary() == "no changes"

    def test_addition_is_compatible(self):
        new = make_schema(
            "schema: App/v2/Svc/Res\nname: string\ncount: number\nextra: string\n"
        )
        delta = diff_schemas(make_schema(), new)
        assert delta.added == ["extra"]
        assert delta.is_backward_compatible()

    def test_removal_is_breaking(self):
        new = make_schema("schema: App/v2/Svc/Res\nname: string\n")
        delta = diff_schemas(make_schema(), new)
        assert delta.removed == ["count"]
        assert not delta.is_backward_compatible()

    def test_retype_is_breaking(self):
        new = make_schema("schema: App/v2/Svc/Res\nname: number\ncount: number\n")
        delta = diff_schemas(make_schema(), new)
        assert delta.retyped == [("name", "string", "number")]
        assert not delta.is_backward_compatible()

    def test_reannotation_is_compatible(self):
        new = make_schema(
            "schema: App/v2/Svc/Res\nname: string # +kr: external\ncount: number\n"
        )
        delta = diff_schemas(make_schema(), new)
        assert [p for p, _o, _n in delta.reannotated] == ["name"]
        assert delta.is_backward_compatible()

    def test_unrelated_schemas_rejected(self):
        other = make_schema("schema: Other/v1/Svc2/Res\nname: string\n")
        with pytest.raises(SchemaError):
            diff_schemas(make_schema(), other)


class TestRegistry:
    def test_register_and_get(self):
        registry = SchemaRegistry()
        schema = make_schema()
        registry.register(schema)
        assert registry.get("App/v1/Svc/Res") is schema
        assert "App/v1/Svc/Res" in registry

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            SchemaRegistry().get("App/v1/Nope/Res")

    def test_compatible_update_allowed(self):
        registry = SchemaRegistry()
        registry.register(make_schema())
        wider = make_schema(
            "schema: App/v1/Svc/Res\nname: string\ncount: number\nextra: string\n"
        )
        delta = registry.register(wider)
        assert delta.added == ["extra"]
        assert registry.get("App/v1/Svc/Res") is wider

    def test_breaking_update_blocked(self):
        registry = SchemaRegistry()
        registry.register(make_schema())
        narrower = make_schema("schema: App/v1/Svc/Res\nname: string\n")
        with pytest.raises(SchemaError):
            registry.register(narrower)
        registry.register(narrower, allow_breaking=True)
        assert registry.get("App/v1/Svc/Res") is narrower

    def test_versions_listed(self):
        registry = SchemaRegistry()
        registry.register(make_schema("schema: App/v1/Svc/Res\nname: string\n"))
        registry.register(make_schema("schema: App/v2/Svc/Res\nname: string\n"))
        assert registry.versions("App", "Svc", "Res") == ["v1", "v2"]

    def test_for_service(self):
        registry = SchemaRegistry()
        registry.register(make_schema("schema: App/v1/Svc/A\nname: string\n"))
        registry.register(make_schema("schema: App/v1/Svc/B\nname: string\n"))
        registry.register(make_schema("schema: App/v1/Other/C\nname: string\n"))
        assert len(registry.for_service("App", "Svc")) == 2
        assert len(registry) == 3
