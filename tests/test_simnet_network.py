"""Unit tests for network links and latency models."""

import pytest

from repro.errors import ConfigurationError
from repro.simnet import (
    Environment,
    ExponentialLatency,
    FixedLatency,
    Link,
    LogNormalLatency,
    Network,
    UniformLatency,
)


@pytest.fixture
def env():
    return Environment()


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(0.01)
        assert model.sample() == 0.01
        assert model.mean() == 0.01

    def test_fixed_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.001, 0.002, seed=7)
        samples = [model.sample() for _ in range(200)]
        assert all(0.001 <= s <= 0.002 for s in samples)
        assert model.mean() == pytest.approx(0.0015)

    def test_uniform_invalid_range(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.5, 0.1)

    def test_exponential_floor_respected(self):
        model = ExponentialLatency(mean=0.01, floor=0.005, seed=3)
        assert all(model.sample() >= 0.005 for _ in range(200))
        assert model.mean() == pytest.approx(0.015)

    def test_lognormal_median_roughly_centred(self):
        model = LogNormalLatency(median=0.446, sigma=0.05, seed=11)
        samples = sorted(model.sample() for _ in range(999))
        assert samples[499] == pytest.approx(0.446, rel=0.05)

    def test_lognormal_zero_sigma_is_deterministic(self):
        model = LogNormalLatency(median=0.1, sigma=0.0)
        assert model.sample() == 0.1

    def test_seeded_models_are_reproducible(self):
        a = UniformLatency(0, 1, seed=42)
        b = UniformLatency(0, 1, seed=42)
        assert [a.sample() for _ in range(10)] == [b.sample() for _ in range(10)]


class TestLink:
    def test_send_delivers_after_latency(self, env):
        link = Link(env, FixedLatency(0.25))
        received = []
        link.send(lambda m: received.append((env.now, m)), "hello")
        env.run()
        assert received == [(0.25, "hello")]

    def test_fifo_link_never_reorders(self, env):
        # High-variance latency would reorder without the FIFO guarantee.
        link = Link(env, UniformLatency(0.0, 1.0, seed=5), fifo=True)
        received = []
        for i in range(50):
            link.send(received.append, i)
        env.run()
        assert received == list(range(50))

    def test_transfer_event_carries_value(self, env):
        link = Link(env, FixedLatency(0.1))

        def proc(env):
            value = yield link.transfer("payload")
            return (env.now, value)

        p = env.process(proc(env))
        assert env.run(until=p) == (0.1, "payload")

    def test_delivered_counter(self, env):
        link = Link(env, FixedLatency(0.0))
        link.send(lambda m: None, 1)
        link.send(lambda m: None, 2)
        env.run()
        assert link.delivered == 2


class TestNetwork:
    def test_default_latency_used(self, env):
        net = Network(env, default_latency=FixedLatency(0.01))
        times = []

        def proc(env):
            yield net.transfer("a", "b")
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [0.01]

    def test_override_applies_symmetrically(self, env):
        net = Network(env, default_latency=FixedLatency(0.01))
        net.set_latency("a", "b", FixedLatency(0.5))
        assert net.link("a", "b").latency.mean() == 0.5
        assert net.link("b", "a").latency.mean() == 0.5
        assert net.link("a", "c").latency.mean() == 0.01

    def test_override_after_link_creation_takes_effect(self, env):
        net = Network(env, default_latency=FixedLatency(0.01))
        net.link("a", "b")  # create with default
        net.set_latency("a", "b", FixedLatency(0.9))
        assert net.link("a", "b").latency.mean() == 0.9

    def test_links_are_cached_per_pair(self, env):
        net = Network(env)
        assert net.link("x", "y") is net.link("x", "y")
        assert net.link("x", "y") is not net.link("y", "x")
