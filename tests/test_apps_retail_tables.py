"""Reproduction assertions for Tables 1 and 2 (shape, not absolutes)."""

import pytest

from repro.apps.retail.measure import (
    PAPER_TABLE2,
    run_knactor_setup,
    run_rpc_setup,
)
from repro.apps.retail.tasks import all_tasks, generated_stub_sloc


class TestTable1:
    @pytest.fixture(scope="class")
    def comparisons(self):
        return {c.task: c for c in all_tasks()}

    def test_knactor_is_config_only_everywhere(self, comparisons):
        for comparison in comparisons.values():
            wins = comparison.knactor_wins()
            assert wins["config_only"], comparison.task
            assert wins["api_needs_rebuild"], comparison.task

    def test_knactor_single_location(self, comparisons):
        for comparison in comparisons.values():
            assert comparison.knactor.files == 1

    def test_t1_counts_in_paper_regime(self, comparisons):
        t1 = comparisons["T1"]
        assert t1.api.files == 8  # paper: 8
        assert 90 <= t1.api.sloc <= 130  # paper: 109
        assert t1.knactor.sloc <= 10  # paper: 7

    def test_t2_counts_in_paper_regime(self, comparisons):
        t2 = comparisons["T2"]
        assert t2.api.files == 2  # paper: 2
        assert 10 <= t2.api.sloc <= 20  # paper: 14
        assert t2.knactor.sloc == 1  # paper: 1

    def test_t3_counts_in_paper_regime(self, comparisons):
        t3 = comparisons["T3"]
        assert t3.api.files == 4  # paper: 4
        assert 70 <= t3.api.sloc <= 110  # paper: 93
        assert t3.knactor.sloc <= 10  # paper: 7

    def test_sloc_reduction_factor(self, comparisons):
        t1 = comparisons["T1"]
        assert t1.api.sloc - t1.knactor.sloc >= 90  # paper: "by 102 in T1"

    def test_api_approach_carries_generated_stubs(self):
        assert generated_stub_sloc() > 50

    def test_artifact_index_lists_real_paths(self, comparisons):
        index = comparisons["T1"].api.artifact_index()
        paths = [p for p, _lang, _sloc in index]
        assert "protos/shipping.proto" in paths
        assert all(sloc > 0 for _p, _l, sloc in index)


class TestTable2:
    """Slow-ish: runs the full simulation for each setup once."""

    @pytest.fixture(scope="class")
    def rows(self):
        rows = {"RPC": run_rpc_setup(orders=8)}
        for setup in ("K-apiserver", "K-redis", "K-redis-udf"):
            rows[setup] = run_knactor_setup(setup, orders=8)
        return {name: bd.row() for name, bd in rows.items()}

    def test_all_requests_measured(self, rows):
        for name, row in rows.items():
            assert row["Total"] is not None, name

    def test_shipment_processing_dominates_everywhere(self, rows):
        for name, row in rows.items():
            assert row["S"] > 0.9 * row["Total"], name

    def test_s_stage_near_446ms(self, rows):
        for name, row in rows.items():
            assert 430 <= row["S"] <= 470, name

    def test_apiserver_propagation_much_slower_than_redis(self, rows):
        assert rows["K-apiserver"]["Prop."] > 4 * rows["K-redis"]["Prop."]

    def test_rpc_has_lowest_propagation(self, rows):
        for name in ("K-apiserver", "K-redis"):
            assert rows["RPC"]["Prop."] < rows[name]["Prop."], name

    def test_pushdown_cuts_integrator_to_shipping_stage(self, rows):
        assert rows["K-redis-udf"]["I-S"] < rows["K-redis"]["I-S"] / 2

    def test_pushdown_moves_compute_into_store(self, rows):
        # I grows (execution happens in-store) while I-S collapses.
        assert rows["K-redis-udf"]["I"] > rows["K-redis"]["I"]

    def test_redis_prop_within_factor_two_of_paper(self, rows):
        paper = PAPER_TABLE2["K-redis"]["Prop."]
        assert paper / 2 <= rows["K-redis"]["Prop."] <= paper * 2

    def test_apiserver_prop_within_factor_two_of_paper(self, rows):
        paper = PAPER_TABLE2["K-apiserver"]["Prop."]
        assert paper / 2 <= rows["K-apiserver"]["Prop."] <= paper * 2

    def test_total_ordering_matches_paper(self, rows):
        """K-apiserver is the slowest; the others are within a few ms."""
        totals = {name: row["Total"] for name, row in rows.items()}
        assert max(totals, key=totals.get) == "K-apiserver"
        spread = [totals["RPC"], totals["K-redis"], totals["K-redis-udf"]]
        assert max(spread) - min(spread) < 15.0
