"""Unit tests for the log-query operator library."""

import pytest

from repro.errors import QueryError, StoreError
from repro.query import OPERATORS, compile_ops


RECORDS = [
    {"device": "lamp-1", "watts": 9, "hours": 2, "room": "den"},
    {"device": "lamp-2", "watts": 12, "hours": 1, "room": "den"},
    {"device": "sensor-1", "watts": 1, "hours": 24, "room": "hall"},
]


def run(ops, records=None):
    return compile_ops(ops)(list(records if records is not None else RECORDS))


class TestOperators:
    def test_filter(self):
        rows = run([{"op": "filter", "expr": "watts > 5"}])
        assert [r["device"] for r in rows] == ["lamp-1", "lamp-2"]

    def test_filter_missing_field_is_false(self):
        rows = run([{"op": "filter", "expr": "nonexistent == 1"}])
        assert rows == []

    def test_rename(self):
        rows = run([{"op": "rename", "from": "watts", "to": "power"}])
        assert rows[0]["power"] == 9 and "watts" not in rows[0]

    def test_rename_missing_field_noop(self):
        rows = run([{"op": "rename", "from": "nope", "to": "x"}])
        assert rows == RECORDS

    def test_cut(self):
        rows = run([{"op": "cut", "fields": ["device"]}])
        assert rows == [{"device": "lamp-1"}, {"device": "lamp-2"}, {"device": "sensor-1"}]

    def test_drop(self):
        rows = run([{"op": "drop", "fields": ["watts", "hours", "room"]}])
        assert rows[0] == {"device": "lamp-1"}

    def test_derive(self):
        rows = run([{"op": "derive", "field": "kwh", "expr": "watts * hours / 1000"}])
        assert rows[0]["kwh"] == pytest.approx(0.018)

    def test_sort(self):
        rows = run([{"op": "sort", "by": "watts"}])
        assert [r["watts"] for r in rows] == [1, 9, 12]

    def test_sort_reverse(self):
        rows = run([{"op": "sort", "by": "watts", "reverse": True}])
        assert [r["watts"] for r in rows] == [12, 9, 1]

    def test_sort_missing_values_first(self):
        records = [{"a": 2}, {"b": 1}, {"a": 1}]
        rows = run([{"op": "sort", "by": "a"}], records)
        assert rows[0] == {"b": 1}

    def test_head_and_tail(self):
        assert len(run([{"op": "head", "count": 2}])) == 2
        assert run([{"op": "tail", "count": 1}])[0]["device"] == "sensor-1"

    def test_distinct(self):
        rows = run([{"op": "distinct", "field": "room"}])
        assert [r["room"] for r in rows] == ["den", "hall"]

    def test_agg_global(self):
        rows = run([{"op": "agg", "aggs": {"total": "sum(watts)", "n": "count()"}}])
        assert rows == [{"total": 22, "n": 3}]

    def test_agg_grouped(self):
        rows = run(
            [
                {"op": "agg", "aggs": {"total": "sum(watts)"}, "by": ["room"]},
                {"op": "sort", "by": "room"},
            ]
        )
        assert rows == [{"room": "den", "total": 21}, {"room": "hall", "total": 1}]

    def test_agg_avg_min_max(self):
        rows = run(
            [{"op": "agg", "aggs": {"a": "avg(watts)", "lo": "min(watts)", "hi": "max(watts)"}}]
        )
        assert rows == [{"a": pytest.approx(22 / 3), "lo": 1, "hi": 12}]

    def test_agg_first_last(self):
        rows = run([{"op": "agg", "aggs": {"f": "first(device)", "l": "last(device)"}}])
        assert rows == [{"f": "lamp-1", "l": "sensor-1"}]

    def test_derive_with_builtin_functions(self):
        """Builtins stay callable even though they are free names."""
        rows = run([{"op": "derive", "field": "bucket", "expr": "int(watts // 10)"}])
        assert [r["bucket"] for r in rows] == [0, 1, 0]

    def test_record_field_shadows_builtin(self):
        """A record field named like a builtin is data, not the function."""
        rows = run(
            [{"op": "derive", "field": "d", "expr": "max + 1"}],
            [{"max": 41}],
        )
        assert rows[0]["d"] == 42

    def test_pipeline_composition(self):
        rows = run(
            [
                {"op": "derive", "field": "kwh", "expr": "watts * hours / 1000"},
                {"op": "filter", "expr": "room == 'den'"},
                {"op": "agg", "aggs": {"energy": "sum(kwh)"}},
            ]
        )
        assert rows == [{"energy": pytest.approx(0.030)}]


class TestErrors:
    def test_unknown_operator(self):
        with pytest.raises(StoreError):
            compile_ops([{"op": "explode"}])

    def test_missing_required_key(self):
        with pytest.raises(StoreError):
            compile_ops([{"op": "filter"}])

    def test_bad_spec_shape(self):
        with pytest.raises(StoreError):
            compile_ops(["filter"])

    def test_bad_aggregation_spelling(self):
        with pytest.raises(StoreError):
            compile_ops([{"op": "agg", "aggs": {"x": "sum watts"}}])

    def test_unknown_aggregation_function(self):
        with pytest.raises(StoreError):
            compile_ops([{"op": "agg", "aggs": {"x": "median(watts)"}}])

    def test_sort_unknown_field_raises_query_error(self):
        """No record carries the sort field: a typed QueryError naming
        the offending op spec, not a bare KeyError."""
        with pytest.raises(QueryError) as exc:
            run([{"op": "sort", "by": "wattz"}])
        assert "wattz" in str(exc.value)
        assert "sort" in str(exc.value)

    def test_operator_catalog_exposed(self):
        assert {"filter", "rename", "agg", "sort"} <= OPERATORS


class TestDeprecatedShim:
    def test_compile_query_warns_once_and_delegates(self):
        from repro.store.ring import _reset_deprecations
        from repro.store.zql import compile_query

        _reset_deprecations()
        with pytest.warns(DeprecationWarning, match="compile_ops"):
            rows = compile_query([{"op": "filter", "expr": "watts > 5"}])(
                list(RECORDS)
            )
        assert [r["device"] for r in rows] == ["lamp-1", "lamp-2"]
        _reset_deprecations()


class TestPurity:
    def test_input_records_not_mutated(self):
        records = [{"a": 1}]
        run([{"op": "derive", "field": "b", "expr": "a + 1"}], records)
        assert records == [{"a": 1}]

    def test_empty_input(self):
        assert run([{"op": "filter", "expr": "x == 1"}], []) == []
        # Global aggregation yields one identity row (SQL semantics);
        # grouped aggregation yields no groups.
        assert run([{"op": "agg", "aggs": {"n": "count()"}}], []) == [{"n": 0}]
        assert run([{"op": "agg", "aggs": {"n": "count()"}, "by": ["g"]}], []) == []
