"""Tests for the unified exchange-handle API and its sunset surface.

``DataExchange.handle()`` and ``DataExchange.grant()`` are the single
entry points across Object and Log exchanges.  The pre-unification forms
(positional ``handle(store, principal)``, positional ``grant`` verbs,
``grant_integrator`` / ``grant_reader``) completed their deprecation
window and were REMOVED: every removed call form raises ``TypeError``
naming its replacement, and the repo-wide suite runs clean under
``-W error::DeprecationWarning``.
"""

import warnings

import pytest

from repro.exchange import LogDE, ObjectDE, StoreHandle
from repro.exchange.log_de import LogStoreHandle
from repro.exchange.object_de import ObjectStoreHandle
from repro.faults import RetryPolicy
from repro.store import ApiServer, LogLake

ORDER_SCHEMA = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
status: string
trackingID: string # +kr: external
"""

READINGS_SCHEMA = """\
schema: SmartHome/v1/House/Readings
kwh: number # +kr: ingest
note: string
"""


@pytest.fixture
def object_de(env, zero_net):
    de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
    de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
    return de


@pytest.fixture
def log_de(env, zero_net):
    de = LogDE(env, LogLake(env, zero_net, watch_overhead=0.0))
    de.host_store("house-log", READINGS_SCHEMA, owner="house")
    return de


class TestUnifiedHandle:
    def test_handles_share_the_store_handle_protocol(self, object_de, log_de):
        obj = object_de.handle("knactor-checkout", principal="checkout")
        log = log_de.handle("house-log", principal="house")
        assert isinstance(obj, ObjectStoreHandle) and isinstance(obj, StoreHandle)
        assert isinstance(log, LogStoreHandle) and isinstance(log, StoreHandle)
        assert obj.store_name == "knactor-checkout"
        assert log.store_name == "house-log"
        assert str(obj.schema.name) == "OnlineRetail/v1/Checkout/Order"

    def test_location_defaults_to_principal(self, object_de):
        handle = object_de.handle("knactor-checkout", principal="checkout")
        assert handle.client.location == "checkout"
        placed = object_de.handle(
            "knactor-checkout", principal="checkout", location="edge-pop-1"
        )
        assert placed.client.location == "edge-pop-1"

    def test_principal_is_required(self, object_de):
        with pytest.raises(TypeError, match="principal"):
            object_de.handle("knactor-checkout")

    def test_handle_binds_principal_to_client(self, object_de):
        """Admission control attributes requests to the handle's principal."""
        handle = object_de.handle("knactor-checkout", principal="checkout")
        assert handle.client.principal == "checkout"

    def test_per_handle_retry_policy_overrides_de_default(self, env, zero_net):
        de_policy = RetryPolicy(max_attempts=2)
        handle_policy = RetryPolicy(max_attempts=7)
        de = ObjectDE(
            env, ApiServer(env, zero_net, watch_overhead=0.0),
            retry_policy=de_policy,
        )
        de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
        default = de.handle("knactor-checkout", principal="checkout")
        assert default.client.retry_policy is de_policy
        tuned = de.handle(
            "knactor-checkout", principal="checkout",
            retry_policy=handle_policy,
        )
        assert tuned.client.retry_policy is handle_policy

    def test_unified_handle_works_end_to_end(self, object_de, call, env):
        owner = object_de.handle("knactor-checkout", principal="checkout")
        call(owner.create("o1", {"items": {}, "status": "placed"}))
        assert call(owner.get("o1"))["data"]["status"] == "placed"
        object_de.grant("viewer", "knactor-checkout", role="reader")
        seen = []
        reader = object_de.handle("knactor-checkout", principal="viewer")
        reader.watch(lambda e: seen.append(e.key))
        call(owner.patch("o1", {"status": "fulfilled"}))
        env.run()
        assert seen == ["o1"]


class TestHandleFlowKnobs:
    """``handle(..., credits=, overflow=)`` and ``watch(..., credits=)``."""

    def test_handle_credits_become_watch_defaults(self, object_de, env):
        handle = object_de.handle(
            "knactor-checkout", principal="checkout",
            credits=8, overflow="shed_oldest",
        )
        assert handle.client.default_watch_credits == 8
        assert handle.client.default_watch_overflow == "shed_oldest"
        watch = handle.watch(lambda e: None)
        assert watch.credits == 8
        assert watch.overflow == "shed_oldest"

    def test_watch_credits_override_handle_default(self, object_de):
        handle = object_de.handle(
            "knactor-checkout", principal="checkout", credits=8
        )
        watch = handle.watch(lambda e: None, credits=2)
        assert watch.credits == 2

    def test_de_wide_default_flows_to_every_handle(self, env, zero_net):
        de = ObjectDE(
            env, ApiServer(env, zero_net, watch_overhead=0.0),
            watch_credits=16,
        )
        de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
        watch = de.handle(
            "knactor-checkout", principal="checkout"
        ).watch(lambda e: None)
        assert watch.credits == 16
        # Credit flow defaults to the recoverable policy: resync, not shed.
        assert watch.overflow == "reject"

    def test_credits_default_off(self, object_de):
        watch = object_de.handle(
            "knactor-checkout", principal="checkout"
        ).watch(lambda e: None)
        assert watch.credits is None

    def test_log_handle_watch_accepts_credits(self, log_de):
        handle = log_de.handle("house-log", principal="house")
        watch = handle.watch(lambda e: None, credits=4)
        assert watch.credits == 4
        assert watch._coalesce == "append"


class TestUnifiedGrant:
    def test_integrator_role_scopes_writes_to_external_fields(self, object_de):
        grant = object_de.grant(
            "cast-a", "knactor-checkout", role="integrator"
        )
        assert "patch" in grant.verbs
        assert grant.write_fields == ("trackingID",)

    def test_reader_role_is_read_only(self, object_de, call):
        object_de.grant("viewer", "knactor-checkout", role="reader")
        grant = object_de.grants[-1]
        assert grant.verbs == frozenset({"get", "list", "watch"})
        assert grant.write_fields == ()

    def test_unknown_role_rejected(self, object_de):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="role"):
            object_de.grant("x", "knactor-checkout", role="superuser")

    def test_explicit_verbs_bypass_role_dispatch(self, object_de):
        grant = object_de.grant(
            "auditor", "knactor-checkout",
            verbs={"get", "list"}, note="audit only",
        )
        assert grant.verbs == frozenset({"get", "list"})
        assert grant.note == "audit only"

    def test_log_de_roles(self, log_de):
        integrator = log_de.grant("sync", "house-log", role="integrator")
        reader = log_de.grant("viewer", "house-log", role="reader")
        assert "load" in integrator.verbs
        assert reader.verbs == frozenset({"query", "watch"})


class TestRemovedForms:
    """The PR-2 deprecation shims are gone: removed forms raise TypeError
    with a one-line migration hint naming the replacement."""

    def test_positional_handle_raises_with_migration(self, object_de):
        with pytest.raises(TypeError, match=r"handle\(store_name, "
                                            r"principal=\.\.\."):
            object_de.handle("knactor-checkout", "checkout")

    def test_positional_handle_with_location_raises(self, object_de):
        with pytest.raises(TypeError, match="removed"):
            object_de.handle("knactor-checkout", "checkout", "edge")

    def test_positional_grant_raises_with_migration(self, object_de):
        with pytest.raises(TypeError, match=r"grant\(principal, store_name, "
                                            r"role=\.\.\.\)"):
            object_de.grant("a", "knactor-checkout", {"get", "list"})

    def test_grant_integrator_raises_with_migration(self, object_de):
        with pytest.raises(TypeError, match=r'grant\(principal, store_name, '
                                            r'role="integrator"\)'):
            object_de.grant_integrator("a", "knactor-checkout")

    def test_grant_reader_raises_with_migration(self, object_de):
        with pytest.raises(TypeError, match=r'role="reader"'):
            object_de.grant_reader("c", "knactor-checkout")

    def test_removed_forms_raise_on_log_de_too(self, log_de):
        with pytest.raises(TypeError, match="removed"):
            log_de.handle("house-log", "house")
        with pytest.raises(TypeError, match="removed"):
            log_de.grant_integrator("sync", "house-log")

    def test_registry_and_shims_are_deleted(self):
        import repro.exchange.base as base

        for symbol in ("_WARNED", "_warn_once", "_reset_deprecation_warnings"):
            assert not hasattr(base, symbol)

    def test_in_repo_callers_are_warning_free(self):
        """The whole migrated retail app builds without one deprecation."""
        from repro.apps.retail.knactor_app import RetailKnactorApp

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RetailKnactorApp.build()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
