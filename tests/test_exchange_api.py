"""Tests for the unified exchange-handle API and its deprecation shims.

``DataExchange.handle()`` and ``DataExchange.grant()`` are the single
entry points across Object and Log exchanges; the pre-unification forms
(positional ``handle(store, principal)``, positional ``grant`` verbs,
``grant_integrator`` / ``grant_reader``) keep working but warn exactly
once per process.
"""

import warnings

import pytest

from repro.exchange import LogDE, ObjectDE, StoreHandle
from repro.exchange.base import _reset_deprecation_warnings
from repro.exchange.log_de import LogStoreHandle
from repro.exchange.object_de import ObjectStoreHandle
from repro.faults import RetryPolicy
from repro.store import ApiServer, LogLake

ORDER_SCHEMA = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
status: string
trackingID: string # +kr: external
"""

READINGS_SCHEMA = """\
schema: SmartHome/v1/House/Readings
kwh: number # +kr: ingest
note: string
"""


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    """Each test observes the warn-once behavior from a clean slate."""
    _reset_deprecation_warnings()
    yield
    _reset_deprecation_warnings()


@pytest.fixture
def object_de(env, zero_net):
    de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
    de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
    return de


@pytest.fixture
def log_de(env, zero_net):
    de = LogDE(env, LogLake(env, zero_net, watch_overhead=0.0))
    de.host_store("house-log", READINGS_SCHEMA, owner="house")
    return de


class TestUnifiedHandle:
    def test_handles_share_the_store_handle_protocol(self, object_de, log_de):
        obj = object_de.handle("knactor-checkout", principal="checkout")
        log = log_de.handle("house-log", principal="house")
        assert isinstance(obj, ObjectStoreHandle) and isinstance(obj, StoreHandle)
        assert isinstance(log, LogStoreHandle) and isinstance(log, StoreHandle)
        assert obj.store_name == "knactor-checkout"
        assert log.store_name == "house-log"
        assert str(obj.schema.name) == "OnlineRetail/v1/Checkout/Order"

    def test_location_defaults_to_principal(self, object_de):
        handle = object_de.handle("knactor-checkout", principal="checkout")
        assert handle.client.location == "checkout"
        placed = object_de.handle(
            "knactor-checkout", principal="checkout", location="edge-pop-1"
        )
        assert placed.client.location == "edge-pop-1"

    def test_principal_is_required(self, object_de):
        with pytest.raises(TypeError, match="principal"):
            object_de.handle("knactor-checkout")

    def test_per_handle_retry_policy_overrides_de_default(self, env, zero_net):
        de_policy = RetryPolicy(max_attempts=2)
        handle_policy = RetryPolicy(max_attempts=7)
        de = ObjectDE(
            env, ApiServer(env, zero_net, watch_overhead=0.0),
            retry_policy=de_policy,
        )
        de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
        default = de.handle("knactor-checkout", principal="checkout")
        assert default.client.retry_policy is de_policy
        tuned = de.handle(
            "knactor-checkout", principal="checkout",
            retry_policy=handle_policy,
        )
        assert tuned.client.retry_policy is handle_policy

    def test_unified_handle_works_end_to_end(self, object_de, call, env):
        owner = object_de.handle("knactor-checkout", principal="checkout")
        call(owner.create("o1", {"items": {}, "status": "placed"}))
        assert call(owner.get("o1"))["data"]["status"] == "placed"
        object_de.grant("viewer", "knactor-checkout", role="reader")
        seen = []
        reader = object_de.handle("knactor-checkout", principal="viewer")
        reader.watch(lambda e: seen.append(e.key))
        call(owner.patch("o1", {"status": "fulfilled"}))
        env.run()
        assert seen == ["o1"]


class TestUnifiedGrant:
    def test_role_grant_matches_legacy_integrator_grant(self, object_de):
        _reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = object_de.grant_integrator("cast-a", "knactor-checkout")
        modern = object_de.grant("cast-b", "knactor-checkout", role="integrator")
        assert legacy.verbs == modern.verbs
        assert legacy.write_fields == modern.write_fields

    def test_reader_role_is_read_only(self, object_de, call):
        object_de.grant("viewer", "knactor-checkout", role="reader")
        grant = object_de.grants[-1]
        assert grant.verbs == frozenset({"get", "list", "watch"})
        assert grant.write_fields == ()

    def test_unknown_role_rejected(self, object_de):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="role"):
            object_de.grant("x", "knactor-checkout", role="superuser")

    def test_explicit_verbs_bypass_role_dispatch(self, object_de):
        grant = object_de.grant(
            "auditor", "knactor-checkout",
            verbs={"get", "list"}, note="audit only",
        )
        assert grant.verbs == frozenset({"get", "list"})
        assert grant.note == "audit only"

    def test_log_de_roles(self, log_de):
        integrator = log_de.grant("sync", "house-log", role="integrator")
        reader = log_de.grant("viewer", "house-log", role="reader")
        assert "load" in integrator.verbs
        assert reader.verbs == frozenset({"query", "watch"})


class TestDeprecationShims:
    def test_positional_handle_works_and_warns_once(self, object_de):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = object_de.handle("knactor-checkout", "checkout")
            second = object_de.handle("knactor-checkout", "checkout", "edge")
        assert isinstance(first, StoreHandle)
        assert second.client.location == "edge"
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "handle(store_name, principal=" in str(deprecations[0].message)

    def test_positional_grant_works_and_warns_once(self, object_de):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            one = object_de.grant("a", "knactor-checkout", {"get", "list"})
            two = object_de.grant("b", "knactor-checkout", {"get"}, ())
        assert one.verbs == frozenset({"get", "list"})
        assert two.verbs == frozenset({"get"})
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_grant_aliases_warn_once_each(self, object_de):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            object_de.grant_integrator("a", "knactor-checkout")
            object_de.grant_integrator("b", "knactor-checkout")
            object_de.grant_reader("c", "knactor-checkout")
            object_de.grant_reader("d", "knactor-checkout")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2  # one per alias, not per call

    def test_reset_hook_rearms_the_warning(self, object_de):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            object_de.handle("knactor-checkout", "checkout")
            _reset_deprecation_warnings()
            object_de.handle("knactor-checkout", "checkout")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2

    def test_too_many_positionals_still_a_type_error(self, object_de):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                object_de.handle("knactor-checkout", "p", "loc", "extra")

    def test_in_repo_callers_are_warning_free(self):
        """The whole migrated retail app builds without one deprecation."""
        from repro.apps.retail.knactor_app import RetailKnactorApp

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            RetailKnactorApp.build()
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
