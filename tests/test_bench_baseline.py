"""The CI regression gate: artifact envelopes and baseline comparison.

``benchmarks/baseline.py`` is what CI runs; these tests pin both halves
of its contract -- every committed ``BENCH_*.json`` carries a valid
versioned envelope, and an injected p99/throughput regression against a
committed baseline demonstrably fails the comparison (the ISSUE's
acceptance criterion) while a like-for-like rerun passes.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.cli.main import _load_benchmark

ROOT = Path(__file__).resolve().parent.parent

baseline = _load_benchmark("baseline")


def _doc(**overrides):
    doc = {
        "schema": 1, "bench": "unit", "seed": 3, "smoke": True,
        "latency": {"p50_s": 0.010, "p99_s": 0.100},
        "throughput_rps": 500.0,
        "nested": [{"p99_s": 0.200}],
    }
    doc.update(overrides)
    return doc


class TestValidate:
    def test_clean_envelope(self):
        assert baseline.validate(_doc()) == []

    def test_missing_keys_flagged(self):
        doc = _doc()
        del doc["seed"], doc["bench"]
        problems = baseline.validate(doc)
        assert len(problems) == 2
        assert any("seed" in p for p in problems)

    def test_wrong_types_flagged(self):
        assert baseline.validate(_doc(seed="3"))
        assert baseline.validate(_doc(bench=7))
        assert baseline.validate(_doc(smoke="yes"))
        # bool is an int subclass; the envelope check must still reject it.
        assert baseline.validate(_doc(seed=True))
        assert baseline.validate(_doc(schema=True))

    def test_unknown_schema_version_flagged(self):
        problems = baseline.validate(_doc(schema=2))
        assert any("version 2" in p for p in problems)

    def test_non_object_flagged(self):
        assert baseline.validate([1, 2, 3])

    def test_all_committed_artifacts_validate(self):
        artifacts = sorted(ROOT.glob("BENCH_*.json"))
        assert artifacts, "no committed benchmark artifacts found"
        for path in artifacts:
            doc = json.loads(path.read_text())
            assert baseline.validate(doc, label=path.name) == [], path.name


class TestCompare:
    def test_identical_documents_pass(self):
        assert baseline.compare(_doc(), _doc()) == []

    def test_p99_regression_fails(self):
        fresh = _doc()
        fresh["latency"]["p99_s"] *= 1.5
        regressions = baseline.compare(_doc(), fresh)
        assert len(regressions) == 1
        assert "latency.p99_s" in regressions[0]

    def test_nested_regression_found(self):
        fresh = _doc()
        fresh["nested"][0]["p99_s"] *= 2
        assert baseline.compare(_doc(), fresh)

    def test_throughput_drop_fails_but_gain_passes(self):
        slower = _doc(throughput_rps=400.0)
        assert baseline.compare(_doc(), slower)
        faster = _doc(throughput_rps=600.0)
        assert baseline.compare(_doc(), faster) == []

    def test_within_tolerance_passes(self):
        fresh = _doc()
        fresh["latency"]["p99_s"] *= 1.04
        assert baseline.compare(_doc(), fresh, tolerance=0.05) == []
        assert baseline.compare(_doc(), fresh, tolerance=0.01)

    def test_bench_and_shape_mismatch_refused(self):
        [problem] = baseline.compare(_doc(), _doc(bench="other"))
        assert "not comparable" in problem
        [problem] = baseline.compare(_doc(), _doc(smoke=False))
        assert "shape mismatch" in problem

    def test_new_and_near_zero_metrics_skipped(self):
        fresh = _doc()
        fresh["extra_p99_s"] = 99.0  # not in the baseline: re-baseline case
        assert baseline.compare(_doc(), fresh) == []
        base = _doc()
        base["latency"]["p99_s"] = 0.0  # ratio vs ~0 is noise
        fresh = _doc()
        assert baseline.compare(base, fresh) == []

    def test_injected_regression_against_committed_fleet_baseline(self):
        """The acceptance criterion, against the real committed artifact."""
        committed = json.loads((ROOT / "BENCH_fleet.json").read_text())
        fresh = copy.deepcopy(committed)
        fresh["scenarios"]["retail"]["load"]["p99_s"] *= 2
        regressions = baseline.compare(committed, fresh)
        assert regressions, "doubled p99 must trip the gate"
        assert any("p99_s" in r for r in regressions)
        # And the untouched copy passes -- determinism makes this exact.
        assert baseline.compare(committed, copy.deepcopy(committed)) == []


class TestCommandSurface:
    def test_validate_command_on_committed_artifacts(self, capsys):
        assert baseline.main(["--validate"]) == 0
        assert "all envelopes ok" in capsys.readouterr().out

    def test_validate_command_flags_bad_artifact(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"bench": "x"}))
        assert baseline.main(["--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_compare_command_detects_regression(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_doc()))
        regressed = _doc()
        regressed["latency"]["p99_s"] *= 2
        new.write_text(json.dumps(regressed))
        assert baseline.main(
            ["--baseline", str(old), "--fresh", str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        new.write_text(json.dumps(_doc()))
        assert baseline.main(
            ["--baseline", str(old), "--fresh", str(new)]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_compare_command_rejects_invalid_inputs(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"bench": "x"}))  # no envelope
        new.write_text(json.dumps(_doc()))
        assert baseline.main(
            ["--baseline", str(old), "--fresh", str(new)]) == 1

    def test_needs_a_command(self):
        with pytest.raises(SystemExit):
            baseline.main([])
