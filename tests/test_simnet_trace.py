"""Unit tests for the tracer used by latency benchmarks."""

import pytest

from repro.simnet import Environment, Tracer


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer(env):
    return Tracer(env)


class TestTracer:
    def test_record_point_event(self, env, tracer):
        env.run(until=1.5)
        tracer.record("stage", "arrive", request=7)
        assert len(tracer.events) == 1
        evt = tracer.events[0]
        assert (evt.time, evt.category, evt.name) == (1.5, "stage", "arrive")
        assert evt.attrs == {"request": 7}

    def test_span_duration(self, env, tracer):
        tracer.begin("stage", "work", key=1)
        env.run(until=2.0)
        span = tracer.end("stage", "work", key=1)
        assert span.duration == 2.0

    def test_concurrent_spans_keyed(self, env, tracer):
        tracer.begin("stage", "work", key="a")
        env.run(until=1.0)
        tracer.begin("stage", "work", key="b")
        env.run(until=3.0)
        tracer.end("stage", "work", key="a")
        env.run(until=4.0)
        tracer.end("stage", "work", key="b")
        assert sorted(tracer.durations("stage", "work")) == [3.0, 3.0]

    def test_end_unknown_span_raises(self, tracer):
        from repro.simnet import TraceError

        with pytest.raises(TraceError, match="stage/missing"):
            tracer.end("stage", "missing")

    def test_open_span_duration_raises(self, env, tracer):
        span = tracer.begin("stage", "open")
        with pytest.raises(ValueError):
            span.duration

    def test_timestamps_keyed_by_attribute(self, env, tracer):
        tracer.record("order", "created", order_id="o1")
        env.run(until=1.0)
        tracer.record("order", "created", order_id="o2")
        env.run(until=2.0)
        tracer.record("order", "created", order_id="o1")  # duplicate kept first
        stamps = tracer.timestamps("order", "created", key_attr="order_id")
        assert stamps == {"o1": 0.0, "o2": 1.0}

    def test_timestamps_unkeyed_sorted(self, env, tracer):
        tracer.record("a", "x")
        env.run(until=2.0)
        tracer.record("a", "x")
        assert tracer.timestamps("a", "x") == [0.0, 2.0]

    def test_events_by_name_filters_category(self, tracer):
        tracer.record("cat1", "n1")
        tracer.record("cat2", "n2")
        grouped = tracer.events_by_name("cat1")
        assert list(grouped) == [("cat1", "n1")]

    def test_clear(self, env, tracer):
        tracer.record("a", "b")
        tracer.begin("s", "t")
        tracer.clear()
        assert tracer.events == [] and tracer.spans == []
