"""Tests for the bounded confluence checker (§5 formal-methods support).

Interleaving model: per-object update order is fixed (watch streams are
FIFO per object); updates to different objects interleave arbitrarily.
A robust DXG must converge to the same fixpoint under every interleaving.
"""

import pytest

from repro.core.dxg import parse_dxg
from repro.core.dxg.parser import build_spec
from repro.core.dxg.verify import check_confluence, _interleavings
from repro.errors import ConfigurationError
from repro.schema import Schema

A_SCHEMA = Schema.from_text("schema: App/v1/A/S\nx: number\n")
C_SCHEMA = Schema.from_text("schema: App/v1/C/S\ny: number\n")
B_SCHEMA = Schema.from_text(
    "schema: App/v1/B/T\n"
    "sum: number # +kr: external\n"
    "flag: string # +kr: external\n"
)

SCHEMAS = {"A": A_SCHEMA, "B": B_SCHEMA, "C": C_SCHEMA}


def three_store_spec(body):
    return build_spec(
        {
            "A": "App/v1/A/knactor-a",
            "B": "App/v1/B/knactor-b",
            "C": "App/v1/C/knactor-c",
        },
        body,
    )


class TestInterleavings:
    def test_per_object_order_preserved(self):
        groups = ["a", "a", "c"]
        orders = list(_interleavings(groups))
        # C(3,1) = 3 positions for the 'c' update.
        assert len(orders) == 3
        for order in orders:
            assert order.index(0) < order.index(1)  # a's updates stay FIFO

    def test_single_object_has_one_interleaving(self):
        assert list(_interleavings(["a", "a", "a"])) == [(0, 1, 2)]

    def test_full_shuffle_for_distinct_objects(self):
        assert len(list(_interleavings(["a", "b", "c"]))) == 6


class TestConfluence:
    def test_pure_function_dxg_is_confluent(self):
        spec = three_store_spec(
            {"B": {"sum": "A.x + C.y", "flag": "'hi' if A.x > 0 else 'lo'"}}
        )
        report = check_confluence(
            spec,
            SCHEMAS,
            updates=[
                ("A", "", {"x": 1.0}),
                ("A", "", {"x": 5.0}),
                ("C", "", {"y": 2.0}),
            ],
        )
        assert report.confluent
        assert report.orders_checked == 3
        assert report.final_state[("B", "")]["sum"] == 7.0
        assert "confluent" in report.describe()

    def test_fig6_style_spec_is_confluent(self):
        checkout = Schema.from_text(
            "schema: Retail/v1/Checkout/Order\n"
            "cost: number\naddress: string\n"
            "trackingID: string # +kr: external\n"
        )
        shipping = Schema.from_text(
            "schema: Retail/v1/Shipping/Shipment\n"
            "addr: string # +kr: external\n"
            "method: string # +kr: external\n"
            "id: string\n"
        )
        spec = parse_dxg(
            "Input:\n"
            "  C: Retail/v1/Checkout/knactor-checkout\n"
            "  S: Retail/v1/Shipping/knactor-shipping\n"
            "DXG:\n"
            "  C.order:\n"
            "    trackingID: S.id\n"
            "  S:\n"
            "    addr: C.order.address\n"
            "    method: '\"air\" if C.order.cost > 1000 else \"ground\"'\n"
        )
        report = check_confluence(
            spec,
            {"C": checkout, "S": shipping},
            updates=[
                ("C", "order", {"cost": 2000.0, "address": "12 Elm"}),
                ("C", "order", {"cost": 10.0}),
                ("S", "", {"id": "trk-1"}),
            ],
        )
        assert report.confluent
        final_order = report.final_state[("C", "order")]
        assert final_order["trackingID"] == "trk-1"
        # The LAST cost write wins in every interleaving: method converges.
        assert report.final_state[("S", "")]["method"] == "ground"

    def test_static_analysis_catches_explicit_latch(self):
        """A latch written as ``this.flag`` is a self-dependency: static
        analysis rejects it outright (cycle detection working)."""
        from repro.core.dxg import analyze

        spec = three_store_spec(
            {"B": {"flag": "coalesce(this.flag, concat(A.x, '-', C.y))"}}
        )
        report = analyze(spec)
        assert not report.ok and report.cycles

    def test_order_dependent_dxg_detected(self):
        """A first-writer-wins latch that EVADES static analysis (dynamic
        self-access via lookup) captures whatever the sources held the
        first time both existed -- which depends on the interleaving.
        The bounded dynamic checker catches what the static pass cannot."""
        spec = three_store_spec(
            {"B": {"flag": "coalesce(lookup(this, 'flag'), concat(A.x, '-', C.y))"}}
        )
        report = check_confluence(
            spec,
            SCHEMAS,
            updates=[
                ("A", "", {"x": 1.0}),
                ("A", "", {"x": 2.0}),
                ("C", "", {"y": 9.0}),
            ],
            # The latch reads this.flag, so the creatable heuristic would
            # make B patch-only; the developer declares it creatable.
            creatable_targets=["B"],
        )
        assert not report.confluent
        assert report.counterexample is not None
        assert "NOT confluent" in report.describe()
        assert any("diverging objects" in p for p in report.problems)

    def test_max_orders_bounds_work(self):
        spec = three_store_spec({"B": {"sum": "A.x + C.y"}})
        report = check_confluence(
            spec,
            SCHEMAS,
            updates=[
                ("A", "", {"x": 1.0}),
                ("A", "", {"x": 2.0}),
                ("C", "", {"y": 1.0}),
                ("C", "", {"y": 2.0}),
            ],
            max_orders=4,
        )
        assert report.orders_checked == 4

    def test_validation(self):
        spec = three_store_spec({"B": {"sum": "A.x"}})
        with pytest.raises(ConfigurationError):
            check_confluence(spec, SCHEMAS, updates=[])
        with pytest.raises(ConfigurationError):
            check_confluence(
                spec, SCHEMAS, updates=[("A", "", {"x": 1.0})], max_orders=0
            )
        with pytest.raises(ConfigurationError):
            check_confluence(
                spec, {"A": A_SCHEMA},  # B, C schemas missing
                updates=[("A", "", {"x": 1.0})],
            )


class TestConfluenceProperty:
    def test_random_pure_dxgs_are_confluent(self):
        """Pure functions over latest-state are confluent; spot-check a
        generated family."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=10, deadline=None)
        @given(
            coefficients=st.lists(
                st.integers(min_value=1, max_value=5), min_size=1, max_size=2
            )
        )
        def run(coefficients):
            expr = " + ".join(
                f"A.x * {c} + C.y * {c}" for c in coefficients
            )
            spec = three_store_spec({"B": {"sum": expr}})
            report = check_confluence(
                spec,
                SCHEMAS,
                updates=[
                    ("A", "", {"x": 1.0}),
                    ("C", "", {"y": 3.0}),
                    ("A", "", {"x": 2.0}),
                ],
            )
            assert report.confluent

        run()
