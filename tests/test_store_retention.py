"""Unit tests for retention policies and the garbage collector."""

import pytest

from repro.errors import ConfigurationError, NotFoundError
from repro.store import (
    ApiServer,
    ApiServerClient,
    RefCountRetention,
    TTLRetention,
)
from repro.store.retention import GarbageCollector


@pytest.fixture
def server(env, zero_net):
    return ApiServer(env, zero_net, watch_overhead=0.0)


@pytest.fixture
def client(server):
    return ApiServerClient(server, location="gc-test")


class TestRefCountRetention:
    def test_object_with_no_readers_is_retained(self):
        policy = RefCountRetention()
        assert not policy.is_collectable("orders/o1", 0.0, 100.0)

    def test_collectable_after_all_readers_done(self):
        policy = RefCountRetention()
        policy.register_reader("orders/", "integrator")
        policy.register_reader("orders/", "reconciler")
        policy.mark_done("orders/o1", "integrator")
        assert not policy.is_collectable("orders/o1", 0.0, 1.0)
        policy.mark_done("orders/o1", "reconciler")
        assert policy.is_collectable("orders/o1", 0.0, 1.0)

    def test_pending_for_lists_remaining_readers(self):
        policy = RefCountRetention()
        policy.register_reader("orders/", "a")
        policy.register_reader("orders/", "b")
        policy.mark_done("orders/o1", "a")
        assert policy.pending_for("orders/o1") == {"b"}

    def test_mark_done_by_non_reader_rejected(self):
        policy = RefCountRetention()
        policy.register_reader("orders/", "a")
        with pytest.raises(NotFoundError):
            policy.mark_done("orders/o1", "stranger")

    def test_overlapping_prefixes_union_readers(self):
        policy = RefCountRetention()
        policy.register_reader("", "auditor")
        policy.register_reader("orders/", "integrator")
        assert policy.readers_for("orders/o1") == {"auditor", "integrator"}

    def test_unregister_reader(self):
        policy = RefCountRetention()
        policy.register_reader("orders/", "a")
        policy.unregister_reader("orders/", "a")
        assert policy.readers_for("orders/o1") == set()

    def test_empty_entity_rejected(self):
        with pytest.raises(ConfigurationError):
            RefCountRetention().register_reader("x", "")


class TestTTLRetention:
    def test_collectable_after_ttl(self):
        policy = TTLRetention(ttl=10.0)
        assert not policy.is_collectable("k", updated_at=0.0, now=5.0)
        assert policy.is_collectable("k", updated_at=0.0, now=10.0)

    def test_invalid_ttl(self):
        with pytest.raises(ConfigurationError):
            TTLRetention(ttl=0)


class TestGarbageCollector:
    def test_never_collects_with_pending_reader(self, env, client, call):
        policy = RefCountRetention()
        policy.register_reader("orders/", "integrator")
        gc = GarbageCollector(env, client, policy, interval=1.0)
        call(client.create("orders/o1", {"v": 1}))
        gc.start()
        env.run(until=10.0)
        assert call(client.get("orders/o1"))["data"] == {"v": 1}
        assert gc.collected == []

    def test_collects_once_marked_done(self, env, client, call):
        policy = RefCountRetention()
        policy.register_reader("orders/", "integrator")
        gc = GarbageCollector(env, client, policy, interval=1.0)
        call(client.create("orders/o1", {"v": 1}))
        policy.mark_done("orders/o1", "integrator")
        gc.start()
        env.run(until=2.0)
        with pytest.raises(NotFoundError):
            call(client.get("orders/o1"))
        assert [key for _t, key in gc.collected] == ["orders/o1"]

    def test_ttl_sweep(self, env, client, call):
        gc = GarbageCollector(env, client, TTLRetention(ttl=5.0), interval=1.0)
        call(client.create("k", {"v": 1}))
        gc.start()
        env.run(until=3.0)
        assert call(client.get("k"))  # still young
        env.run(until=7.0)
        with pytest.raises(NotFoundError):
            call(client.get("k"))

    def test_prefix_scoped_sweep(self, env, client, call):
        gc = GarbageCollector(
            env, client, TTLRetention(ttl=1.0), interval=1.0, key_prefix="tmp/"
        )
        call(client.create("tmp/x", {}))
        call(client.create("keep/y", {}))
        gc.start()
        env.run(until=5.0)
        with pytest.raises(NotFoundError):
            call(client.get("tmp/x"))
        assert call(client.get("keep/y"))

    def test_stop_halts_collection(self, env, client, call):
        gc = GarbageCollector(env, client, TTLRetention(ttl=1.0), interval=1.0)
        call(client.create("k", {}))
        gc.start()
        gc.stop()
        env.run(until=10.0)
        assert call(client.get("k"))

    def test_start_is_idempotent(self, env, client):
        gc = GarbageCollector(env, client, TTLRetention(ttl=1.0))
        assert gc.start() is gc.start()

    def test_invalid_interval(self, env, client):
        with pytest.raises(ConfigurationError):
            GarbageCollector(env, client, TTLRetention(ttl=1.0), interval=0)
