"""Sim vs realtime parity: same apps, same seeds, identical outcomes.

The realtime backend keeps the sim's heap discipline and schedule
clock, so an identically-configured run must pop events in the same
order and commit the same state -- revisions included.  These tests
run the retail, smarthome, and socialnetwork apps under both backends
and compare final store state and event-ordering fingerprints.
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.apps.smarthome.knactor_app import SmartHomeKnactorApp
from repro.apps.smarthome.workload import MotionTrace
from repro.apps.socialnetwork.rpc_app import SocialNetworkRpcApp
from repro.core.optimizer import K_REDIS
from repro.realtime import RealtimeEnvironment
from repro.simnet import Environment

#: Real seconds per schedule second for realtime runs under test.
FACTOR = 0.02

RETAIL_ORDERS = 3


def _env(backend):
    if backend == "realtime":
        return RealtimeEnvironment(factor=FACTOR)
    return Environment()


# -- retail ----------------------------------------------------------------


def _run_retail(backend, shape_latency):
    """One seeded retail run; returns (state, event order, timestamps)."""
    app = RetailKnactorApp.build(
        env=_env(backend), profile=K_REDIS, seed=7,
        shape_latency=shape_latency,
    )
    watched = []
    app.de.grant("parity-watcher", "knactor-checkout", role="reader")
    app.de.handle("knactor-checkout", principal="parity-watcher").watch(
        lambda event: watched.append((event.key, event.type, event.revision))
    )
    workload = OrderWorkload(seed=7)
    for _ in range(RETAIL_ORDERS):
        key, data = workload.next_order()
        data["email"] = "shopper@example.com"
        app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    state = []
    for store in ("knactor-checkout", "knactor-shipping", "knactor-payment",
                  "knactor-email"):
        handle = app.de.handle(store, principal=app.de.store(store).owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["revision"], view["data"]))
    return state, watched, app.env.now


@pytest.mark.parametrize("shape_latency", [True, False],
                         ids=["shaped", "unshaped"])
def test_retail_parity(shape_latency):
    sim_state, sim_events, sim_now = _run_retail("sim", shape_latency)
    rt_state, rt_events, rt_now = _run_retail("realtime", shape_latency)
    assert sim_state == rt_state
    assert sim_events == rt_events
    assert sim_now == pytest.approx(rt_now)
    # The run did real work: every order fulfilled, watch saw deliveries.
    fulfilled = [
        row for row in sim_state
        if row[0] == "knactor-checkout" and row[3].get("status") == "fulfilled"
    ]
    assert len(fulfilled) == RETAIL_ORDERS
    assert sim_events


# -- smarthome -------------------------------------------------------------


def _run_smarthome(backend):
    app = SmartHomeKnactorApp.build(
        env=_env(backend), trace=MotionTrace(seed=11, duration=20),
        shape_latency=False,
    )
    app.run(until=24.0)
    state = []
    for store in ("knactor-house", "knactor-lamp", "knactor-motion"):
        owner = app.object_de.store(store).owner
        handle = app.object_de.handle(store, principal=owner)
        for view in app.env.run(until=handle.list()):
            state.append((store, view["key"], view["revision"], view["data"]))
    [report] = app.env.run(until=app.energy_report())
    return state, app.house.kwh_total, report


def test_smarthome_parity():
    sim_state, sim_kwh, sim_report = _run_smarthome("sim")
    rt_state, rt_kwh, rt_report = _run_smarthome("realtime")
    assert sim_state == rt_state
    assert sim_kwh == pytest.approx(rt_kwh)
    assert sim_report == rt_report
    # Motion events flowed and the lamp integrated real energy.
    assert sim_report["motion_events"] > 0
    assert sim_kwh > 0


# -- socialnetwork ---------------------------------------------------------


def _run_socialnetwork(backend):
    app = SocialNetworkRpcApp.build(env=_env(backend), shape_latency=False)
    results = [
        app.env.run(until=app.compose_post(req_id=f"r{i}")) for i in range(3)
    ]
    return results, list(app.calls_traced), app.env.now


def test_socialnetwork_parity():
    sim_results, sim_calls, sim_now = _run_socialnetwork("sim")
    rt_results, rt_calls, rt_now = _run_socialnetwork("realtime")
    assert sim_results == rt_results
    assert sim_calls == rt_calls
    assert sim_now == pytest.approx(rt_now)
    # The compose fan-out really traversed the call graph.
    assert len({service for service, _m in sim_calls}) >= 10
