"""Unit tests for the DXG dependency graph, static analysis, and planner."""

import pytest

from repro.core.dxg import (
    DependencyGraph,
    analyze,
    parse_dxg,
    plan,
    standard_functions,
)
from repro.errors import DXGAnalysisError
from repro.schema import Schema

from tests.test_dxg_parser import FIG6


def spec_of(body, inputs=("A", "B", "C")):
    text = "Input:\n" + "".join(f"  {a}: app/v1/{a}\n" for a in inputs) + "DXG:\n"
    for target, fields in body.items():
        text += f"  {target}:\n"
        for f, e in fields.items():
            text += f"    {f}: '{e}'\n"
    return parse_dxg(text)


class TestGraph:
    def test_fig6_nodes_and_edges(self):
        graph = DependencyGraph.from_spec(parse_dxg(FIG6))
        assert ("C", "order", "shippingCost") in graph.assigned_nodes()
        assert ("S", "", "quote.price") in graph.source_nodes()
        assert ("C", "order", "shippingCost") in graph.successors(
            ("S", "", "quote.price")
        )

    def test_this_edge(self):
        graph = DependencyGraph.from_spec(parse_dxg(FIG6))
        # shippingCost depends on the order's own currency.
        assert ("C", "order", "shippingCost") in graph.successors(
            ("C", "order", "currency")
        )

    def test_fig6_is_acyclic(self):
        graph = DependencyGraph.from_spec(parse_dxg(FIG6))
        assert graph.find_cycles() == []
        order = graph.topological_order()
        assert len(order) == 8

    def test_direct_cycle_detected(self):
        spec = spec_of({"A": {"x": "B.y + 1"}, "B": {"y": "A.x + 1"}})
        graph = DependencyGraph.from_spec(spec)
        assert graph.find_cycles()
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_self_cycle_via_this(self):
        spec = spec_of({"A": {"x": "this.x + 1"}})
        graph = DependencyGraph.from_spec(spec)
        assert graph.find_cycles()

    def test_overlapping_path_cycle_detected(self):
        # A.quote (whole object) is written from B.v; B.v is written from
        # A.quote.price -- a cycle through path overlap.
        spec = spec_of({"A": {"quote": "B.v"}, "B": {"v": "A.quote.price"}})
        graph = DependencyGraph.from_spec(spec)
        assert graph.find_cycles()

    def test_affected_by_whole_object_change(self):
        graph = DependencyGraph.from_spec(parse_dxg(FIG6))
        affected = graph.affected_by([("C", "order", "")])
        # Everything derives from the order (directly or transitively).
        assert ("S", "", "method") in affected
        assert ("C", "order", "shippingCost") in affected

    def test_affected_by_specific_field(self):
        graph = DependencyGraph.from_spec(parse_dxg(FIG6))
        affected = graph.affected_by([("S", "", "id")])
        assert affected == {("C", "order", "trackingID")}


class TestAnalysis:
    def test_fig6_passes(self):
        report = analyze(parse_dxg(FIG6), functions=standard_functions())
        assert report.ok
        assert report.summary() == "ok"

    def test_cycle_rejected(self):
        spec = spec_of({"A": {"x": "B.y"}, "B": {"y": "A.x"}})
        report = analyze(spec)
        assert not report.ok and report.cycles
        with pytest.raises(DXGAnalysisError):
            report.raise_if_invalid()

    def test_unknown_function_rejected(self):
        spec = spec_of({"A": {"x": "frobnicate(B.y)"}})
        report = analyze(spec, functions=standard_functions())
        assert any("frobnicate" in e for e in report.errors)

    def test_builtins_allowed(self):
        spec = spec_of({"A": {"x": "len(B.items)"}})
        assert analyze(spec, functions=standard_functions()).ok

    def test_schema_conformance_target(self):
        spec = spec_of({"A": {"nope": "B.y"}})
        schema = Schema.from_text("schema: app/v1/A/T\nx: number\n")
        report = analyze(spec, schemas={"A": schema})
        assert any("no field 'nope'" in e for e in report.errors)

    def test_schema_conformance_source(self):
        spec = spec_of({"A": {"x": "B.bogus"}})
        schemas = {
            "A": Schema.from_text("schema: app/v1/A/T\nx: number\n"),
            "B": Schema.from_text("schema: app/v1/B/T\ny: number\n"),
        }
        report = analyze(spec, schemas=schemas)
        assert any("bogus" in e for e in report.errors)

    def test_open_object_source_allowed(self):
        spec = spec_of({"A": {"x": "B.blob.anything"}})
        schemas = {
            "A": Schema.from_text("schema: app/v1/A/T\nx: number\n"),
            "B": Schema.from_text("schema: app/v1/B/T\nblob: object\n"),
        }
        assert analyze(spec, schemas=schemas).ok

    def test_unused_external_warning(self):
        spec = spec_of({"A": {"x": "B.y"}})
        schema = Schema.from_text(
            "schema: app/v1/A/T\nx: number # +kr: external\n"
            "lonely: string # +kr: external\n"
        )
        report = analyze(spec, schemas={"A": schema})
        assert report.ok  # warning, not error
        assert report.unused_external == [("A", "lonely")]

    def test_duplicate_assignment_rejected(self):
        from repro.core.dxg.parser import build_spec

        spec = build_spec({"A": "x/v1/A", "B": "x/v1/B"}, {"A": {"x": "B.y"}})
        spec.assignments.append(spec.assignments[0])
        report = analyze(spec)
        assert any("duplicate" in e for e in report.errors)


class TestPlanner:
    def test_fig6_plan_steps(self):
        execution_plan = plan(parse_dxg(FIG6))
        targets = [s.target for s in execution_plan.steps]
        assert set(targets) == {("C", "order"), ("P", ""), ("S", "")}

    def test_creatable_heuristic(self):
        execution_plan = plan(parse_dxg(FIG6))
        by_target = {s.target: s for s in execution_plan.steps}
        # C.order reads `this.currency` => patch-only; S and P are created.
        assert not by_target[("C", "order")].creatable
        assert by_target[("S", "")].creatable
        assert by_target[("P", "")].creatable

    def test_explicit_creatable_override(self):
        execution_plan = plan(parse_dxg(FIG6), creatable_targets=["S"])
        by_target = {s.target: s for s in execution_plan.steps}
        assert by_target[("S", "")].creatable
        assert not by_target[("P", "")].creatable

    def test_consolidation_counts(self):
        execution_plan = plan(parse_dxg(FIG6))
        assert execution_plan.write_ops_consolidated == 3
        assert execution_plan.write_ops_unconsolidated == 8

    def test_group_cycle_reported(self):
        # C.order <- S.quote and S <- C.order.*: a group-level cycle that is
        # fine at field level (fixpoint handles it).
        execution_plan = plan(parse_dxg(FIG6))
        assert any(
            {("C", "order"), ("S", "")} <= set(scc)
            for scc in execution_plan.group_cycles
        )

    def test_acyclic_groups_ordered_dependencies_first(self):
        spec = spec_of({"B": {"v": "A.x"}, "C": {"w": "B.v"}})
        execution_plan = plan(spec)
        targets = [s.target for s in execution_plan.steps]
        assert targets.index(("B", "")) < targets.index(("C", ""))

    def test_describe(self):
        text = plan(parse_dxg(FIG6)).describe()
        assert "step" in text and "C.order" in text
