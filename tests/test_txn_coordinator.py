"""Cross-shard transactional plane: 2PC, sagas, exactly-once, recovery."""

import pytest

from repro.errors import (
    AlreadyExistsError,
    ConfigurationError,
    ConflictError,
    CrossShardTxnError,
    NotFoundError,
    UnavailableError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.obs import ObsPlane
from repro.store import (
    ApiServer,
    MemKV,
    MemKVClient,
    ShardedStore,
    ShardedStoreClient,
    ShardRing,
)
from repro.txn import TxnCoordinator, TxnFunctionIntegrator


def make_store(env, net, n=2, backend=ApiServer, **kwargs):
    shards = [
        backend(env, net, location=f"shard-{i}", watch_overhead=0.0, **kwargs)
        for i in range(n)
    ]
    return ShardedStore(shards, name="txnstore")


def keys_on_shards(n, count_per_shard=2, tag="k"):
    """Deterministic keys guaranteed to cover every one of ``n`` shards."""
    found = {i: [] for i in range(n)}
    i = 0
    while any(len(v) < count_per_shard for v in found.values()):
        key = f"{tag}-{i}"
        idx = ShardRing.for_count(n).owner_index(key)
        if len(found[idx]) < count_per_shard:
            found[idx].append(key)
        i += 1
    return found


def cross_shard_ops(n, tag="k"):
    per_shard = keys_on_shards(n, count_per_shard=1, tag=tag)
    return [
        {"action": "create", "key": per_shard[i][0], "data": {"shard": i}}
        for i in range(n)
    ]


class TestCrossShardRouting:
    def test_cross_shard_without_mode_raises_typed_error(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        with pytest.raises(CrossShardTxnError) as excinfo:
            call(client.txn(ops))
        err = excinfo.value
        assert "cross-shard" in str(err)
        assert set(err.shard_map) == {op["key"] for op in ops}
        assert len(set(err.shard_map.values())) == 2

    def test_single_shard_txn_still_fast_path(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        keys = keys_on_shards(2)[0]  # both on shard 0
        views = call(client.txn([
            {"action": "create", "key": keys[0], "data": {"v": 1}},
            {"action": "create", "key": keys[1], "data": {"v": 2}},
        ]))
        assert len(views) == 2
        assert store._coordinator is None  # coordinator never involved

    def test_unknown_mode_rejected(self, env, net):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        with pytest.raises(ConfigurationError):
            client.txn(cross_shard_ops(2), mode="3pc")


class Test2PC:
    def test_commit_applies_on_every_shard(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        views = call(client.txn(ops, mode="2pc"))
        assert len(views) == 2
        for op in ops:
            assert call(client.get(op["key"]))["data"] == op["data"]
        assert store.in_doubt_txns == 0
        assert store.coordinator.committed_total == 1

    def test_validation_failure_applies_nothing_anywhere(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        call(client.create(ops[1]["key"], {"pre": True}))  # collides
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="2pc"))
        with pytest.raises(NotFoundError):
            call(client.get(ops[0]["key"]))  # first shard rolled back
        assert store.in_doubt_txns == 0
        assert store.coordinator.aborted_total == 1

    def test_conflict_message_names_expected_and_actual(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        key = keys_on_shards(2)[0][0]
        created = call(client.create(key, {"v": 1}))
        call(client.update(key, {"v": 2}))
        current = call(client.get(key))["revision"]
        with pytest.raises(ConflictError) as excinfo:
            call(client.txn([
                {"action": "update", "key": key, "data": {"v": 3},
                 "resource_version": created["revision"]},
            ]))
        message = str(excinfo.value)
        assert f"expected revision {created['revision']}" in message
        assert f"is {current}" in message

    def test_conflict_message_for_key_rewritten_in_txn(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        key = keys_on_shards(2)[0][0]
        with pytest.raises(ConflictError) as excinfo:
            call(client.txn([
                {"action": "create", "key": key, "data": {"v": 1}},
                {"action": "update", "key": key, "data": {"v": 2},
                 "resource_version": 999},
            ]))
        assert "rewritten by op 0" in str(excinfo.value)

    def test_in_doubt_lock_blocks_writers_until_decision(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        # Arm a commit-point kill so the txn stops right after the
        # decision, leaving both participants prepared (in-doubt).
        coord.arm_phase_kill("commit", restart_after=1.0)
        with pytest.raises(UnavailableError):
            call(client.txn(ops, mode="2pc"))
        assert store.in_doubt_txns == 2
        # A concurrent writer bounces off the lock, retryably.
        with pytest.raises(ConflictError) as excinfo:
            call(client.create(ops[0]["key"], {"other": True}))
        assert "in-doubt" in str(excinfo.value)
        # Recovery (scheduled restart) re-drives the decided commit.
        env.run(until=env.timeout(2.0))
        assert store.in_doubt_txns == 0
        assert call(client.get(ops[0]["key"]))["data"] == ops[0]["data"]

    def test_prepare_kill_presumed_abort(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        coord.arm_phase_kill("prepare", restart_after=0.5)
        with pytest.raises(UnavailableError):
            call(client.txn(ops, mode="2pc"))
        env.run(until=env.timeout(1.0))
        # Presumed abort: nothing applied, nothing in doubt.
        assert store.in_doubt_txns == 0
        for op in ops:
            with pytest.raises(NotFoundError):
                call(client.get(op["key"]))
        assert coord.outcome("txn-000001") == "aborted"


class TestExactlyOnce:
    def test_idempotent_replay_returns_cached_views(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        views = call(client.txn(ops, mode="2pc", idempotence_key="order-1"))
        replay = call(client.txn(ops, mode="2pc", idempotence_key="order-1"))
        # Creates would raise AlreadyExistsError if re-applied: the
        # replay returning cleanly proves nothing double-applied.
        assert [v["key"] for v in replay] == [v["key"] for v in views]
        assert store.coordinator.idempotent_replays == 1
        assert store.coordinator.committed_total == 1

    def test_retry_after_commit_point_kill_is_exactly_once(self, env, net,
                                                           call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        coord.arm_phase_kill("commit", restart_after=0.2)

        def driver(env):
            attempts = 0
            while True:
                attempts += 1
                try:
                    views = yield client.txn(ops, mode="2pc",
                                             idempotence_key="order-9")
                    return attempts, views
                except UnavailableError:
                    yield env.timeout(0.3)

        attempts, views = call(driver(env))
        assert attempts == 2  # first died at the commit point
        assert len(views) == 2 or views == []  # recovered commit: views
        # may have been recorded by recovery (no caller to hand them to)
        for op in ops:
            assert call(client.get(op["key"]))["data"] == op["data"]
        assert coord.committed_total == 1
        assert coord.idempotent_replays == 1

    def test_aborted_key_is_released_for_fresh_retry(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        blocker = call(client.create(ops[0]["key"], {"pre": True}))
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="2pc", idempotence_key="retry-me"))
        call(client.delete(ops[0]["key"]))
        del blocker
        views = call(client.txn(ops, mode="2pc", idempotence_key="retry-me"))
        assert len(views) == 2


class TestParticipantDurability:
    def test_in_doubt_survives_participant_crash(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        coord.arm_phase_kill("commit", restart_after=3.0)
        with pytest.raises(UnavailableError):
            call(client.txn(ops, mode="2pc"))
        assert store.in_doubt_txns == 2
        # Crash + restart one prepared participant: the WAL marker
        # rebuilds the in-doubt hold and its key locks.
        shard = store.shards[0]
        shard.crash()
        assert shard.in_doubt_txns == 0  # memory gone...
        shard.restart()
        assert shard.in_doubt_txns == 1  # ...WAL brought it back
        with pytest.raises(ConflictError):
            call(client.create(cross_shard_ops(2)[0]["key"], {"x": 1}))
        # Coordinator recovery then commits through.
        env.run(until=env.timeout(4.0))
        assert store.in_doubt_txns == 0
        for op in ops:
            assert call(client.get(op["key"]))["data"] == op["data"]

    def test_decided_marker_survives_crash(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        call(client.txn(ops, mode="2pc"))
        shard = store.shards[0]
        shard.crash()
        shard.restart()
        assert shard.in_doubt_txns == 0
        # Re-driving the commit after the crash stays idempotent.
        reply = call(ShardedStoreClient(store, "x").clients[0]
                     .txn_commit("txn-000001"))
        assert reply["state"] == "committed"


class TestSaga:
    def test_saga_commit_applies_everywhere(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        views = call(client.txn(ops, mode="saga"))
        assert len(views) == 2
        for op in ops:
            assert call(client.get(op["key"]))["data"] == op["data"]
        assert store.in_doubt_txns == 0

    def test_saga_failure_compensates_applied_steps(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        # Make the SECOND shard group fail validation: the first group
        # commits eagerly, then must be rolled back.
        call(client.create(ops[1]["key"], {"pre": True}))
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="saga"))
        with pytest.raises(NotFoundError):
            call(client.get(ops[0]["key"]))  # compensated away
        assert call(client.get(ops[1]["key"]))["data"] == {"pre": True}
        assert store.coordinator.compensations_total >= 1
        assert store.in_doubt_txns == 0

    def test_saga_compensation_restores_pre_image(self, env, net, call):
        store = make_store(env, net)
        client = ShardedStoreClient(store, "caller")
        per_shard = keys_on_shards(2, count_per_shard=1)
        k0, k1 = per_shard[0][0], per_shard[1][0]
        call(client.create(k0, {"v": "original"}))
        ops = [
            {"action": "update", "key": k0, "data": {"v": "changed"}},
            {"action": "update", "key": k1, "data": {"v": "x"}},  # missing
        ]
        with pytest.raises(NotFoundError):
            call(client.txn(ops, mode="saga"))
        assert call(client.get(k0))["data"] == {"v": "original"}

    def test_registered_compensation_overrides_derived(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        tombstones = []

        def tombstone(op, pre_image):
            tombstones.append(op["key"])
            return {"action": "update", "key": op["key"],
                    "data": {"state": "cancelled"}}

        coord.register_compensation("create", tombstone)
        ops = cross_shard_ops(2)
        call(client.create(ops[1]["key"], {"pre": True}))
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="saga"))
        # Instead of deleting, the registered compensation tombstoned.
        assert tombstones == [ops[0]["key"]]
        assert call(client.get(ops[0]["key"]))["data"] == {
            "state": "cancelled"}

    def test_saga_kill_mid_steps_rolls_back_on_recovery(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        # Fire on the SECOND prepare: step 0 already committed.
        call(client.txn([{"action": "create", "key": "warm-x",
                          "data": {}}]))  # warm nothing; keep ids stable
        done_first = []

        def run(env):
            coord_proc = client.txn(ops, mode="saga")
            try:
                yield coord_proc
            except UnavailableError:
                done_first.append(True)

        # Arm at "commit" of a saga step: the kill fires after step 0's
        # prepare, before its commit -- or use phase "compensate" via a
        # failing batch.  Here: arm "commit" fires on FIRST step commit;
        # instead arm the kill at the second step by arming after step
        # one completes is not expressible -- so arm "compensate" with a
        # failing second group and assert recovery finishes the rollback.
        call(client.create(ops[1]["key"], {"pre": True}))
        coord.arm_phase_kill("compensate", restart_after=0.5)
        call(env.process(run(env)))
        assert done_first == [True]
        env.run(until=env.timeout(2.0))
        # Recovery completed the compensation: step 0 rolled back.
        with pytest.raises(NotFoundError):
            call(client.get(ops[0]["key"]))
        assert store.in_doubt_txns == 0


class TestKillDuringTxnPlan:
    def test_plan_sugar_validates_phase(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().kill_during_txn("coord", "fsync", at=0.1, duration=0.2)

    def test_injector_arms_and_fires_phase_kill(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        plan = FaultPlan().kill_during_txn("coord", "commit",
                                           at=0.05, duration=0.3)
        injector = FaultInjector(env, net, processes={"coord": coord})
        injector.schedule(plan)
        ops = cross_shard_ops(2)

        def driver(env):
            yield env.timeout(0.1)  # inside the armed window
            while True:
                try:
                    views = yield client.txn(ops, mode="2pc",
                                             idempotence_key="k1")
                    return views
                except UnavailableError:
                    yield env.timeout(0.1)

        call(env.process(driver(env)))
        assert coord.kill_count == 1
        assert coord.recoveries == 1
        assert store.in_doubt_txns == 0
        for op in ops:
            assert call(client.get(op["key"]))["data"] == op["data"]
        kills = [e for e in injector.events if e[2] == "kill"]
        assert len(kills) == 2  # begin + end logged deterministically

    def test_unfired_arm_is_withdrawn_at_window_end(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        client = ShardedStoreClient(store, "caller")
        plan = FaultPlan().kill_during_txn("coord", "commit",
                                           at=0.05, duration=0.1)
        FaultInjector(env, net, processes={"coord": coord}).schedule(plan)
        env.run(until=env.timeout(0.5))
        # No txn ran during the window: coordinator alive, not armed.
        assert coord.alive
        assert coord._phase_kill is None
        views = call(client.txn(cross_shard_ops(2), mode="2pc"))
        assert len(views) == 2
        assert coord.kill_count == 0


class TestTransactionalFunctions:
    def make_kv(self, env, zero_net):
        server = MemKV(env, zero_net, watch_overhead=0.0)
        return server, MemKVClient(server, "app")

    def test_fcall_txn_read_modify_write_is_atomic(self, env, zero_net, call):
        server, client = self.make_kv(env, zero_net)
        call(client.create("acct/a", {"balance": 100}))
        call(client.create("acct/b", {"balance": 0}))

        def transfer(ctx, amount):
            a = ctx.get("acct/a")["data"]["balance"]
            b = ctx.get("acct/b")["data"]["balance"]
            ctx.update("acct/a", {"balance": a - amount})
            ctx.update("acct/b", {"balance": b + amount})
            return {"moved": amount}

        server.functions.register("transfer", transfer)
        result = call(client.fcall_txn("transfer", 30))
        assert result == {"moved": 30}
        assert call(client.get("acct/a"))["data"]["balance"] == 70
        assert call(client.get("acct/b"))["data"]["balance"] == 30

    def test_fcall_txn_idempotence_key_dedupes(self, env, zero_net, call):
        server, client = self.make_kv(env, zero_net)
        call(client.create("counter", {"n": 0}))

        def bump(ctx):
            n = ctx.get("counter")["data"]["n"]
            ctx.update("counter", {"n": n + 1})
            return n + 1

        server.functions.register("bump", bump)
        first = call(client.fcall_txn("bump", idempotence_key="evt-1"))
        replay = call(client.fcall_txn("bump", idempotence_key="evt-1"))
        assert first == replay == 1
        assert call(client.get("counter"))["data"]["n"] == 1
        assert server.fcall_replays == 1
        # A different key applies again.
        assert call(client.fcall_txn("bump", idempotence_key="evt-2")) == 2

    def test_fcall_txn_buffered_reads_see_own_writes(self, env, zero_net,
                                                     call):
        server, client = self.make_kv(env, zero_net)

        def chain(ctx):
            ctx.create("x", {"v": 1})
            seen = ctx.get("x")["data"]["v"]  # read-your-writes
            ctx.patch("x", {"w": seen + 1})
            return ctx.exists("x")

        server.functions.register("chain", chain)
        assert call(client.fcall_txn("chain")) is True
        assert call(client.get("x"))["data"] == {"v": 1, "w": 2}

    def test_integrator_as_transactional_function(self, env, zero_net, call):
        server, client = self.make_kv(env, zero_net)

        def reconcile(ctx, key):
            order = ctx.get(key)["data"]
            if order.get("receipted"):
                return None
            ctx.create(f"receipts/{key}", {"total": order["cost"]})
            ctx.patch(key, {"receipted": True})
            return key

        integrator = TxnFunctionIntegrator(
            "receipter", client, reconcile, key_prefix="orders/"
        )
        integrator.bind(None)
        integrator.start()
        call(client.create("orders/o1", {"cost": 42}))
        env.run(until=env.timeout(0.5))
        assert call(client.get("receipts/orders/o1"))["data"] == {"total": 42}
        assert call(client.get("orders/o1"))["data"]["receipted"] is True
        # Level-triggered convergence: the patch event re-invoked the
        # function, which saw receipted=True and wrote nothing.
        assert integrator.invocations >= 2
        assert integrator.failures == []


class TestObsIntegration:
    def test_spans_and_counters_for_recovery(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        plane = ObsPlane(env)
        coord.tracer = plane.causal
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        coord.arm_phase_kill("commit", restart_after=0.2)
        with pytest.raises(UnavailableError):
            call(client.txn(ops, mode="2pc"))
        assert store.in_doubt_txns == 2
        env.run(until=env.timeout(1.0))
        assert store.in_doubt_txns == 0  # drained by recovery
        names = {span.name for span in plane.causal.spans.values()}
        assert {"txn", "txn-prepare", "txn-commit", "txn-recovery"} <= names
        stats = store.txn_stats()
        assert stats["committed"] == 1
        assert stats["recoveries"] == 1

    def test_abort_and_compensate_spans(self, env, net, call):
        store = make_store(env, net)
        coord = store.coordinator
        plane = ObsPlane(env)
        coord.tracer = plane.causal
        client = ShardedStoreClient(store, "caller")
        ops = cross_shard_ops(2)
        call(client.create(ops[1]["key"], {"pre": True}))
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="2pc"))
        with pytest.raises(AlreadyExistsError):
            call(client.txn(ops, mode="saga", idempotence_key="s1"))
        names = {span.name for span in plane.causal.spans.values()}
        assert {"txn-abort", "txn-compensate"} <= names
