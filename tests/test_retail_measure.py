"""Unit tests for the Table 2 stage-extraction machinery."""

import pytest

from repro.apps.retail import measure
from repro.errors import ConfigurationError


class TestStageExtraction:
    def test_unknown_setup_rejected(self):
        with pytest.raises(ConfigurationError):
            measure.run_knactor_setup("K-mongodb")

    def test_incomplete_requests_skipped(self):
        """Requests cut off by the horizon must not poison the stats."""
        bd = measure.run_knactor_setup("K-redis", orders=3, spacing=0.2)
        # All three got long enough to complete in run_until_quiet.
        assert bd.count() == 3

    def test_stage_identity(self):
        """Prop. == C-I + I + I-S (within float noise), per request."""
        bd = measure.run_knactor_setup("K-redis", orders=5)
        for ci, i, i_s, prop in zip(
            bd.stages["C-I"], bd.stages["I"], bd.stages["I-S"],
            bd.stages["Prop."],
        ):
            assert prop == pytest.approx(ci + i + i_s, abs=1e-9)

    def test_total_is_prop_plus_s(self):
        bd = measure.run_knactor_setup("K-redis", orders=5)
        for prop, s, total in zip(
            bd.stages["Prop."], bd.stages["S"], bd.stages["Total"]
        ):
            assert total == pytest.approx(prop + s, abs=1e-9)

    def test_deterministic_given_seed(self):
        a = measure.run_knactor_setup("K-redis", orders=3, seed=9)
        b = measure.run_knactor_setup("K-redis", orders=3, seed=9)
        assert a.stages == b.stages

    def test_rpc_rows_have_no_knactor_stages(self):
        bd = measure.run_rpc_setup(orders=3)
        row = bd.row()
        assert row["C-I"] is None and row["I"] is None and row["I-S"] is None
        assert row["S"] is not None and row["Total"] is not None

    def test_paper_reference_table_complete(self):
        for setup, row in measure.PAPER_TABLE2.items():
            assert set(row) == {"C-I", "I", "I-S", "S", "Prop.", "Total"}, setup
