"""Tests for the autoscaler and the Chrome-trace exporter."""

import json

import pytest

from repro.cluster import Cluster, Image, Node
from repro.cluster.autoscaler import HorizontalAutoscaler
from repro.errors import ClusterError
from repro.simnet import Environment, Tracer


@pytest.fixture
def cluster(env):
    return Cluster(env, nodes=[Node("n1", capacity=32), Node("n2", capacity=32)])


def make_autoscaler(env, cluster, load_holder, **kwargs):
    env.run(until=cluster.create_deployment("svc", Image("svc", "v1"), replicas=2))
    defaults = dict(
        cluster=cluster,
        deployment_name="svc",
        metric=lambda: load_holder["load"],
        target_load_per_replica=10.0,
        min_replicas=1,
        max_replicas=8,
        interval=5.0,
        cooldown=0.0,
    )
    defaults.update(kwargs)
    return HorizontalAutoscaler(**defaults)


class TestAutoscaler:
    def test_scales_up_under_load(self, env, cluster):
        load = {"load": 55.0}  # needs ceil(55/10) = 6 replicas
        scaler = make_autoscaler(env, cluster, load)
        scaler.start()
        env.run(until=30.0)
        assert len(cluster.deployment("svc").ready_pods) == 6
        assert scaler.events and scaler.events[0].to_replicas == 6

    def test_scales_down_when_idle(self, env, cluster):
        load = {"load": 0.0}
        scaler = make_autoscaler(env, cluster, load)
        scaler.start()
        env.run(until=30.0)
        assert len(cluster.deployment("svc").ready_pods) == 1

    def test_bounded_by_max(self, env, cluster):
        load = {"load": 10_000.0}
        scaler = make_autoscaler(env, cluster, load, max_replicas=4)
        scaler.start()
        env.run(until=30.0)
        assert len(cluster.deployment("svc").ready_pods) == 4

    def test_cooldown_prevents_flapping(self, env, cluster):
        load = {"load": 55.0}
        scaler = make_autoscaler(env, cluster, load, cooldown=1000.0)
        scaler.start()
        env.run(until=12.0)
        load["load"] = 0.0
        env.run(until=60.0)
        # Only the initial scale-up happened; the scale-down is cooling.
        assert len(scaler.events) == 1

    def test_stop_halts_scaling(self, env, cluster):
        load = {"load": 55.0}
        scaler = make_autoscaler(env, cluster, load)
        scaler.start()
        scaler.stop()
        env.run(until=30.0)
        assert scaler.events == []

    def test_desired_replicas_formula(self, env, cluster):
        scaler = make_autoscaler(env, cluster, {"load": 0})
        assert scaler.desired_replicas(0, 2) == 1
        assert scaler.desired_replicas(10, 2) == 1
        assert scaler.desired_replicas(11, 2) == 2
        assert scaler.desired_replicas(10**9, 2) == 8

    def test_invalid_configuration(self, env, cluster):
        with pytest.raises(ClusterError):
            make_autoscaler(env, cluster, {"load": 0}, target_load_per_replica=0)
        cluster2 = Cluster(env)
        env.run(until=cluster2.create_deployment("svc2", Image("s", "v1")))
        with pytest.raises(ClusterError):
            HorizontalAutoscaler(
                cluster=cluster2, deployment_name="svc2", metric=lambda: 0,
                target_load_per_replica=1.0, min_replicas=5, max_replicas=2,
            )


class TestChromeTrace:
    def test_export_shape(self, env):
        tracer = Tracer(env)
        tracer.record("cast", "begin", cid="o1")
        tracer.begin("stage", "work", key="o1", cid="o1")
        env.run(until=2.5)
        tracer.end("stage", "work", key="o1")
        entries = tracer.to_chrome_trace()
        assert len(entries) == 2
        instant = next(e for e in entries if e["ph"] == "i")
        complete = next(e for e in entries if e["ph"] == "X")
        assert instant["name"] == "begin" and instant["tid"] == "o1"
        assert complete["dur"] == pytest.approx(2.5e6)
        json.dumps(entries)  # must be JSON-serializable

    def test_entries_sorted_by_time(self, env):
        tracer = Tracer(env)
        tracer.begin("b", "span")
        env.run(until=3.0)
        tracer.record("a", "late")
        env.run(until=4.0)
        tracer.end("b", "span")
        entries = tracer.to_chrome_trace()
        times = [e["ts"] for e in entries]
        assert times == sorted(times)
        assert entries[0]["ph"] == "X"  # the span started first

    def test_open_spans_excluded(self, env):
        tracer = Tracer(env)
        tracer.begin("x", "never-closed")
        assert tracer.to_chrome_trace() == []

    def test_real_app_trace_exports(self):
        from repro.apps.retail.knactor_app import RetailKnactorApp
        from repro.apps.retail.workload import OrderWorkload
        from repro.core.optimizer import K_REDIS

        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        key, data = OrderWorkload(seed=7).next_order()
        app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=30.0)
        entries = app.tracer.to_chrome_trace()
        assert len(entries) > 10
        categories = {e["cat"] for e in entries}
        assert {"store", "cast", "reconciler"} <= categories
        json.dumps(entries)
