"""End-to-end tests for the Cast integrator (watch-driven DXG execution)."""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.errors import ConfigurationError, DXGAnalysisError
from repro.exchange import ObjectDE
from repro.store import ApiServer, MemKV

CHECKOUT = """\
schema: Retail/v1/Checkout/Order
items: array
address: string
cost: number
currency: string
shippingCost: number # +kr: external
trackingID: string # +kr: external
"""

SHIPPING = """\
schema: Retail/v1/Shipping/Shipment
items: array # +kr: external
addr: string # +kr: external
method: string # +kr: external
id: string
quote:
  price: number
  currency: string
"""

DXG = """\
Input:
  C: Retail/v1/Checkout/knactor-checkout
  S: Retail/v1/Shipping/knactor-shipping
DXG:
  C.order:
    shippingCost: currency_convert(S.quote.price, S.quote.currency, this.currency)
    trackingID: S.id
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""


class ShippingReconciler(Reconciler):
    """Quotes and assigns a tracking id to every shipment it sees."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("id") or not obj.get("addr"):
            return
        yield ctx.store.patch(
            key,
            {
                "id": f"trk-{key}",
                "quote": {"price": 7.0, "currency": "USD"},
            },
        )


def build_runtime(env, net, backend_cls=ApiServer, pushdown=False):
    runtime = KnactorRuntime(env, network=net)
    backend = backend_cls(env, net, location="object-backend", watch_overhead=0.0)
    de = ObjectDE(env, backend)
    runtime.add_exchange("object", de)
    runtime.add_knactor(
        Knactor("checkout", [StoreBinding("default", "object", CHECKOUT)])
    )
    runtime.add_knactor(
        Knactor(
            "shipping",
            [StoreBinding("default", "object", SHIPPING)],
            reconciler=ShippingReconciler(),
        )
    )
    de.grant("retail-cast", "knactor-checkout", role="integrator")
    de.grant("retail-cast", "knactor-shipping", role="integrator")
    cast = Cast("retail-cast", DXG, pushdown=pushdown)
    runtime.add_integrator(cast)
    runtime.start()
    return runtime, de, cast


def place_order(runtime, call, cost=100, key="order/o1"):
    checkout = runtime.handle_of("checkout")
    call(
        checkout.create(
            key,
            {
                "items": [{"name": "mug"}, {"name": "pen"}],
                "address": "12 Elm St",
                "cost": cost,
                "currency": "USD",
            },
        )
    )
    return checkout


class TestEndToEnd:
    def test_full_exchange_loop(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net)
        checkout = place_order(runtime, call)
        env.run()
        # The order was filled back by the cast after the shipping
        # reconciler produced id + quote.
        order = call(checkout.get("order/o1"))["data"]
        assert order["trackingID"] == "trk-o1"
        assert order["shippingCost"] == pytest.approx(7.0)
        shipment = call(runtime.handle_of("shipping").get("o1"))["data"]
        assert shipment["items"] == ["mug", "pen"]
        assert shipment["method"] == "ground"
        assert cast.exchanges_run >= 2

    def test_no_code_coupling(self, env, zero_net, call):
        """Checkout never references shipping: composition is external."""
        runtime, de, _cast = build_runtime(env, zero_net)
        place_order(runtime, call)
        env.run()
        matrix = de.audit.exchange_matrix()
        # Checkout touches only its own store.
        checkout_targets = {s for (p, s) in matrix if p == "checkout"}
        assert checkout_targets == {"knactor-checkout"}
        shipping_targets = {s for (p, s) in matrix if p == "shipping"}
        assert shipping_targets == {"knactor-shipping"}
        # Only the integrator touches both.
        cast_targets = {s for (p, s) in matrix if p == "retail-cast"}
        assert cast_targets == {"knactor-checkout", "knactor-shipping"}

    def test_conditional_policy(self, env, zero_net, call):
        runtime, _de, _cast = build_runtime(env, zero_net)
        place_order(runtime, call, cost=5000, key="order/big")
        env.run()
        shipment = call(runtime.handle_of("shipping").get("big"))["data"]
        assert shipment["method"] == "air"

    def test_many_orders_all_complete(self, env, zero_net, call):
        runtime, _de, _cast = build_runtime(env, zero_net)
        checkout = runtime.handle_of("checkout")
        for i in range(20):
            place_order(runtime, call, key=f"order/o{i}")
        env.run()
        for i in range(20):
            order = call(checkout.get(f"order/o{i}"))["data"]
            assert order["trackingID"] == f"trk-o{i}"

    def test_system_quiesces(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net)
        place_order(runtime, call)
        env.run()
        runs = cast.exchanges_run
        env.run(until=env.now + 60.0)
        assert cast.exchanges_run == runs


class TestReconfiguration:
    def test_add_policy_at_runtime(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net)
        place_order(runtime, call, cost=200, key="order/o1")
        env.run()
        # New composition policy: loyalty discount on shipping cost.
        generation = cast.set_assignment(
            "C.order", "shippingCost", "S.quote.price * 0.5"
        )
        assert generation == cast.generation
        place_order(runtime, call, cost=200, key="order/o2")
        env.run()
        checkout = runtime.handle_of("checkout")
        assert call(checkout.get("order/o2"))["data"]["shippingCost"] == pytest.approx(3.5)

    def test_remove_assignment(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net)
        cast.remove_assignment("C.order", "trackingID")
        place_order(runtime, call)
        env.run()
        checkout = runtime.handle_of("checkout")
        assert "trackingID" not in call(checkout.get("order/o1"))["data"]

    def test_reconfigure_records_history(self, env, zero_net):
        runtime, _de, cast = build_runtime(env, zero_net)
        cast.set_assignment("S", "method", "'ground'")
        cast.set_assignment("S", "method", "'air'")
        assert cast.generation == 2
        assert len(cast.reconfigurations) == 2

    def test_invalid_reconfiguration_rejected_atomically(self, env, zero_net):
        runtime, _de, cast = build_runtime(env, zero_net)
        with pytest.raises(DXGAnalysisError):
            cast.set_assignment("S", "nonexistentField", "C.order.cost")
        # Old config still live.
        assert cast.generation == 0
        assert cast.executor is not None

    def test_amend_without_spec_requires_existing(self, env, zero_net):
        runtime = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net))
        runtime.add_exchange("object", de)
        cast = Cast("c", DXG)
        with pytest.raises(ConfigurationError):
            cast._apply_configuration(spec=DXG, body={})


class TestPushdown:
    def test_pushdown_end_to_end(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net, backend_cls=MemKV,
                                           pushdown=True)
        checkout = place_order(runtime, call)
        env.run()
        order = call(checkout.get("order/o1"))["data"]
        assert order["trackingID"] == "trk-o1"
        assert order["shippingCost"] == pytest.approx(7.0)

    def test_pushdown_requires_udf_backend(self, env, zero_net):
        with pytest.raises(ConfigurationError):
            build_runtime(env, zero_net, backend_cls=ApiServer, pushdown=True)

    def test_pushdown_is_faster_than_remote_on_slow_network(self, env, call):
        from repro.simnet import FixedLatency, Network

        def time_to_complete(pushdown):
            local_env = type(env)()
            net = Network(local_env, default_latency=FixedLatency(0.002))
            runtime, _de, _cast = build_runtime(
                local_env, net, backend_cls=MemKV, pushdown=pushdown
            )
            checkout = runtime.handle_of("checkout")
            proc = checkout.create(
                "order/o1",
                {"items": [{"name": "mug"}], "address": "x",
                 "cost": 10, "currency": "USD"},
            )
            local_env.run(until=proc)
            local_env.run()
            return local_env.now

        assert time_to_complete(True) < time_to_complete(False)


class TestStatus:
    def test_status_reports_counters(self, env, zero_net, call):
        runtime, _de, cast = build_runtime(env, zero_net)
        place_order(runtime, call)
        env.run()
        status = cast.status()
        assert status["exchanges_run"] >= 1
        assert status["assignments"] == 5
        assert status["started"]
