"""Integration tests for the RPC retail baseline."""

import pytest

from repro.apps.retail.rpc_app import RetailRpcApp
from repro.apps.retail.workload import OrderWorkload
from repro.errors import RPCStatusError


@pytest.fixture
def app():
    return RetailRpcApp.build()


def order_data(seed=7, **overrides):
    _key, data = OrderWorkload(seed=seed).next_order()
    data.update(overrides)
    return data


class TestPlaceOrder:
    def test_end_to_end(self, app):
        response = app.env.run(until=app.place_order(order_data()))
        assert response["order_id"] == "o00001"
        assert response["tracking_id"].startswith("trk-")
        assert response["transaction_id"].startswith("ch-")
        assert response["total_cost"] > 0

    def test_email_sent(self, app):
        app.env.run(until=app.place_order(order_data(email="a@b.com")))
        assert len(app.impls["email"].sent) == 1
        assert app.impls["email"].sent[0]["email"] == "a@b.com"

    def test_latency_dominated_by_shipping(self, app):
        start = app.env.now
        app.env.run(until=app.place_order(order_data()))
        elapsed = app.env.now - start
        assert 0.4 < elapsed < 0.7  # carrier call ~446 ms dominates

    def test_missing_card_token_fails_order(self, app):
        with pytest.raises(RPCStatusError) as excinfo:
            app.env.run(until=app.place_order(order_data(cardToken="")))
        assert excinfo.value.code == "INVALID_ARGUMENT"

    def test_sequential_orders_get_distinct_ids(self, app):
        first = app.env.run(until=app.place_order(order_data()))
        second = app.env.run(until=app.place_order(order_data()))
        assert first["order_id"] != second["order_id"]
        assert first["tracking_id"] != second["tracking_id"]


class TestSupportingServices:
    def test_catalog(self, app):
        from repro.rpc import RPCChannel

        channel = RPCChannel(
            app.env, app.servers["ProductCatalogService"], "tester"
        )
        products = app.env.run(
            until=channel.call("ProductCatalogService", "ListProducts", {})
        )
        assert len(products["products"]) == 3
        found = app.env.run(
            until=channel.call("ProductCatalogService", "GetProduct", {"id": "mug"})
        )
        assert found["price_usd"] == 8.5
        with pytest.raises(RPCStatusError):
            app.env.run(
                until=channel.call(
                    "ProductCatalogService", "GetProduct", {"id": "nope"}
                )
            )

    def test_cart_roundtrip(self, app):
        from repro.rpc import RPCChannel

        channel = RPCChannel(app.env, app.servers["CartService"], "tester")
        app.env.run(
            until=channel.call(
                "CartService", "AddItem",
                {"user_id": "u1", "item": {"product_id": "mug", "quantity": 2}},
            )
        )
        cart = app.env.run(
            until=channel.call("CartService", "GetCart", {"user_id": "u1"})
        )
        assert cart["items"][0]["product_id"] == "mug"
        app.env.run(
            until=channel.call("CartService", "EmptyCart", {"user_id": "u1"})
        )
        cart = app.env.run(
            until=channel.call("CartService", "GetCart", {"user_id": "u1"})
        )
        assert cart["items"] == []


class TestScatteringSurface:
    def test_fifteen_methods_across_services(self, app):
        """The paper's §2 count: 15 API-handling methods in the web app."""
        assert app.rpc_method_count() == 15

    def test_checkout_holds_four_downstream_stubs(self, app):
        checkout = app.impls["checkout"]
        stubs = [checkout.currency, checkout.payment, checkout.shipping,
                 checkout.email]
        assert len(stubs) == 4  # the coupling Table 1's T1 row pays for
