"""Tests for atomic transactions: backend, DE, and executor levels."""

import pytest

from repro.errors import (
    AccessDeniedError,
    AlreadyExistsError,
    ConfigurationError,
    ConflictError,
    NotFoundError,
    SchemaError,
    StoreError,
)
from repro.exchange import ObjectDE
from repro.store import ApiServer, ApiServerClient, MemKV, MemKVClient


@pytest.fixture
def client(env, zero_net):
    return ApiServerClient(ApiServer(env, zero_net, watch_overhead=0.0), "t")


class TestBackendTxn:
    def test_create_and_patch_atomically(self, client, call):
        views = call(
            client.txn(
                [
                    {"action": "create", "key": "a", "data": {"v": 1}},
                    {"action": "create", "key": "b", "data": {"v": 2}},
                    {"action": "patch", "key": "a", "patch": {"w": 3}},
                ]
            )
        )
        assert len(views) == 3
        assert call(client.get("a"))["data"] == {"v": 1, "w": 3}
        assert call(client.get("b"))["data"] == {"v": 2}

    def test_any_failure_applies_nothing(self, client, call):
        call(client.create("existing", {"v": 0}))
        with pytest.raises(AlreadyExistsError):
            call(
                client.txn(
                    [
                        {"action": "create", "key": "new", "data": {"v": 1}},
                        {"action": "create", "key": "existing", "data": {}},
                    ]
                )
            )
        with pytest.raises(NotFoundError):
            call(client.get("new"))  # first op must NOT have applied

    def test_missing_target_aborts(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.txn([{"action": "patch", "key": "ghost", "patch": {}}]))

    def test_stale_resource_version_aborts(self, client, call):
        created = call(client.create("k", {"v": 1}))
        call(client.update("k", {"v": 2}))
        with pytest.raises(ConflictError):
            call(
                client.txn(
                    [
                        {"action": "create", "key": "other", "data": {}},
                        {"action": "update", "key": "k", "data": {"v": 3},
                         "resource_version": created["revision"]},
                    ]
                )
            )
        with pytest.raises(NotFoundError):
            call(client.get("other"))

    def test_create_then_patch_same_key_is_legal(self, client, call):
        call(
            client.txn(
                [
                    {"action": "create", "key": "x", "data": {"v": 1}},
                    {"action": "patch", "key": "x", "patch": {"w": 2}},
                ]
            )
        )
        assert call(client.get("x"))["data"] == {"v": 1, "w": 2}

    def test_delete_within_txn(self, client, call):
        call(client.create("gone", {"v": 1}))
        call(
            client.txn(
                [
                    {"action": "delete", "key": "gone"},
                    {"action": "create", "key": "kept", "data": {}},
                ]
            )
        )
        with pytest.raises(NotFoundError):
            call(client.get("gone"))
        assert call(client.get("kept"))

    def test_empty_or_malformed_rejected(self, client, call):
        with pytest.raises(StoreError):
            call(client.txn([]))
        with pytest.raises(StoreError):
            call(client.txn([{"action": "explode", "key": "k"}]))
        with pytest.raises(StoreError):
            call(client.txn([{"action": "create"}]))

    def test_watchers_see_all_events_in_order(self, env, client, call):
        events = []
        client.watch(events.append)
        call(
            client.txn(
                [
                    {"action": "create", "key": "a", "data": {"v": 1}},
                    {"action": "create", "key": "b", "data": {"v": 2}},
                ]
            )
        )
        env.run()
        assert [e.key for e in events] == ["a", "b"]
        assert events[1].revision == events[0].revision + 1

    def test_memkv_txn_parity(self, env, zero_net, call):
        client = MemKVClient(MemKV(env, zero_net, watch_overhead=0.0), "t")
        call(
            client.txn(
                [
                    {"action": "create", "key": "a", "data": {"v": 1}},
                    {"action": "patch", "key": "a", "patch": {"v": 2}},
                ]
            )
        )
        assert call(client.get("a"))["data"] == {"v": 2}


ORDER_SCHEMA = """\
schema: App/v1/Checkout/Order
cost: number
trackingID: string # +kr: external
"""

SHIPMENT_SCHEMA = """\
schema: App/v1/Shipping/Shipment
addr: string # +kr: external
internal: string
"""


@pytest.fixture
def de(env, zero_net):
    exchange = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
    exchange.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
    exchange.host_store("knactor-shipping", SHIPMENT_SCHEMA, owner="shipping")
    exchange.grant("cast", "knactor-checkout", role="integrator")
    exchange.grant("cast", "knactor-shipping", role="integrator")
    return exchange


class TestDETransaction:
    def test_cross_store_atomic_commit(self, de, call):
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("o1", {"cost": 10}))
        txn = de.transaction("cast")
        txn.patch("knactor-checkout", "o1", {"trackingID": "trk-1"})
        txn.create("knactor-shipping", "o1", {"addr": "12 Elm St"})
        views = call(txn.commit())
        assert len(views) == 2
        assert call(checkout.get("o1"))["data"]["trackingID"] == "trk-1"
        shipping = de.handle("knactor-shipping", principal="shipping")
        assert call(shipping.get("o1"))["data"]["addr"] == "12 Elm St"

    def test_acl_enforced_per_operation(self, de):
        txn = de.transaction("cast")
        with pytest.raises(AccessDeniedError):
            txn.patch("knactor-checkout", "o1", {"cost": 0.01})  # not external
        with pytest.raises(AccessDeniedError):
            de.transaction("stranger").patch(
                "knactor-checkout", "o1", {"trackingID": "x"}
            )

    def test_schema_enforced_per_operation(self, de):
        txn = de.transaction("checkout")
        with pytest.raises(SchemaError):
            txn.create("knactor-checkout", "o1", {"cost": "free"})

    def test_empty_and_double_commit_rejected(self, de, call):
        txn = de.transaction("checkout")
        with pytest.raises(ConfigurationError):
            txn.commit()
        txn.create("knactor-checkout", "o1", {"cost": 1})
        call(txn.commit())
        with pytest.raises(ConfigurationError):
            txn.commit()

    def test_failed_txn_leaves_no_partial_state(self, de, call):
        shipping = de.handle("knactor-shipping", principal="shipping")
        call(shipping.create("dup", {"internal": "x"}))
        txn = de.transaction("cast")
        txn.patch("knactor-checkout", "ghost", {"trackingID": "t"})  # missing
        txn.create("knactor-shipping", "fresh", {"addr": "a"})
        with pytest.raises(NotFoundError):
            call(txn.commit())
        with pytest.raises(NotFoundError):
            call(shipping.get("fresh"))


class TestTransactionalExecutor:
    def build(self, env, zero_net, transactional):
        from repro.core.dxg import DXGExecutor, parse_dxg
        from repro.core.dxg.executor import ExecutorOptions

        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        de.host_store("knactor-checkout", ORDER_SCHEMA, owner="checkout")
        de.host_store("knactor-shipping", SHIPMENT_SCHEMA, owner="shipping")
        de.grant("cast", "knactor-checkout", role="integrator")
        de.grant("cast", "knactor-shipping", role="integrator")
        dxg = (
            "Input:\n"
            "  C: App/v1/Checkout/knactor-checkout\n"
            "  S: App/v1/Shipping/knactor-shipping\n"
            "DXG:\n"
            "  C:\n"
            "    trackingID: S.internal\n"
            "  S:\n"
            "    addr: concat('addr-for-', C.cost)\n"
        )
        executor = DXGExecutor(
            env, parse_dxg(dxg),
            handles={"C": de.handle("knactor-checkout", principal="cast"),
                     "S": de.handle("knactor-shipping", principal="cast")},
            options=ExecutorOptions(transactional=transactional),
        )
        return de, executor

    def test_transactional_matches_plain_results(self, env, zero_net, call):
        final = {}
        for transactional in (False, True):
            de, executor = self.build(env, zero_net, transactional)
            checkout = de.handle("knactor-checkout", principal="checkout")
            call(checkout.create(f"o-{transactional}", {"cost": 42}))
            call(executor.exchange(f"o-{transactional}"))
            shipping = de.handle("knactor-shipping", principal="shipping")
            final[transactional] = call(
                shipping.get(f"o-{transactional}")
            )["data"]
        assert final[True] == final[False]

    def test_one_commit_per_pass(self, env, zero_net, call):
        de, executor = self.build(env, zero_net, transactional=True)
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("o1", {"cost": 42}))
        stats = call(executor.exchange("o1"))
        assert stats.writes == 1  # the shipment create, one atomic commit
        assert stats.creates == 1

    def test_transactional_idempotent(self, env, zero_net, call):
        de, executor = self.build(env, zero_net, transactional=True)
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("o1", {"cost": 42}))
        call(executor.exchange("o1"))
        stats = call(executor.exchange("o1"))
        assert stats.writes == 0
