"""Fault injection: link faults, store crashes, WAL recovery, injector."""

import pytest

from repro.core import Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.errors import ConfigurationError, UnavailableError
from repro.exchange import ObjectDE
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer, ApiServerClient, MemKV, MemKVClient
from repro.store.base import OpLatency


class TestNetworkFaultRules:
    def test_partition_loses_both_directions(self, env, net):
        net.partition("a", "b")
        assert net.fault_verdict("a", "b")[0] is True
        assert net.fault_verdict("b", "a")[0] is True
        assert net.is_partitioned("a", "b")
        net.heal("a", "b")
        assert net.fault_verdict("a", "b") == (False, 0.0)

    def test_wildcard_partition_matches_any_peer(self, env, net):
        net.partition("a", "*")
        assert net.fault_verdict("a", "x")[0] is True
        assert net.fault_verdict("y", "a")[0] is True
        assert net.fault_verdict("x", "y")[0] is False

    def test_drop_rate_is_seeded_and_partial(self, env, net):
        net.set_drop_rate("a", "b", rate=0.5, seed=99)
        verdicts = [net.fault_verdict("a", "b")[0] for _ in range(200)]
        assert 0 < sum(verdicts) < 200  # some lost, some delivered
        net.clear_drop_rate("a", "b")
        fresh = Network(env, default_latency=FixedLatency(0.0))
        fresh.set_drop_rate("a", "b", rate=0.5, seed=99)
        again = [fresh.fault_verdict("a", "b")[0] for _ in range(200)]
        assert verdicts == again  # same seed, same losses

    def test_latency_spike_adds_delay(self, env, net):
        net.set_extra_latency("a", "b", 0.05)
        lost, extra = net.fault_verdict("a", "b")
        assert not lost
        assert extra == pytest.approx(0.05)
        net.clear_extra_latency("a", "b")
        assert net.fault_verdict("a", "b") == (False, 0.0)

    def test_heal_all_clears_every_rule(self, env, net):
        net.partition("a", "b")
        net.set_drop_rate("c", "d", rate=1.0)
        net.set_extra_latency("e", "f", 0.1)
        net.heal_all()
        for pair in (("a", "b"), ("c", "d"), ("e", "f")):
            assert net.fault_verdict(*pair) == (False, 0.0)

    def test_partitioned_transfer_raises_retryable(self, env, net, call):
        net.partition("client", "server")

        def attempt(env):
            yield net.transfer("client", "server", "ping")

        with pytest.raises(UnavailableError) as err:
            call(attempt(env))
        assert err.value.retryable


class TestApiServerCrashRecovery:
    def test_wal_replay_restores_objects_and_revisions(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        call(client.create("k1", {"v": 1}, labels={"tier": "gold"}))
        call(client.update("k1", {"v": 2}))
        call(client.create("k2", {"v": 3}))
        call(client.delete("k2"))
        before = call(client.get("k1"))
        revision_before = server.revision

        server.crash()
        env.run()
        assert not server.available
        assert server._objects == {}
        server.restart()
        env.run()

        after = call(client.get("k1"))
        assert after["data"] == before["data"]
        assert after["revision"] == before["revision"]
        assert server._objects["k1"].labels == {"tier": "gold"}
        assert server.revision == revision_before
        with pytest.raises(Exception):
            call(client.get("k2"))  # deleted before the crash; stays deleted
        assert server.crash_count == 1
        assert server.wal_length >= 4

    def test_ops_fail_retryably_while_down(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        server.crash()
        env.run()
        with pytest.raises(UnavailableError) as err:
            call(client.get("anything"))
        assert err.value.retryable

    def test_crash_preserves_created_at_across_restart(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        call(client.create("k", {"v": 0}))
        created = server._objects["k"].created_at
        env.run(until=env.timeout(1.0))
        call(client.update("k", {"v": 1}))
        server.crash()
        server.restart()
        env.run()
        assert server._objects["k"].created_at == created

    def test_replay_requested_while_down_is_deferred(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        call(client.create("k1", {}))
        call(client.create("k2", {}))
        server.set_available(False)
        seen = []
        client.watch(seen.append, from_revision=0)
        env.run()
        assert seen == []  # replay parked while the server is down
        server.set_available(True)
        server.restart()
        env.run()
        assert sorted(e.key for e in seen) == ["k1", "k2"]


class TestMemKVCrash:
    def test_state_is_lost_but_revisions_stay_monotonic(self, env, zero_net, call):
        server = MemKV(env, zero_net, watch_overhead=0.0)
        client = MemKVClient(server, "c")
        old = call(client.create("k", {"v": 1}))
        server.crash()
        server.restart()
        env.run()
        with pytest.raises(Exception):
            call(client.get("k"))  # no WAL: the object is gone
        new = call(client.create("k", {"v": 2}))
        assert new["revision"] > old["revision"]


class TestInFlightAbort:
    def _slow_server(self, env, net):
        return ApiServer(
            env, net, watch_overhead=0.0,
            ops={"create": OpLatency(0.05), "get": OpLatency(0.05)},
        )

    def test_crash_aborts_executing_op_with_retryable_error(
            self, env, zero_net, call):
        server = self._slow_server(env, zero_net)
        client = ApiServerClient(server, "c")
        op = client.create("k", {"v": 1})
        env.run(until=env.timeout(0.01))  # op is now mid-execution
        server.crash()
        with pytest.raises(UnavailableError) as err:
            env.run(until=op)
        assert err.value.retryable
        assert server.aborted_ops == 1
        server.restart()
        env.run()
        with pytest.raises(Exception):
            call(client.get("k"))  # abort landed pre-commit

    def test_fail_over_aborts_in_flight_and_retry_succeeds(
            self, env, zero_net, call):
        """Satellite: fail_over() -> UnavailableError -> RetryPolicy wins."""
        server = self._slow_server(env, zero_net)
        policy = RetryPolicy(max_attempts=5, base_backoff=0.02, seed=1)
        client = ApiServerClient(server, "c", retry_policy=policy)
        watcher = ApiServerClient(server, "w")
        watcher.watch(lambda e: None)
        op = client.create("k", {"v": 1})
        env.run(until=env.timeout(0.01))
        assert server.fail_over() > 0  # still reports dropped watches
        result = env.run(until=op)  # the wrapped op retried through it
        assert result["revision"] >= 1
        assert server.aborted_ops == 1
        assert policy.retries >= 1
        assert call(client.get("k"))["data"] == {"v": 1}


class TestTransientUnavailability:
    def test_window_fails_ops_but_keeps_state_and_watches(
            self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        call(client.create("k", {"v": 1}))
        seen = []
        client.watch(seen.append)
        server.set_available(False)
        with pytest.raises(UnavailableError):
            call(client.get("k"))
        server.set_available(True)
        assert call(client.get("k"))["data"] == {"v": 1}  # state survived
        call(client.update("k", {"v": 2}))
        env.run()
        assert [e.type for e in seen] == ["MODIFIED"]  # watch survived


SCHEMA = """\
schema: App/v1/A/Obj
counter: number
"""


class _Counter(Reconciler):
    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("counter", 0) >= 3:
            return
        yield ctx.store.patch(key, {"counter": obj.get("counter", 0) + 1})


class TestFaultInjector:
    def _plan(self):
        return (
            FaultPlan()
            .partition("a", "b", at=0.1, duration=0.2)
            .drop_window("a", "c", rate=0.5, at=0.15, duration=0.1, seed=3)
            .latency_spike("b", "c", extra=0.02, at=0.2, duration=0.1)
        )

    def test_same_plan_yields_identical_trace(self):
        traces = []
        for _ in range(2):
            env = Environment()
            net = Network(env, default_latency=FixedLatency(0.0))
            injector = FaultInjector(env, net).schedule(self._plan())
            env.run()
            traces.append(injector.trace())
        assert traces[0] == traces[1]
        assert len(traces[0]) == 6  # begin+end per action

    def test_active_faults_and_revert(self):
        env = Environment()
        net = Network(env, default_latency=FixedLatency(0.0))
        injector = FaultInjector(env, net).schedule(self._plan())
        env.run(until=0.16)
        assert ("partition", ("a", "b")) in injector.active_faults()
        assert net.is_partitioned("a", "b")
        env.run()
        assert injector.active_faults() == []
        assert net.fault_verdict("a", "b") == (False, 0.0)

    def test_overlapping_windows_are_refcounted(self):
        env = Environment()
        net = Network(env, default_latency=FixedLatency(0.0))
        plan = (FaultPlan()
                .partition("a", "b", at=0.0, duration=0.2)
                .partition("a", "b", at=0.1, duration=0.3))
        FaultInjector(env, net).schedule(plan)
        env.run(until=0.25)  # first window over, second still live
        assert net.is_partitioned("a", "b")
        env.run()
        assert not net.is_partitioned("a", "b")

    def test_unavailable_end_does_not_resurrect_crashed_store(
            self, env, zero_net):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        plan = (FaultPlan()
                .crash_store(server.location, at=0.0, duration=0.3)
                .unavailable_window(server.location, at=0.1, duration=0.1))
        FaultInjector(env, zero_net, stores=[server]).schedule(plan)
        env.run(until=0.25)  # brown-out ended; crash window still open
        assert not server.available
        env.run()
        assert server.available

    def test_unknown_targets_are_configuration_errors(self, env, zero_net):
        injector = FaultInjector(env, zero_net)
        plan = FaultPlan().crash_store("nowhere", at=0.0, duration=0.1)
        injector.schedule(plan)
        with pytest.raises(ConfigurationError):
            env.run()
        with pytest.raises(ConfigurationError):
            injector.register_process("p", object())  # no kill()/restart()

    def test_kill_and_restart_reconciler_recovers(self, env, zero_net):
        runtime = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        runtime.add_exchange("object", de)
        reconciler = _Counter()
        runtime.add_knactor(
            Knactor("a", [StoreBinding("default", "object", SCHEMA)],
                    reconciler=reconciler)
        )
        runtime.start()
        owner = runtime.handle_of("a")
        plan = FaultPlan().kill_process("a-reconciler", at=0.01, duration=0.1)
        FaultInjector(
            env, zero_net, processes={"a-reconciler": reconciler}
        ).schedule(plan)
        env.run(until=owner.create("x", {"counter": 0}))
        env.run(until=0.05)
        assert reconciler.health() == "stopped"
        env.run()
        assert reconciler.health() == "ready"
        assert reconciler.kill_count == 1
        final = env.run(until=owner.get("x"))["data"]
        assert final["counter"] == 3  # resync after restart finished the job

    def test_random_plan_is_deterministic_and_covers_classes(self):
        plan1 = FaultPlan.random(
            7, horizon=2.0, endpoints=("a", "b", "c"),
            stores=("s",), processes=("p",), n_faults=8,
        )
        plan2 = FaultPlan.random(
            7, horizon=2.0, endpoints=("a", "b", "c"),
            stores=("s",), processes=("p",), n_faults=8,
        )
        assert plan1.describe() == plan2.describe()
        for kind in ("partition", "drop", "latency_spike", "crash",
                     "unavailable", "kill"):
            assert plan1.count(kind) >= 1
