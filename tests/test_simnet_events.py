"""Unit tests for the simnet event loop and event primitives."""

import pytest

from repro.simnet import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEnvironment:
    def test_clock_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_advances_clock_to_until(self, env):
        env.run(until=3.5)
        assert env.now == 3.5

    def test_run_backwards_rejected(self, env):
        env.run(until=2.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_with_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(2.0)
        env.timeout(1.0)
        assert env.peek() == 1.0

    def test_events_fire_in_time_order(self, env):
        fired = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay, value=delay)
            t.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_time_events_fire_in_schedule_order(self, env):
        fired = []
        for tag in "abc":
            t = env.timeout(1.0, value=tag)
            t.callbacks.append(lambda e: fired.append(e.value))
        env.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_event_returns_value(self, env):
        evt = env.timeout(2.0, value="done")
        assert env.run(until=evt) == "done"
        assert env.now == 2.0

    def test_run_until_never_firing_event_raises(self, env):
        evt = env.event()
        with pytest.raises(SimulationError):
            env.run(until=evt)

    def test_run_until_does_not_process_later_events(self, env):
        fired = []
        late = env.timeout(5.0)
        late.callbacks.append(lambda e: fired.append("late"))
        env.run(until=2.0)
        assert fired == []
        env.run()
        assert fired == ["late"]


class TestEvent:
    def test_succeed_sets_value(self, env):
        evt = env.event()
        evt.succeed(42)
        assert evt.triggered and evt.ok and evt.value == 42

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(AttributeError):
            env.event().value

    def test_double_succeed_raises(self, env):
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_propagates_from_run(self, env):
        evt = env.event()
        evt.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        t1 = env.timeout(1.0, "a")
        t2 = env.timeout(2.0, "b")
        cond = AllOf(env, [t1, t2])
        env.run(until=1.5)
        assert not cond.triggered
        env.run()
        assert cond.triggered
        assert set(cond.value.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, env):
        t1 = env.timeout(1.0, "a")
        t2 = env.timeout(2.0, "b")
        cond = AnyOf(env, [t1, t2])
        result = env.run(until=cond)
        assert env.now == 1.0
        assert list(result.values()) == ["a"]

    def test_all_of_empty_fires_immediately(self, env):
        cond = AllOf(env, [])
        env.run()
        assert cond.triggered and cond.value == {}

    def test_all_of_fails_fast(self, env):
        bad = env.event()
        slow = env.timeout(10.0)
        cond = AllOf(env, [bad, slow])
        err = ValueError("nope")
        bad.fail(err)
        with pytest.raises(ValueError):
            env.run(until=cond)

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [other.timeout(1.0)])
