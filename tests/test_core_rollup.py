"""Tests for the Rollup integrator (Log -> Object aggregation)."""

import pytest

from repro.core import Knactor, KnactorRuntime, StoreBinding
from repro.core.rollup import Rollup, RollupRule
from repro.errors import ConfigurationError
from repro.exchange import LogDE, ObjectDE
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer, LogLake

READINGS = """\
schema: Home/v1/Meter/Readings
kwh: number
room: string
"""

DASHBOARD = """\
schema: Home/v1/Dashboard/Panel
totalKwh: number # +kr: external
samples: number # +kr: external
"""


def build(env, window=None, where=None):
    net = Network(env, default_latency=FixedLatency(0.0005))
    runtime = KnactorRuntime(env, network=net)
    object_de = ObjectDE(env, ApiServer(env, net, watch_overhead=0.0))
    log_de = LogDE(env, LogLake(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", object_de)
    runtime.add_exchange("log", log_de)
    runtime.add_knactor(Knactor("meter", [StoreBinding("log", "log", READINGS)]))
    runtime.add_knactor(Knactor("dashboard",
                                [StoreBinding("default", "object", DASHBOARD)]))
    log_de.grant("rollup", "knactor-meter-log", role="reader")
    object_de.grant("rollup", "knactor-dashboard", role="integrator")
    rollup = Rollup("rollup", rules=[
        RollupRule(
            source="knactor-meter-log",
            target="knactor-dashboard",
            target_key="main",
            aggs={"totalKwh": "sum(kwh)", "samples": "count()"},
            where=where,
            window=window,
        )
    ])
    runtime.add_integrator(rollup)
    runtime.start()
    return runtime, rollup


class TestRollup:
    def test_aggregates_into_object(self, env):
        runtime, rollup = build(env)
        meter = runtime.handle_of("meter", "log")
        env.run(until=meter.load([{"kwh": 1.0, "room": "den"}]))
        env.run(until=meter.load([{"kwh": 2.5, "room": "hall"}]))
        env.run()
        dashboard = runtime.handle_of("dashboard")
        data = env.run(until=dashboard.get("main"))["data"]
        assert data["totalKwh"] == pytest.approx(3.5)
        assert data["samples"] == 2
        assert rollup.status()["rules"][0]["updates"] == 2

    def test_where_filter(self, env):
        runtime, rollup = build(env, where="room == 'den'")
        meter = runtime.handle_of("meter", "log")
        env.run(until=meter.load([
            {"kwh": 1.0, "room": "den"},
            {"kwh": 100.0, "room": "garage"},
        ]))
        env.run()
        dashboard = runtime.handle_of("dashboard")
        assert env.run(until=dashboard.get("main"))["data"]["totalKwh"] == 1.0

    def test_trailing_window(self, env):
        runtime, rollup = build(env, window=10.0)
        meter = runtime.handle_of("meter", "log")
        env.run(until=meter.load([{"kwh": 5.0, "room": "den"}]))
        env.run(until=env.now + 60.0)  # the old record leaves the window
        env.run(until=meter.load([{"kwh": 1.0, "room": "den"}]))
        env.run()
        dashboard = runtime.handle_of("dashboard")
        assert env.run(until=dashboard.get("main"))["data"]["totalKwh"] == 1.0

    def test_reconfigure_swaps_rules(self, env):
        runtime, rollup = build(env)
        rollup.reconfigure([
            RollupRule(
                source="knactor-meter-log",
                target="knactor-dashboard",
                target_key="main",
                aggs={"totalKwh": "max(kwh)"},
            )
        ])
        meter = runtime.handle_of("meter", "log")
        env.run(until=meter.load([{"kwh": 2.0, "room": "a"},
                                  {"kwh": 9.0, "room": "b"}]))
        env.run()
        dashboard = runtime.handle_of("dashboard")
        assert env.run(until=dashboard.get("main"))["data"]["totalKwh"] == 9.0
        assert rollup.generation == 1

    def test_invalid_rules_rejected(self, env):
        net = Network(env)
        runtime = KnactorRuntime(env, network=net)
        runtime.add_exchange("object", ObjectDE(env, ApiServer(env, net)))
        runtime.add_exchange("log", LogDE(env, LogLake(env, net)))
        with pytest.raises(ConfigurationError):
            runtime.add_integrator(Rollup("r", rules=[
                RollupRule(source="s", target="t", target_key="k", aggs={})
            ]))
        with pytest.raises(ConfigurationError):
            runtime.add_integrator(Rollup("r2", rules=[
                RollupRule(source="s", target="t", target_key="k",
                           aggs={"x": "sum(v)"}, window=-1)
            ]))

    def test_stop_halts_updates(self, env):
        runtime, rollup = build(env)
        rollup.stop()
        meter = runtime.handle_of("meter", "log")
        env.run(until=meter.load([{"kwh": 1.0, "room": "den"}]))
        env.run()
        dashboard = runtime.handle_of("dashboard")
        from repro.errors import NotFoundError

        with pytest.raises(NotFoundError):
            env.run(until=dashboard.get("main"))
