"""Unit tests for the safe expression evaluator (the DXG's sandbox)."""

import pytest

from repro.errors import ExpressionError
from repro.util.safeexpr import SAFE_BUILTINS, SafeExpression, unwrap


class TestParsing:
    def test_empty_rejected(self):
        for bad in ("", "   ", None, 42):
            with pytest.raises(ExpressionError):
                SafeExpression(bad)

    def test_syntax_error_rejected(self):
        with pytest.raises(ExpressionError):
            SafeExpression("a +")

    @pytest.mark.parametrize(
        "evil",
        [
            "__import__('os')",
            "().__class__",
            "open('/etc/passwd')",  # unknown call name fails at eval, but
            "lambda: 1",  # lambdas are disallowed syntax
            "[x for x in ().__class__.__mro__]",
            "exec('1')",
            "x := 5",
            "a.__dict__",
            "f'{x}'",
        ],
    )
    def test_dangerous_syntax_rejected_or_unresolvable(self, evil):
        try:
            expr = SafeExpression(evil)
        except ExpressionError:
            return  # rejected at parse: good
        with pytest.raises(ExpressionError):
            expr.evaluate({"x": 1, "a": {}})

    def test_method_calls_rejected(self):
        with pytest.raises(ExpressionError):
            SafeExpression("x.upper()")


class TestNamesAndPaths:
    def test_root_names(self):
        expr = SafeExpression("A.x + B.y.z + this.w")
        assert expr.names == {"A", "B", "this"}

    def test_comprehension_variable_not_free(self):
        expr = SafeExpression("[i.name for i in A.items]")
        assert expr.names == {"A"}

    def test_dependency_paths(self):
        expr = SafeExpression("currency_convert(S.quote.price, S.quote.currency, this.currency)")
        assert ("S", "quote", "price") in expr.paths
        assert ("S", "quote", "currency") in expr.paths
        assert ("this", "currency") in expr.paths
        assert ("currency_convert",) not in expr.paths

    def test_subscript_path_partial(self):
        expr = SafeExpression("A.rows[0]")
        assert ("A", "rows") in expr.paths


class TestEvaluation:
    def test_missing_name_raises(self):
        with pytest.raises(ExpressionError, match="unbound"):
            SafeExpression("nope + 1").evaluate({})

    def test_missing_field_raises(self):
        with pytest.raises(ExpressionError, match="no field"):
            SafeExpression("A.missing").evaluate({"A": {"present": 1}})

    def test_context_shadows_functions(self):
        """Data wins over builtins, like Python locals over builtins."""
        assert SafeExpression("len").evaluate({"len": 5}) == 5
        assert SafeExpression("len('abc')").evaluate({}) == 3

    def test_attribute_chains_on_dicts(self):
        value = SafeExpression("A.b.c").evaluate({"A": {"b": {"c": 42}}})
        assert value == 42

    def test_subscript_access(self):
        value = SafeExpression("A['key'][1]").evaluate({"A": {"key": [10, 20]}})
        assert value == 20

    def test_dict_method_names_resolve_to_fields(self):
        """'items', 'keys', 'values' are data, not dict methods."""
        context = {"A": {"items": [1], "keys": 2, "values": 3}}
        assert SafeExpression("A.items").evaluate(context) == [1]
        assert SafeExpression("A.keys").evaluate(context) == 2
        assert SafeExpression("A.values").evaluate(context) == 3

    def test_object_iteration_yields_values(self):
        """Record semantics: iterating an object walks its field values."""
        context = {"A": {"items": {"k1": {"n": 1}, "k2": {"n": 2}}}}
        result = SafeExpression("[i.n for i in A.items]").evaluate(context)
        assert sorted(result) == [1, 2]

    def test_results_deeply_unwrapped(self):
        result = SafeExpression("A.nested").evaluate({"A": {"nested": {"x": [1]}}})
        assert type(result) is dict and type(result["x"]) is list

    def test_custom_functions(self):
        expr = SafeExpression("double(x)")
        assert expr.evaluate({"x": 21}, {"double": lambda v: v * 2}) == 42

    def test_runtime_error_wrapped(self):
        with pytest.raises(ExpressionError, match="failed"):
            SafeExpression("1 / x").evaluate({"x": 0})

    def test_builtin_coverage(self):
        assert set(SAFE_BUILTINS) >= {"len", "sum", "min", "max", "round"}

    def test_conditional_and_boolean_ops(self):
        expr = SafeExpression("'yes' if a and not b else 'no'")
        assert expr.evaluate({"a": True, "b": False}) == "yes"
        assert expr.evaluate({"a": True, "b": True}) == "no"

    def test_membership(self):
        assert SafeExpression("'x' in A.tags").evaluate({"A": {"tags": ["x"]}})


class TestUnwrap:
    def test_unwrap_nested(self):
        from repro.util.safeexpr import _wrap

        wrapped = _wrap({"a": {"b": [{"c": 1}]}})
        restored = unwrap(wrapped)
        assert restored == {"a": {"b": [{"c": 1}]}}
        assert type(restored) is dict

    def test_unwrap_plain_passthrough(self):
        assert unwrap(5) == 5
        assert unwrap("x") == "x"
        assert unwrap((1, 2)) == [1, 2]
