"""The workload fleet: seeded determinism and scenario smokes.

The load generator's contract is bit-level: the same seed must produce
the same arrival schedule, the same key sequence, and therefore the
same offered-load fingerprint on any machine and either backend.  These
tests pin that contract, plus a smoke of every scenario adapter
(retail, smart home, social network, sensor fleet) under nominal load
with its SLOs evaluated.
"""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.load import (
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowd,
    HeavyTailedServiceTimes,
    LoadGenerator,
    PoissonArrivals,
    ServiceTimeMix,
    TrafficClass,
    ZipfKeys,
)
from repro.obs.slo import evaluate


class TestArrivalProcesses:
    def test_constant_is_an_exact_grid(self):
        times = list(ConstantArrivals(10).times(random.Random(1), 2.0))
        assert len(times) == 20
        assert times[0] == 0.0
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(g - 0.1) < 1e-12 for g in gaps)

    def test_constant_ignores_the_rng(self):
        a = list(ConstantArrivals(7).times(random.Random(1), 1.0))
        b = list(ConstantArrivals(7).times(random.Random(999), 1.0))
        assert a == b

    def test_poisson_is_seed_deterministic(self):
        a = list(PoissonArrivals(50).times(random.Random(42), 4.0))
        b = list(PoissonArrivals(50).times(random.Random(42), 4.0))
        c = list(PoissonArrivals(50).times(random.Random(43), 4.0))
        assert a == b
        assert a != c

    def test_poisson_mean_rate(self):
        times = list(PoissonArrivals(100).times(random.Random(7), 50.0))
        # 5000 expected arrivals; 4 sigma is ~±283.
        assert 4500 < len(times) < 5500

    def test_all_arrivals_respect_the_window(self):
        processes = [
            ConstantArrivals(20),
            PoissonArrivals(20),
            DiurnalArrivals(5, 40, period=2.0),
            FlashCrowd(5, 80, spike_at=1.0, spike_duration=0.5),
        ]
        for process in processes:
            times = list(process.times(random.Random(3), 3.0, start=10.0))
            assert times, type(process).__name__
            assert all(10.0 <= t < 13.0 for t in times)
            assert times == sorted(times)

    def test_diurnal_rate_curve(self):
        diurnal = DiurnalArrivals(10, 110, period=8.0)
        assert diurnal.rate_at(0.0) == pytest.approx(10.0)
        assert diurnal.rate_at(4.0) == pytest.approx(110.0)
        assert diurnal.rate_at(8.0) == pytest.approx(10.0)
        assert diurnal.rate_at(2.0) == pytest.approx(60.0)

    def test_diurnal_thinning_tracks_the_curve(self):
        diurnal = DiurnalArrivals(2, 200, period=4.0)
        times = list(diurnal.times(random.Random(11), 4.0))
        mid = [t for t in times if 1.0 <= t < 3.0]  # around the peak
        edges = [t for t in times if t < 1.0 or t >= 3.0]
        assert len(mid) > 3 * len(edges)

    def test_flash_crowd_spike(self):
        crowd = FlashCrowd(10, 500, spike_at=2.0, spike_duration=0.5)
        assert crowd.rate_at(1.99) == 10
        assert crowd.rate_at(2.0) == 500
        assert crowd.rate_at(2.49) == 500
        assert crowd.rate_at(2.5) == 10
        times = list(crowd.times(random.Random(5), 4.0))
        in_spike = [t for t in times if 2.0 <= t < 2.5]
        # Half a second at 500/s dominates 3.5 s at 10/s.
        assert len(in_spike) > len(times) / 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantArrivals(0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-1)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(10, 5, period=1.0)  # peak below trough
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1, 2, period=0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(10, 5, spike_at=0, spike_duration=1)
        with pytest.raises(ConfigurationError):
            FlashCrowd(10, 50, spike_at=-1, spike_duration=1)


class TestSampling:
    def test_zipf_is_seed_deterministic(self):
        zipf = ZipfKeys(1000)
        a = [zipf.sample(random.Random(9)) for _ in range(1)]
        rng1, rng2 = random.Random(9), random.Random(9)
        seq1 = [zipf.sample(rng1) for _ in range(200)]
        seq2 = [zipf.sample(rng2) for _ in range(200)]
        assert seq1 == seq2
        assert a[0] == seq1[0]

    def test_zipf_head_is_hot(self):
        zipf = ZipfKeys(10_000, alpha=1.1)
        rng = random.Random(17)
        draws = [zipf.sample_index(rng) for _ in range(5000)]
        head = sum(1 for index in draws if index < 10)
        # The top 10 of 10^4 keys absorb a large share under Zipf(1.1).
        assert head > len(draws) * 0.3
        assert max(draws) < 10_000

    def test_zipf_alpha_zero_is_uniform(self):
        zipf = ZipfKeys(100, alpha=0.0)
        rng = random.Random(23)
        draws = [zipf.sample_index(rng) for _ in range(10_000)]
        head = sum(1 for index in draws if index < 10)
        assert 700 < head < 1300  # ~10% ± noise

    def test_zipf_key_format(self):
        zipf = ZipfKeys(50, key_format="device-{:04d}")
        key = zipf.sample(random.Random(1))
        assert key.startswith("device-") and len(key) == len("device-0000")

    def test_pareto_bounds_and_mean(self):
        tail = HeavyTailedServiceTimes(0.001, 1.0, alpha=1.5)
        rng = random.Random(31)
        draws = [tail.sample(rng) for _ in range(20_000)]
        assert all(0.001 <= d <= 1.0 for d in draws)
        empirical = sum(draws) / len(draws)
        assert empirical == pytest.approx(tail.mean(), rel=0.25)

    def test_pareto_is_heavy_tailed(self):
        tail = HeavyTailedServiceTimes(0.001, 1.0, alpha=1.1)
        rng = random.Random(37)
        draws = sorted(tail.sample(rng) for _ in range(5000))
        p50 = draws[len(draws) // 2]
        p999 = draws[int(len(draws) * 0.999)]
        assert p999 > 50 * p50

    def test_service_mix_draws_from_both_components(self):
        fast = HeavyTailedServiceTimes(0.001, 0.01)
        slow = HeavyTailedServiceTimes(0.1, 1.0)
        mix = ServiceTimeMix([(0.9, fast), (0.1, slow)])
        rng = random.Random(41)
        draws = [mix.sample(rng) for _ in range(2000)]
        slow_draws = sum(1 for d in draws if d >= 0.1)
        assert 100 < slow_draws < 320  # ~10%

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfKeys(0)
        with pytest.raises(ConfigurationError):
            ZipfKeys(10, alpha=-1)
        with pytest.raises(ConfigurationError):
            HeavyTailedServiceTimes(0.1, 0.1)
        with pytest.raises(ConfigurationError):
            ServiceTimeMix([])
        with pytest.raises(ConfigurationError):
            ServiceTimeMix([(0, HeavyTailedServiceTimes(0.1, 1.0))])


def _fleet_scenario(devices=400, **kwargs):
    from repro.load import SensorFleetLoadScenario

    return SensorFleetLoadScenario(devices=devices, **kwargs)


def _fleet_classes(devices=400, rate=40.0):
    return [
        TrafficClass(
            name="devices",
            arrivals=PoissonArrivals(rate),
            keys=ZipfKeys(devices, key_format="device-{:06d}"),
        )
    ]


class TestGeneratorDeterminism:
    def test_schedule_and_keys_reproduce_without_running(self):
        scenario = _fleet_scenario()
        cls = _fleet_classes()[0]
        gen_a = LoadGenerator(scenario, [cls], duration=2.0, seed=5)
        gen_b = LoadGenerator(_fleet_scenario(), [cls], duration=2.0, seed=5)
        assert gen_a.schedule(cls) == gen_b.schedule(cls)
        assert gen_a.key_sequence(cls, 50) == gen_b.key_sequence(cls, 50)

    def test_streams_are_independent_per_class(self):
        scenario = _fleet_scenario()
        solo = TrafficClass(name="a", arrivals=PoissonArrivals(30),
                            keys=ZipfKeys(100))
        other = TrafficClass(name="b", arrivals=PoissonArrivals(30),
                             keys=ZipfKeys(100))
        alone = LoadGenerator(scenario, [solo], duration=1.0, seed=3)
        paired = LoadGenerator(scenario, [solo, other], duration=1.0, seed=3)
        # Adding class "b" must not perturb "a"'s draws.
        assert alone.schedule(solo) == paired.schedule(solo)
        assert alone.key_sequence(solo, 20) == paired.key_sequence(solo, 20)
        # And the two classes draw distinct streams.
        assert paired.schedule(solo) != paired.schedule(other)

    def test_same_seed_same_fingerprint_and_latencies(self):
        runs = []
        for _ in range(2):
            scenario = _fleet_scenario()
            result = LoadGenerator(
                scenario, _fleet_classes(), duration=1.5, seed=11
            ).run()
            runs.append(result)
        assert runs[0].fingerprint() == runs[1].fingerprint()
        assert runs[0].latencies() == runs[1].latencies()
        assert runs[0].outcome_counts() == runs[1].outcome_counts()

    def test_different_seed_different_fingerprint(self):
        results = [
            LoadGenerator(
                _fleet_scenario(), _fleet_classes(), duration=1.5, seed=seed
            ).run()
            for seed in (1, 2)
        ]
        assert results[0].fingerprint() != results[1].fingerprint()

    def test_realtime_backend_reproduces_the_sim_schedule(self):
        """Same seed, same offered load, wall-clock backend."""
        from repro.realtime import RealtimeEnvironment

        sim = LoadGenerator(
            _fleet_scenario(), _fleet_classes(rate=30.0),
            duration=1.0, seed=19,
        ).run()
        env = RealtimeEnvironment(factor=0.02)
        try:
            scenario = _fleet_scenario(env=env)
            real = LoadGenerator(
                scenario, _fleet_classes(rate=30.0), duration=1.0, seed=19,
            ).run()
        finally:
            env.close()
        assert real.fingerprint() == sim.fingerprint()
        assert real.outcome_counts().get("ok") == sim.outcome_counts().get("ok")

    def test_generator_validation(self):
        scenario = _fleet_scenario()
        cls = _fleet_classes()[0]
        with pytest.raises(ConfigurationError):
            LoadGenerator(scenario, [cls], duration=0)
        with pytest.raises(ConfigurationError):
            LoadGenerator(scenario, [], duration=1.0)
        with pytest.raises(ConfigurationError):
            LoadGenerator(scenario, [cls, cls], duration=1.0)


class TestScenarioSmokes:
    """Every adapter drives end to end and judges its SLOs."""

    def _run(self, scenario, classes, duration=1.0, seed=2):
        result = LoadGenerator(scenario, classes, duration, seed=seed).run()
        report = evaluate(
            scenario.slos(), scenario.registry,
            scenario=scenario.name, env=scenario.env,
        )
        return result, report

    def test_retail_nominal_load_meets_slos(self):
        from repro.load import RetailLoadScenario

        scenario = RetailLoadScenario()
        classes = [TrafficClass(name="shoppers",
                                arrivals=ConstantArrivals(4),
                                keys=ZipfKeys(64))]
        result, report = self._run(scenario, classes)
        assert result.outcome_counts() == {"ok": 4}
        assert report.met, report.describe()
        # Completed orders carry causal trace ids for exemplar linkage.
        assert all(t for t in result.classes["shoppers"].trace_ids)

    def test_smarthome_nominal_load_meets_slos(self):
        from repro.load import SmartHomeLoadScenario

        scenario = SmartHomeLoadScenario()
        classes = [TrafficClass(name="sensors",
                                arrivals=ConstantArrivals(8),
                                keys=ZipfKeys(16, key_format="motion-{:02d}"))]
        result, report = self._run(scenario, classes)
        assert result.outcome_counts() == {"ok": 8}
        assert report.met, report.describe()

    def test_socialnetwork_smoke(self):
        """The RPC baseline rides the same harness (ISSUE satellite)."""
        from repro.load import SocialNetworkLoadScenario

        scenario = SocialNetworkLoadScenario()
        classes = [TrafficClass(name="posters",
                                arrivals=ConstantArrivals(5))]
        result, report = self._run(scenario, classes)
        assert result.outcome_counts() == {"ok": 5}
        assert report.met, report.describe()
        # No data plane: latency lands in a standalone registry, no traces.
        assert all(t is None for t in result.classes["posters"].trace_ids)
        assert scenario.registry is not scenario.env

    def test_sensorfleet_freshness_has_data(self):
        scenario = _fleet_scenario()
        result, report = self._run(scenario, _fleet_classes(rate=25.0))
        assert result.offered() > 0
        assert report.met, report.describe()
        freshness = [r for r in report.results if r.kind == "freshness"]
        assert freshness and not freshness[0].no_data
        # The Sync pipeline delivered renamed records downstream.
        assert scenario.app.analytics_seen

    def test_sensorfleet_flash_crowd_sheds_visibly(self):
        from repro.flow import FlowConfig

        scenario = _fleet_scenario(flow=FlowConfig(
            admission_rate=40, admission_burst=10, admission_queue_high=4,
        ))
        classes = [TrafficClass(
            name="devices",
            arrivals=FlashCrowd(20, 300, spike_at=0.5, spike_duration=0.5),
            keys=ZipfKeys(400, key_format="device-{:06d}"),
            principal="device-fleet",
        )]
        result, report = self._run(scenario, classes, duration=1.5)
        counts = result.outcome_counts()
        assert counts.get("rejected", 0) > 0
        assert counts.get("failed", 0) == 0
        availability = [r for r in report.results if r.kind == "availability"]
        assert availability and not availability[0].met
        assert availability[0].exemplars  # borrowed from the latency series
