"""Failure-injection tests: the system under contention and faults."""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.core.dxg import DXGExecutor, parse_dxg
from repro.errors import ConflictError, RPCStatusError
from repro.exchange import ObjectDE
from repro.simnet import Environment, FixedLatency, Network, UniformLatency
from repro.store import ApiServer, ApiServerClient

SCHEMA_A = """\
schema: App/v1/A/Obj
counter: number
note: string # +kr: external
"""


class TestConcurrentWriters:
    def test_cas_loop_never_loses_increments(self, env, zero_net, call):
        """N concurrent CAS writers: the final counter equals the total."""
        client = ApiServerClient(
            ApiServer(env, zero_net, watch_overhead=0.0), "writers"
        )
        call(client.create("k", {"counter": 0}))

        def writer(env, increments):
            for _ in range(increments):
                while True:
                    view = yield client.get("k")
                    try:
                        yield client.update(
                            "k",
                            {"counter": view["data"]["counter"] + 1},
                            resource_version=view["revision"],
                        )
                        break
                    except ConflictError:
                        yield env.timeout(0.001)

        workers = [env.process(writer(env, 10)) for _ in range(4)]
        env.run(until=env.all_of(workers))
        assert call(client.get("k"))["data"]["counter"] == 40

    def test_reconciler_and_integrator_write_disjoint_fields(self, env, zero_net):
        """Merge-patch semantics: concurrent writers to different fields
        never clobber each other."""
        runtime = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        runtime.add_exchange("object", de)

        class CounterReconciler(Reconciler):
            def reconcile(self, ctx, key, obj):
                if obj is None or obj.get("counter", 0) >= 5:
                    return
                yield ctx.store.patch(key, {"counter": obj.get("counter", 0) + 1})

        runtime.add_knactor(
            Knactor("a", [StoreBinding("default", "object", SCHEMA_A)],
                    reconciler=CounterReconciler())
        )
        de.grant("annotator", "knactor-a", role="integrator")
        annotator = de.handle("knactor-a", principal="annotator")
        runtime.start()
        owner = runtime.handle_of("a")
        env.run(until=owner.create("x", {"counter": 0}))

        def annotate(env):
            for i in range(5):
                yield env.timeout(0.003)
                yield annotator.patch("x", {"note": f"n{i}"})

        env.run(until=env.process(annotate(env)))
        env.run()
        final = env.run(until=owner.get("x"))["data"]
        assert final["counter"] == 5
        assert final["note"] == "n4"


class TestSlowAndLossyConditions:
    def test_exchange_correct_under_jittery_network(self):
        """High-variance latency must not corrupt exchange results."""
        env = Environment()
        net = Network(env, default_latency=UniformLatency(0.0, 0.02, seed=3))
        de = ObjectDE(env, ApiServer(env, net, watch_overhead=0.005))
        de.host_store("knactor-a", SCHEMA_A, owner="a")
        de.host_store(
            "knactor-b",
            "schema: App/v1/B/Obj\ncopy: number # +kr: external\n",
            owner="b",
        )
        de.grant("cast", "knactor-a", role="integrator")
        de.grant("cast", "knactor-b", role="integrator")
        executor = DXGExecutor(
            env,
            parse_dxg(
                "Input:\n  A: App/v1/A/knactor-a\n  B: App/v1/B/knactor-b\n"
                "DXG:\n  B:\n    copy: A.counter * 10\n"
            ),
            handles={"A": de.handle("knactor-a", principal="cast"),
                     "B": de.handle("knactor-b", principal="cast")},
        )
        owner = de.handle("knactor-a", principal="a")
        env.run(until=owner.create("x", {"counter": 7}))
        env.run(until=executor.exchange("x"))
        reader = de.handle("knactor-b", principal="b")
        assert env.run(until=reader.get("x"))["data"]["copy"] == 70

    def test_reconciler_retry_exhaustion_requeues(self, env, zero_net):
        """A permanently conflicting reconcile must not wedge the loop."""
        runtime = KnactorRuntime(env, network=zero_net)
        de = ObjectDE(env, ApiServer(env, zero_net, watch_overhead=0.0))
        runtime.add_exchange("object", de)

        class AlwaysConflicts(Reconciler):
            max_retries = 2
            backoff = 0.001

            def __init__(self):
                super().__init__("conflicting")
                self.attempts = 0
                self.other_keys_seen = []

            def reconcile(self, ctx, key, obj):
                if key == "poison":
                    self.attempts += 1
                    raise ConflictError("synthetic contention")
                self.other_keys_seen.append(key)

        rec = AlwaysConflicts()
        runtime.add_knactor(
            Knactor("a", [StoreBinding("default", "object", SCHEMA_A)],
                    reconciler=rec)
        )
        runtime.start()
        owner = runtime.handle_of("a")
        env.run(until=owner.create("poison", {"counter": 0}))
        env.run(until=owner.create("healthy", {"counter": 0}))
        env.run(until=env.now + 5.0)
        # The poison key exhausted its retries but the healthy key was
        # still processed: no head-of-line wedge.
        assert rec.attempts >= 3
        assert "healthy" in rec.other_keys_seen


class TestRPCFailureModes:
    def test_payment_failure_fails_order_without_shipping(self):
        """The RPC app's orchestration fails atomically-ish by hand --
        the failure-handling code Knactor's integrator doesn't need."""
        from repro.apps.retail.rpc_app import RetailRpcApp
        from repro.apps.retail.workload import OrderWorkload

        app = RetailRpcApp.build()
        _key, data = OrderWorkload(seed=7).next_order()
        data["cardToken"] = ""  # payment will reject
        shipped_before = app.impls["shipping"]._counter
        with pytest.raises(RPCStatusError):
            app.env.run(until=app.place_order(data))
        assert app.impls["shipping"]._counter == shipped_before

    def test_deadline_prevents_unbounded_waiting(self, env, net):
        from repro.rpc import RPCChannel, RPCServer

        server = RPCServer(env, net, "slow-svc")

        def handler(request):
            yield env.timeout(60.0)
            return {}

        server.register("S", "M", handler)
        channel = RPCChannel(env, server, "client", default_deadline=0.2)
        with pytest.raises(RPCStatusError) as excinfo:
            env.run(until=channel.call("S", "M", {}))
        assert excinfo.value.code == "DEADLINE_EXCEEDED"
        assert env.now < 1.0
