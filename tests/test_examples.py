"""Smoke tests: every example script runs to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, *argv):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py")
        assert "[display] den: 21.5 degrees C" in out
        assert "degrees F" in out  # the run-time reconfiguration took

    def test_online_retail_knactor(self, monkeypatch, capsys):
        out = run_example(
            monkeypatch, capsys, "online_retail.py",
            "--orders", "1", "--profile", "K-redis",
        )
        assert "status=fulfilled" in out
        assert "retail-cast" in out

    def test_online_retail_rpc(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "online_retail.py",
                          "--rpc", "--orders", "1")
        assert "tracking=trk-" in out

    def test_online_retail_show_dxg(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "online_retail.py", "--show-dxg")
        assert "currency_convert(S.quote.price," in out

    def test_online_retail_show_schemas(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "online_retail.py",
                          "--show-schemas")
        assert "shippingCost: number # +kr: external" in out

    def test_smart_home(self, monkeypatch, capsys):
        import re

        out = run_example(monkeypatch, capsys, "smart_home.py")
        assert out.count("lamp brightness changes : 16") == 2
        totals = [
            float(m) for m in re.findall(r"energy total \(kWh\): ([0-9.]+)", out)
        ]
        assert len(totals) == 2
        assert totals[0] == pytest.approx(totals[1], rel=0.01)

    def test_smart_home_sleep_policy(self, monkeypatch, capsys):
        import re

        out = run_example(monkeypatch, capsys, "smart_home.py", "--sleep-policy")
        match = re.search(r"policy denials recorded : (\d+)", out)
        assert match and int(match.group(1)) >= 16
        # The policy held: the (knactor-variant) lamp never changed.
        assert "lamp brightness changes : 0" in out

    def test_runtime_reconfiguration(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "runtime_reconfiguration.py")
        assert "tracking=drone-" in out
        assert "untouched" in out

    def test_composition_tasks(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "composition_tasks.py")
        assert "c / f / b / d" in out
        assert "rolling update" in out

    def test_marketplace(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "marketplace.py")
        assert "compatible" in out
        assert "'living: 21.0 C'" in out

    def test_verification(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "verification.py")
        assert "dependency cycle" in out
        assert "confluent across 3 orderings" in out
        assert "NOT confluent" in out
