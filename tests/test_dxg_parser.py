"""Unit tests for DXG parsing and reference resolution."""

import pytest

from repro.core.dxg import parse_dxg
from repro.core.dxg.parser import Reference, build_spec
from repro.errors import DXGParseError

FIG6 = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""


class TestFig6:
    def test_inputs_parsed(self):
        spec = parse_dxg(FIG6)
        assert spec.aliases == {"C", "S", "P"}
        assert spec.inputs["S"] == "OnlineRetail/v1/Shipping/knactor-shipping"

    def test_assignment_count(self):
        spec = parse_dxg(FIG6)
        assert len(spec.assignments) == 8

    def test_targets_in_order(self):
        spec = parse_dxg(FIG6)
        assert spec.targets() == [("C", "order"), ("P", ""), ("S", "")]

    def test_kind_reference_resolution(self):
        """C.order.totalCost: 'order' is a kind because C.order is a target."""
        spec = parse_dxg(FIG6)
        amount = next(a for a in spec.assignments if a.field == "amount")
        assert amount.sources == (Reference("C", "order", "totalCost"),)

    def test_default_kind_reference_resolution(self):
        """S.quote.price: 'quote' is a field because S has only default kind."""
        spec = parse_dxg(FIG6)
        shipping = next(a for a in spec.assignments if a.field == "shippingCost")
        refs = set(shipping.sources)
        assert Reference("S", "", "quote.price") in refs
        assert Reference("S", "", "quote.currency") in refs

    def test_this_reference_recorded(self):
        spec = parse_dxg(FIG6)
        shipping = next(a for a in spec.assignments if a.field == "shippingCost")
        assert shipping.uses_this == ("currency",)

    def test_comprehension_binds_item(self):
        spec = parse_dxg(FIG6)
        items = next(a for a in spec.assignments if a.field == "items")
        assert items.sources == (Reference("C", "order", "items"),)

    def test_conditional_policy_parsed(self):
        spec = parse_dxg(FIG6)
        method = next(a for a in spec.assignments if a.field == "method")
        assert method.sources == (Reference("C", "order", "cost"),)

    def test_kinds_for(self):
        spec = parse_dxg(FIG6)
        assert spec.kinds_for("C") == {"order"}
        assert spec.kinds_for("S") == {""}

    def test_assignments_for(self):
        spec = parse_dxg(FIG6)
        assert len(spec.assignments_for("C", "order")) == 3
        assert len(spec.assignments_for("S", "")) == 3


class TestErrors:
    def test_missing_sections(self):
        with pytest.raises(DXGParseError):
            parse_dxg("Input:\n  C: a/b/c\n")
        with pytest.raises(DXGParseError):
            parse_dxg("DXG:\n  C:\n    f: 1\n")

    def test_undeclared_target_alias(self):
        with pytest.raises(DXGParseError, match="undeclared alias"):
            parse_dxg("Input:\n  C: a/b/c\nDXG:\n  X:\n    f: C.v\n")

    def test_undeclared_source_alias(self):
        with pytest.raises(DXGParseError, match="undeclared alias"):
            parse_dxg("Input:\n  C: a/b/c\nDXG:\n  C:\n    f: Z.other.field\n")

    def test_bad_alias_name(self):
        with pytest.raises(DXGParseError):
            parse_dxg("Input:\n  'not an id': a/b/c\nDXG:\n  C:\n    f: 1\n")

    def test_bad_expression(self):
        with pytest.raises(DXGParseError):
            parse_dxg("Input:\n  C: a/b/c\nDXG:\n  C:\n    f: 'import os'\n")

    def test_empty_target(self):
        with pytest.raises(DXGParseError):
            parse_dxg("Input:\n  C: a/b/c\nDXG:\n  C:\n")

    def test_three_part_target_rejected(self):
        with pytest.raises(DXGParseError):
            parse_dxg("Input:\n  C: a/b/c\nDXG:\n  C.order.deep:\n    f: 1\n")


class TestProgrammaticBuild:
    def test_build_spec_from_dicts(self):
        spec = build_spec(
            {"A": "x/v1/A", "B": "x/v1/B"},
            {"B": {"copy": "A.value"}},
        )
        assert len(spec.assignments) == 1
        assert spec.assignments[0].sources == (Reference("A", "", "value"),)

    def test_constant_scalar_expression(self):
        spec = build_spec({"A": "x/v1/A"}, {"A": {"flag": True, "n": 3}})
        values = {a.field: a.expression.evaluate({}) for a in spec.assignments}
        assert values == {"flag": True, "n": 3}

    def test_function_names_not_treated_as_sources(self):
        spec = build_spec(
            {"A": "x/v1/A", "B": "x/v1/B"},
            {"B": {"v": "max(A.x, A.y)"}},
        )
        roots = {ref.alias for ref in spec.assignments[0].sources}
        assert roots == {"A"}
