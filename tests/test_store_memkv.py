"""Unit tests for the Redis-like in-memory store and UDF push-down."""

import pytest

from repro.errors import ConflictError, NotFoundError, StoreError
from repro.store import ApiServer, ApiServerClient, MemKV, MemKVClient


@pytest.fixture
def server(env, zero_net):
    return MemKV(env, zero_net, watch_overhead=0.0)


@pytest.fixture
def client(server):
    return MemKVClient(server, location="tester")


class TestObjectSurfaceParity:
    """MemKV must be a drop-in Object backend for the Data Exchange."""

    def test_crud_roundtrip(self, client, call):
        call(client.create("k", {"v": 1}))
        assert call(client.get("k"))["data"] == {"v": 1}
        call(client.update("k", {"v": 2}))
        call(client.patch("k", {"extra": True}))
        assert call(client.get("k"))["data"] == {"v": 2, "extra": True}
        call(client.delete("k"))
        with pytest.raises(NotFoundError):
            call(client.get("k"))

    def test_optimistic_concurrency_emulated(self, client, call):
        created = call(client.create("k", {"v": 1}))
        call(client.update("k", {"v": 2}))
        with pytest.raises(ConflictError):
            call(client.update("k", {"v": 3}, resource_version=created["revision"]))

    def test_watch_delivery(self, env, client, call):
        events = []
        client.watch(events.append, key_prefix="orders/")
        call(client.create("orders/o1", {"v": 1}))
        env.run()
        assert len(events) == 1 and events[0].object == {"v": 1}

    def test_list_prefix(self, client, call):
        call(client.create("a/1", {}))
        call(client.create("b/1", {}))
        assert [o["key"] for o in call(client.list("a/"))] == ["a/1"]


class TestCommands:
    def test_set_get(self, client, call):
        assert call(client.command("SET", "greeting", "hello")) == "OK"
        assert call(client.command("GET", "greeting")) == "hello"

    def test_get_missing_is_none(self, client, call):
        assert call(client.command("GET", "nope")) is None

    def test_incr(self, client, call):
        assert call(client.command("INCR", "counter")) == 1
        assert call(client.command("INCR", "counter")) == 2

    def test_del_and_exists(self, client, call):
        call(client.command("SET", "a", 1))
        call(client.command("SET", "b", 2))
        assert call(client.command("EXISTS", "a", "b", "c")) == 2
        assert call(client.command("DEL", "a", "c")) == 1
        assert call(client.command("EXISTS", "a")) == 0

    def test_keys_prefix(self, client, call):
        call(client.command("SET", "user:1", "x"))
        call(client.command("SET", "user:2", "y"))
        call(client.command("SET", "other", "z"))
        assert call(client.command("KEYS", "user:")) == ["user:1", "user:2"]

    def test_unknown_command_rejected(self, client, call):
        with pytest.raises(StoreError):
            call(client.command("FLUSHALL"))


class TestUDF:
    def test_fcall_runs_server_side(self, server, client, call):
        def double(ctx, key):
            # UDFs read frozen views; thaw for a local working copy.
            data = ctx.get(key)["data"].thaw()
            data["v"] *= 2
            ctx.update(key, data)
            return data["v"]

        server.functions.register("double", double)
        call(client.create("k", {"v": 21}))
        assert call(client.fcall("double", "k")) == 42
        assert call(client.get("k"))["data"]["v"] == 42

    def test_fcall_unknown_function(self, client, call):
        with pytest.raises(NotFoundError):
            call(client.fcall("nope"))

    def test_udf_writes_trigger_watches(self, env, server, client, call):
        def touch(ctx, key):
            ctx.create(key, {"made": "by-udf"})

        server.functions.register("touch", touch)
        events = []
        client.watch(events.append)
        call(client.fcall("touch", "new-key"))
        env.run()
        assert [e.key for e in events] == ["new-key"]

    def test_udf_access_counted_and_charged(self, env, server, client, call):
        def busy(ctx):
            for i in range(100):
                ctx.create(f"k{i}", {"i": i})

        server.functions.register("busy", busy, cost=0.0)
        start = env.now
        call(client.fcall("busy"))
        elapsed = env.now - start
        # 100 local accesses at local_access_cost each, plus fcall base.
        assert elapsed >= 100 * server.local_access_cost

    def test_udf_registry_management(self, server):
        server.functions.register("f", lambda ctx: None)
        assert "f" in server.functions and server.functions.names() == ["f"]
        server.functions.unregister("f")
        assert "f" not in server.functions


class TestPerformance:
    def test_memkv_write_much_faster_than_apiserver(self, env, zero_net):
        api = ApiServer(env, zero_net, location="api", watch_overhead=0.0)
        kv = MemKV(env, zero_net, location="kv", watch_overhead=0.0)
        api_client = ApiServerClient(api, location="t")
        kv_client = MemKVClient(kv, location="t")

        start = env.now
        env.run(until=api_client.create("k", {"v": 1}))
        api_cost = env.now - start

        start = env.now
        env.run(until=kv_client.create("k", {"v": 1}))
        kv_cost = env.now - start

        assert api_cost > 5 * kv_cost
