"""Live elastic resharding: migration, fencing, ownership errors, durability."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConflictError,
    CrossShardTxnError,
    ShardMovedError,
    StoreError,
)
from repro.simnet import Environment, Network
from repro.store import (
    ApiServer,
    MemKV,
    ShardedStore,
    ShardedStoreClient,
    Topology,
)
from repro.store.memkv import MemKVClient
from repro.store.ring import _reset_deprecations, coerce_shards_knob


def make_store(env, net, shards=1, backend=MemKV, seed=0, max_shards=4,
               **kwargs):
    def factory(i):
        return backend(env, net, location=f"shard-{i}", **kwargs)

    topology = Topology(shards=shards, seed=seed, min_shards=1,
                        max_shards=max_shards)
    return ShardedStore(topology=topology, shard_factory=factory, name="kv")


def drive(env, gen):
    """Run a driver generator to completion; re-raise what it raised."""
    box = {}

    def wrapper():
        try:
            box["result"] = yield from gen
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    env.process(wrapper())
    env.run(until=env.now + 60.0)
    if "error" in box:
        raise box["error"]
    assert "result" in box or gen.gi_frame is None, "driver did not finish"
    return box.get("result")


class TestLiveResharding:
    def test_grow_keeps_state_and_watch_order(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=1)
        client = ShardedStoreClient(store, "app")
        events, closes = [], []
        watch = client.watch(events.append, key_prefix="k/",
                             on_close=lambda reason: closes.append(reason))

        def driver():
            for i in range(30):
                yield client.create(f"k/{i}", {"v": i})
            proc = store.reshard(3)
            for i in range(30):
                yield client.update(f"k/{i}", {"v": i + 100})
                yield env.timeout(0.002)
            yield proc
            for i in range(30):
                obj = yield client.get(f"k/{i}")
                assert obj["data"]["v"] == i + 100
            return True

        assert drive(env, driver())
        env.run(until=env.now + 1.0)
        assert store.shard_count == 3
        assert closes == []
        by_key = {}
        for event in events:
            by_key.setdefault(event.key, []).append(event.revision)
        for key, revisions in by_key.items():
            assert revisions == sorted(revisions), key
        assert len(events) == 60
        assert len(watch.watches) == 3

    def test_shrink_keeps_state(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=3)
        client = ShardedStoreClient(store, "app")

        def driver():
            for i in range(30):
                yield client.create(f"k/{i}", {"v": i})
            proc = store.reshard(1)
            for i in range(30):
                yield client.update(f"k/{i}", {"v": i + 1})
                yield env.timeout(0.002)
            yield proc
            for i in range(30):
                obj = yield client.get(f"k/{i}")
                assert obj["data"]["v"] == i + 1
            return True

        assert drive(env, driver())
        assert store.shard_count == 1
        assert store.retired_shards  # kept for monotonic counters

    def test_writes_fence_and_reroute_during_cutover(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=1)
        client = ShardedStoreClient(store, "app")

        def driver():
            for i in range(40):
                yield client.create(f"k/{i}", {"v": i})
            proc = store.reshard(4)
            for i in range(40):
                yield client.update(f"k/{i}", {"v": i + 1})
                yield env.timeout(0.001)
            yield proc
            return True

        assert drive(env, driver())
        assert store.fence_rejections > 0
        assert sum(c.reroutes for c in store._clients) > 0
        assert store.reshard_stats["keys_moved"] > 0

    def test_bounds_and_reentry_guard(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=2, max_shards=4)

        def over():
            yield store.reshard(9)

        with pytest.raises(ConfigurationError):
            drive(env, over())

        def reenter():
            first = store.reshard(3)
            yield env.timeout(0.001)  # let the first transition engage
            try:
                yield store.reshard(4)
            except StoreError as exc:
                assert "already resharding" in str(exc)
            else:
                raise AssertionError("re-entrant reshard was allowed")
            yield first
            return True

        assert drive(env, reenter())

    def test_grow_without_factory_is_refused(self):
        env = Environment()
        net = Network(env)
        shards = [MemKV(env, net, location=f"s{i}") for i in range(2)]
        store = ShardedStore(shards, name="kv")  # no factory

        def driver():
            yield store.reshard(3)

        with pytest.raises(ConfigurationError):
            drive(env, driver())


class TestOwnershipFencing:
    def test_stray_write_names_the_new_owner(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=3)
        client = ShardedStoreClient(store, "app")
        wrong = next(s for s in store.shards if s is not store.shard_for("a"))
        rogue = MemKVClient(wrong, "rogue")

        def driver():
            yield client.create("a", {"v": 1})
            try:
                yield rogue.update("a", {"v": 2})
            except ShardMovedError as exc:
                assert exc.owner == store.owner_location("a")
                assert exc.ring_version == store.ring.version
                assert not exc.retryable  # re-route, don't blind-retry
                return True
            raise AssertionError("stray write was accepted")

        assert drive(env, driver())
        assert store.fence_rejections == 1

    def test_cross_shard_txn_error_reports_ring_ownership(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=3)
        client = ShardedStoreClient(store, "app")
        ring = store.ring
        other = next(f"k-{i}" for i in range(200)
                     if ring.owner_of(f"k-{i}") != ring.owner_of("a"))

        def driver():
            yield client.create("a", {"v": 1})
            yield client.create(other, {"v": 1})
            try:
                yield client.txn([
                    {"action": "update", "key": "a", "data": {}},
                    {"action": "update", "key": other, "data": {}},
                ])
            except CrossShardTxnError as exc:
                message = str(exc)
                assert f"ring v{ring.version}" in message
                assert store.owner_location("a") in message
                assert exc.shard_map["a"] == store.owner_location("a")
                assert exc.ring_version == ring.version
                return True
            raise AssertionError("cross-shard txn was accepted without mode")

        assert drive(env, driver())

    def test_conflict_message_carries_ownership_note(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=2)
        client = ShardedStoreClient(store, "app")

        def driver():
            yield client.create("a", {"v": 1})
            try:
                yield client.update("a", {"v": 2}, resource_version=999)
            except ConflictError as exc:
                note = f"[key 'a' -> shard {store.owner_location('a')!r}"
                assert note in str(exc)
                return True
            raise AssertionError("stale update was accepted")

        assert drive(env, driver())


class TestTxnDuringReshard:
    def test_2pc_commits_across_a_live_reshard(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=2)
        client = ShardedStoreClient(store, "app")
        coordinator = store.coordinator

        def driver():
            for i in range(20):
                yield client.create(f"a/{i}", {"v": i})
                yield client.create(f"b/{i}", {"v": i})
            proc = store.reshard(4)
            committed = 0
            for i in range(20):
                ops = [
                    {"action": "update", "key": f"a/{i}", "data": {"v": -i}},
                    {"action": "update", "key": f"b/{i}", "data": {"v": -i}},
                ]
                yield coordinator.txn(ops, mode="2pc")
                committed += 1
                yield env.timeout(0.003)
            yield proc
            for i in range(20):
                obj = yield client.get(f"a/{i}")
                assert obj["data"]["v"] == -i
            return committed

        assert drive(env, driver()) == 20
        assert store.in_doubt_txns == 0


class TestIngestDurability:
    def test_migrated_state_survives_dest_crash(self):
        env = Environment()
        net = Network(env)
        store = make_store(env, net, shards=1, backend=ApiServer)
        client = ShardedStoreClient(store, "app")

        def driver():
            for i in range(20):
                yield client.create(f"k/{i}", {"v": i}, labels={"tier": "a"})
            yield store.reshard(2)
            dest = store.shards[1]
            moved = [f"k/{i}" for i in range(20)
                     if store.shard_for(f"k/{i}") is dest]
            assert moved, "nothing landed on the new shard"
            dest.crash()
            yield env.timeout(0.01)
            dest.restart()
            yield env.timeout(0.01)
            for key in moved:
                obj = yield client.get(key)
                assert obj["data"]["v"] == int(key.split("/")[1])
                # Label fidelity comes from the authoritative reconcile
                # pass and must survive the WAL ingest-marker replay.
                assert dest._objects[key].labels == {"tier": "a"}
            return True

        assert drive(env, driver())


class TestDeprecationShims:
    def test_shards_knob_coerces_and_warns_once(self):
        _reset_deprecations()
        with pytest.warns(DeprecationWarning, match="topology=Topology"):
            topology = coerce_shards_knob(4, "TestCase(shards=)")
        assert topology.shards == 4
        # Warn-once: the same call site stays quiet afterwards.
        assert coerce_shards_knob(4, "TestCase(shards=)").shards == 4
        assert coerce_shards_knob(1, "TestCase(shards=)") is None

    def test_shard_index_shim_matches_the_ring(self):
        from repro.store import ShardRing, shard_index

        _reset_deprecations()
        with pytest.warns(DeprecationWarning, match="consistent-hash ring"):
            index = shard_index("order/1", 4)
        assert index == ShardRing.for_count(4).owner_index("order/1")
