"""Tests for the telemetry / SLO-monitoring layer."""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_REDIS
from repro.errors import ConfigurationError
from repro.metrics.telemetry import (
    SLOMonitor,
    _state_plane_stats,
    exchange_durations,
    reconcile_durations,
    resilience_snapshot,
    runtime_snapshot,
)


@pytest.fixture(scope="module")
def app():
    app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
    workload = OrderWorkload(seed=7)
    for _ in range(3):
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    return app


class TestSnapshot:
    def test_covers_all_components(self, app):
        snapshot = runtime_snapshot(app.runtime)
        assert set(snapshot["knactors"]) == set(app.runtime.knactors)
        assert "retail-cast" in snapshot["integrators"]
        assert snapshot["exchanges"]["object"]["audited_accesses"] > 0

    def test_reconciler_counters(self, app):
        shipping = runtime_snapshot(app.runtime)["knactors"]["shipping"]
        assert shipping["reconciles"] >= 3
        assert shipping["queue_depth"] == 0  # quiescent

    def test_backend_op_counts_present(self, app):
        ops = runtime_snapshot(app.runtime)["exchanges"]["object"]["backend_ops"]
        assert ops.get("create", 0) >= 3
        assert ops.get("patch", 0) >= 3

    def test_shape_without_obs_plane(self, app):
        snapshot = runtime_snapshot(app.runtime)
        assert set(snapshot) == {"time", "knactors", "integrators",
                                 "exchanges"}
        assert snapshot["time"] == app.env.now

    def test_obs_section_present_when_plane_attached(self):
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False,
                                     obs=True)
        key, data = OrderWorkload(seed=7).next_order()
        app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=60.0)
        obs = runtime_snapshot(app.runtime)["obs"]
        assert obs["traces"]["count"] == 1
        assert obs["traces"]["spans"] > 3
        assert "store_ops_total" in obs["metrics"]["metrics"]

    def test_state_plane_section(self, app):
        state_plane = runtime_snapshot(app.runtime)["exchanges"]["object"][
            "state_plane"]
        assert state_plane["zero_copy"] is True
        assert set(state_plane["copy"]) >= {"copied_bytes",
                                            "shared_bytes_avoided"}
        assert state_plane["watch_wire_bytes"] > 0


class TestStatePlaneStats:
    def test_none_for_backends_without_copy_meter(self):
        class Legacy:
            pass

        assert _state_plane_stats(Legacy()) is None

    def test_counters_for_instrumented_backend(self, app):
        stats = _state_plane_stats(app.de.backend)
        assert set(stats) == {"zero_copy", "delta_watch", "copy",
                              "watch_wire_bytes", "watch_deltas_sent",
                              "watch_fulls_sent"}
        # Full/delta split only accumulates on the delta-watch plane;
        # here it is off, so the counters exist but stay zero.
        assert stats["delta_watch"] is False
        assert stats["watch_wire_bytes"] > 0


class TestResilienceSnapshot:
    def test_shape_and_quiescent_values(self, app):
        snapshot = resilience_snapshot(app.runtime)
        assert set(snapshot) == {"time", "reconcilers", "integrators",
                                 "stores", "retries", "circuits"}
        shipping = snapshot["reconcilers"]["shipping"]
        assert shipping["health"] == "ready"
        assert shipping["dead_letters"] == 0
        assert shipping["dead_letter_keys"] == []
        cast = snapshot["integrators"]["retail-cast"]
        assert cast["started"] is True
        assert cast["dead_letters"] == 0
        store = snapshot["stores"]["object-backend"]
        assert store["available"] is True
        assert store["crashes"] == 0

    def test_breakers_included_when_passed(self, app):
        from repro.faults import CircuitBreaker

        breaker = CircuitBreaker(app.env, name="probe")
        snapshot = resilience_snapshot(app.runtime, breakers=[breaker])
        assert snapshot["circuits"]["probe"]["state"] == "closed"


class TestExchangeDurations:
    def test_one_span_per_exchange(self, app):
        durations = exchange_durations(app.tracer, "retail-cast")
        assert len(durations) == app.cast.exchanges_run
        assert all(d >= 0 for d in durations)

    def test_unknown_integrator_has_no_spans(self, app):
        assert exchange_durations(app.tracer, "nope") == []

    def test_reconcile_durations_per_knactor(self, app):
        durations = reconcile_durations(app.tracer, "shipping")
        assert len(durations) >= 3
        # The carrier call dominates each shipping reconcile.
        assert all(d > 0.4 for d in durations if d > 0.01)

    def test_reconcile_durations_unknown_knactor(self, app):
        assert reconcile_durations(app.tracer, "ghost") == []


class TestSLOMonitor:
    def test_met_slo(self, app):
        monitor = SLOMonitor("exchange-fast", "retail-cast",
                             target_seconds=1.0)
        report = monitor.evaluate(app.tracer)
        assert report.met
        assert report.sample_count == app.cast.exchanges_run
        assert "MET" in report.describe()

    def test_violated_slo(self, app):
        monitor = SLOMonitor("impossible", "retail-cast",
                             target_seconds=1e-9)
        report = monitor.evaluate(app.tracer)
        assert not report.met
        assert "VIOLATED" in report.describe()

    def test_custom_percentile(self, app):
        monitor = SLOMonitor("median", "retail-cast",
                             target_seconds=1.0, percentile=0.5)
        report = monitor.evaluate(app.tracer)
        assert report.percentile == 0.5

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SLOMonitor("x", "cast", target_seconds=0)
        with pytest.raises(ConfigurationError):
            SLOMonitor("x", "cast", target_seconds=1, percentile=1.5)

    def test_no_samples_is_a_no_data_report(self, app):
        """Zero spans is an answer, not a crash: a dead integrator reads
        as a violated objective so the monitoring loop keeps running."""
        monitor = SLOMonitor("empty", "ghost-integrator", target_seconds=1.0)
        report = monitor.evaluate(app.tracer)
        assert report.no_data
        assert not report.met
        assert report.sample_count == 0
        assert report.observed_seconds == 0.0
        assert "NO DATA" in report.describe()
        assert "NOT MET" in report.describe()
        assert monitor.reports == [report]

    def test_reports_accumulate(self, app):
        monitor = SLOMonitor("history", "retail-cast", target_seconds=1.0)
        monitor.evaluate(app.tracer)
        monitor.evaluate(app.tracer)
        assert len(monitor.reports) == 2
