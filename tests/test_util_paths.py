"""Unit tests for dotted-path helpers."""

import pytest

from repro.util.paths import PathError, delete_path, get_path, set_path, walk_leaves


class TestGetPath:
    def test_simple(self):
        assert get_path({"a": {"b": 3}}, "a.b") == 3

    def test_list_index(self):
        assert get_path({"a": [10, 20]}, "a.1") == 20

    def test_missing_raises(self):
        with pytest.raises(PathError):
            get_path({"a": 1}, "a.b")

    def test_missing_with_default(self):
        assert get_path({"a": 1}, "b", default="dflt") == "dflt"

    def test_empty_path_rejected(self):
        with pytest.raises(PathError):
            get_path({}, "")

    def test_list_path_accepted(self):
        assert get_path({"a": {"b": 1}}, ["a", "b"]) == 1


class TestSetPath:
    def test_set_creates_intermediates(self):
        obj = {}
        set_path(obj, "a.b.c", 5)
        assert obj == {"a": {"b": {"c": 5}}}

    def test_set_without_create_raises(self):
        with pytest.raises(PathError):
            set_path({}, "a.b", 1, create=False)

    def test_set_into_list(self):
        obj = {"a": [0, 0]}
        set_path(obj, "a.1", 9)
        assert obj == {"a": [0, 9]}

    def test_set_through_scalar_raises(self):
        with pytest.raises(PathError):
            set_path({"a": 3}, "a.b", 1)


class TestDeletePath:
    def test_delete_leaf(self):
        obj = {"a": {"b": 1, "c": 2}}
        delete_path(obj, "a.b")
        assert obj == {"a": {"c": 2}}

    def test_delete_missing_is_noop(self):
        obj = {"a": 1}
        delete_path(obj, "x.y")
        assert obj == {"a": 1}


class TestWalkLeaves:
    def test_walks_nested(self):
        obj = {"a": {"b": 1}, "c": [1, 2]}
        leaves = dict(walk_leaves(obj))
        assert leaves == {("a", "b"): 1, ("c",): [1, 2]}

    def test_scalar_root(self):
        assert list(walk_leaves(42)) == [((), 42)]
