"""Property-based tests: Pub/Sub, codecs, IDL codegen, rolling updates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, Image, Node, rolling_update
from repro.pubsub import MessageCodec
from repro.pubsub.broker import topic_matches
from repro.rpc import generate_client_stub, parse_idl
from repro.simnet import Environment

_segment = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1, max_size=6,
)
_topic = st.lists(_segment, min_size=1, max_size=4).map("/".join)


class TestTopicMatching:
    @given(topic=_topic)
    def test_exact_match_is_reflexive(self, topic):
        assert topic_matches(topic, topic)

    @given(topic=_topic)
    def test_hash_matches_everything(self, topic):
        assert topic_matches("#", topic)

    @given(topic=_topic)
    def test_plus_matches_any_single_level(self, topic):
        parts = topic.split("/")
        for i in range(len(parts)):
            pattern = "/".join(parts[:i] + ["+"] + parts[i + 1 :])
            assert topic_matches(pattern, topic)

    @given(topic=_topic, extra=_segment)
    def test_longer_topic_never_matches_exact_pattern(self, topic, extra):
        assert not topic_matches(topic, f"{topic}/{extra}")

    @given(topic=_topic, extra=_segment)
    def test_prefix_hash_matches_deeper_topics(self, topic, extra):
        assert topic_matches(f"{topic}/#", f"{topic}/{extra}")


_message = st.fixed_dictionaries(
    {},
    optional={
        "a": st.booleans(),
        "b": st.integers(min_value=-10**6, max_value=10**6),
        "c": st.text(max_size=20),
    },
)


class TestCodecProperties:
    @given(message=_message)
    def test_roundtrip_identity(self, message):
        codec = MessageCodec("t.M", 1, {"a": bool, "b": int, "c": str})
        assert codec.decode(codec.encode(message)) == message

    @given(version_a=st.integers(1, 100), version_b=st.integers(1, 100))
    def test_cross_version_decoding_iff_equal(self, version_a, version_b):
        a = MessageCodec("t.M", version_a, {"x": int})
        b = MessageCodec("t.M", version_b, {"x": int})
        data = a.encode({"x": 1})
        if version_a == version_b:
            assert b.decode(data) == {"x": 1}
        else:
            import pytest

            from repro.pubsub import CodecError

            with pytest.raises(CodecError):
                b.decode(data)


_identifier = st.from_regex(r"[A-Z][a-zA-Z0-9]{0,8}", fullmatch=True)


class TestCodegenProperties:
    @settings(max_examples=25)
    @given(
        service=_identifier,
        methods=st.lists(_identifier, min_size=1, max_size=4, unique=True),
    )
    def test_generated_stub_always_compiles(self, service, methods):
        lines = ['syntax = "proto3";', "message Req {", "  string v = 1;", "}",
                 "message Resp {", "  string v = 1;", "}",
                 f"service {service}Svc {{"]
        for method in methods:
            lines.append(f"  rpc {method}(Req) returns (Resp);")
        lines.append("}")
        idl = parse_idl("\n".join(lines) + "\n")
        source = generate_client_stub(idl)
        compile(source, "<generated>", "exec")
        assert f"class {service}SvcStub:" in source


class TestRolloutProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        replicas=st.integers(min_value=2, max_value=6),
        max_unavailable=st.integers(min_value=1, max_value=5),
    )
    def test_surge_rollout_never_loses_availability(self, replicas,
                                                    max_unavailable):
        env = Environment()
        cluster = Cluster(env, nodes=[Node("n1", capacity=64)])
        env.run(until=cluster.create_deployment(
            "svc", Image("svc", "v1"), replicas=replicas))
        result = env.run(until=rolling_update(
            cluster, "svc", Image("svc", "v2"),
            max_unavailable=max_unavailable,
        ))
        # Surge strategy: new pods start before old ones stop.
        assert not result.had_downtime
        assert result.pods_replaced == replicas
        deployment = cluster.deployment("svc")
        assert all(p.image.tag == "v2" for p in deployment.ready_pods)
        assert len(deployment.ready_pods) == replicas
