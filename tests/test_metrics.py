"""Unit tests for the measurement layer (sloc, costmodel, latency, report)."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics import (
    Artifact,
    CompositionTask,
    StageBreakdown,
    Table,
    TaskComparison,
    count_sloc,
    format_seconds,
    summarize,
)
from repro.metrics.sloc import file_count, total_sloc


class TestSLOC:
    def test_python_comments_and_blanks_excluded(self):
        text = "# comment\n\nx = 1\n# another\ny = 2\n\n"
        assert count_sloc(text, "python") == 2

    def test_proto_comments(self):
        text = "// header\nmessage M {\n  string x = 1;\n}\n"
        assert count_sloc(text, "proto") == 3

    def test_yaml_comments(self):
        assert count_sloc("# note\nkey: value\n", "yaml") == 1

    def test_text_counts_everything_nonblank(self):
        assert count_sloc("# not a comment in plain text\nline\n", "text") == 2

    def test_artifact_sloc_property(self):
        artifact = Artifact("a.py", "x = 1\n# c\n")
        assert artifact.sloc == 1

    def test_totals_respect_changed_flag(self):
        artifacts = [
            Artifact("a.py", "x = 1\n", changed=True),
            Artifact("b.py", "y = 1\nz = 2\n", changed=False),
        ]
        assert total_sloc(artifacts) == 1
        assert file_count(artifacts) == 1
        assert total_sloc(artifacts, changed_only=False) == 3


class TestCostModel:
    def make_task(self, approach="API", operations=("c", "f", "b", "d")):
        return CompositionTask(
            task="T9",
            approach=approach,
            operations=operations,
            artifacts=[Artifact("x.py", "a = 1\nb = 2\n")],
        )

    def test_operation_string_order(self):
        task = CompositionTask("T9", "API", operations=("d", "c"))
        assert task.operation_string == "c / d"

    def test_unknown_operation_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositionTask("T9", "API", operations=("x",))

    def test_files_and_sloc(self):
        task = self.make_task()
        assert task.files == 1 and task.sloc == 2

    def test_comparison_requires_same_task(self):
        api = self.make_task()
        kn = CompositionTask("T8", "KN", operations=("f",))
        with pytest.raises(ConfigurationError):
            TaskComparison(api=api, knactor=kn)

    def test_wins_dict(self):
        api = self.make_task()
        kn = CompositionTask(
            "T9", "KN", operations=("f",),
            artifacts=[Artifact("dxg.yaml", "a: b\n", "yaml")],
        )
        wins = TaskComparison(api=api, knactor=kn).knactor_wins()
        assert all(wins.values())


class TestLatency:
    def test_summarize_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["p50"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["count"] == 4

    def test_summarize_single_value(self):
        stats = summarize([7.0])
        assert stats["p99"] == 7.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_breakdown_rows_in_ms(self):
        bd = StageBreakdown("test")
        bd.add_request({"C-I": 0.001, "S": 0.446})
        bd.add_request({"C-I": 0.003, "S": 0.446})
        row = bd.row()
        assert row["C-I"] == pytest.approx(2.0)
        assert row["I"] is None
        assert bd.count() == 2

    def test_breakdown_mean_missing_stage(self):
        assert StageBreakdown("x").mean("S") is None


class TestReport:
    def test_table_render_alignment(self):
        table = Table(["A", "Long header"], title="T")
        table.add_row(1, 2.5)
        table.add_row("xx", None)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        assert "2.5" in text and "-" in lines[-1]

    def test_row_arity_checked(self):
        table = Table(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_seconds(self):
        assert format_seconds(0.0018) == "1.8"
        assert format_seconds(None) == "-"
