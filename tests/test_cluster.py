"""Unit tests for the miniature deployment model."""

import pytest

from repro.cluster import Cluster, Image, ImageRegistry, Node, rolling_update
from repro.errors import ClusterError


@pytest.fixture
def cluster(env):
    return Cluster(env, nodes=[Node("n1", capacity=8), Node("n2", capacity=8)])


class TestRegistry:
    def test_build_and_push_costs_time(self, env, call):
        registry = ImageRegistry(env)
        result = call(registry.build_and_push(Image("checkout", "v2"), service_sloc=2000))
        assert result.build_seconds == pytest.approx(25.0 + 0.02 * 2000)
        assert result.push_seconds == pytest.approx(200.0 / 40.0)
        assert env.now == pytest.approx(result.total_seconds)
        assert registry.has(Image("checkout", "v2"))

    def test_layer_cache_cheapens_second_push(self, env, call):
        registry = ImageRegistry(env)
        first = call(registry.build_and_push(Image("svc", "v1")))
        second = call(registry.build_and_push(Image("svc", "v2")))
        assert second.push_seconds < first.push_seconds

    def test_negative_sloc_rejected(self, env):
        registry = ImageRegistry(env)
        with pytest.raises(ClusterError):
            registry.build_and_push(Image("svc", "v1"), service_sloc=-1)


class TestCluster:
    def test_create_deployment_starts_replicas(self, env, cluster, call):
        pods = call(cluster.create_deployment("checkout", Image("checkout", "v1"),
                                              replicas=3))
        assert len(pods) == 3
        assert all(p.ready for p in pods)
        assert cluster.deployment("checkout").available

    def test_pods_spread_across_nodes(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=4))
        counts = [len(n.pods) for n in cluster.nodes]
        assert counts == [2, 2]

    def test_image_pull_cached_per_node(self, env, cluster, call):
        start = env.now
        call(cluster.create_deployment("a", Image("img", "v1", size_mb=160),
                                       replicas=1))
        first = env.now - start
        start = env.now
        call(cluster.create_deployment("b", Image("img", "v1", size_mb=160),
                                       replicas=1))
        second = env.now - start
        # Second pod lands on the other node: also pulls. Third is cached.
        start = env.now
        call(cluster.create_deployment("c", Image("img", "v1", size_mb=160),
                                       replicas=1))
        third = env.now - start
        assert third < first and third < second

    def test_capacity_exhaustion(self, env, call):
        small = Cluster(env, nodes=[Node("n1", capacity=1)])
        call(small.create_deployment("a", Image("a", "v1"), replicas=1))
        with pytest.raises(ClusterError):
            call(small.create_deployment("b", Image("b", "v1"), replicas=1))

    def test_duplicate_deployment_rejected(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=1))
        with pytest.raises(ClusterError):
            cluster.create_deployment("svc", Image("svc", "v2"))


class TestRollingUpdate:
    def test_no_downtime_with_surge(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=3))
        result = call(rolling_update(cluster, "svc", Image("svc", "v2")))
        assert not result.had_downtime
        assert result.pods_replaced == 3
        deployment = cluster.deployment("svc")
        assert all(p.image.tag == "v2" for p in deployment.ready_pods)
        assert deployment.generation == 2

    def test_rollout_takes_time(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=2))
        result = call(rolling_update(cluster, "svc", Image("svc", "v2")))
        assert result.duration > 0
        assert result.timeline[0][1].startswith("rollout")
        assert result.timeline[-1][1] == "rollout complete"

    def test_max_unavailable_batches(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=4))
        fast = call(rolling_update(cluster, "svc", Image("svc", "v2"),
                                   max_unavailable=4))
        call(cluster.create_deployment("svc2", Image("svc2", "v1"), replicas=4))
        slow = call(rolling_update(cluster, "svc2", Image("svc2", "v2"),
                                   max_unavailable=1))
        assert fast.duration < slow.duration

    def test_invalid_max_unavailable(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=1))
        with pytest.raises(ClusterError):
            rolling_update(cluster, "svc", Image("svc", "v2"), max_unavailable=0)

    def test_noop_rollout_when_image_already_running(self, env, cluster, call):
        call(cluster.create_deployment("svc", Image("svc", "v1"), replicas=2))
        result = call(rolling_update(cluster, "svc", Image("svc", "v1")))
        assert result.pods_replaced == 0
