"""Tests for the ``knactor`` CLI."""

import pytest

from repro.cli.main import main


class TestCLI:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert "knactor" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "c / f / b / d" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--orders", "3"]) == 0
        out = capsys.readouterr().out
        assert "K-apiserver" in out and "K-redis-udf" in out

    def test_demo_retail(self, capsys):
        assert main(["demo", "retail", "--orders", "1", "--profile", "K-redis"]) == 0
        out = capsys.readouterr().out
        assert "status=fulfilled" in out

    def test_demo_smarthome(self, capsys):
        assert main(["demo", "smarthome"]) == 0
        out = capsys.readouterr().out
        assert "lamp changes" in out

    def test_describe_retail(self, capsys):
        assert main(["describe", "retail"]) == 0
        out = capsys.readouterr().out
        assert "knactor checkout" in out and "grant" in out

    def test_analyze_valid_dxg(self, tmp_path, capsys):
        dxg = tmp_path / "good.dxg"
        dxg.write_text(
            "Input:\n  A: app/v1/A/sa\n  B: app/v1/B/sb\n"
            "DXG:\n  B:\n    x: A.y\n"
        )
        assert main(["analyze", str(dxg)]) == 0
        out = capsys.readouterr().out
        assert "analysis   : ok" in out and "plan:" in out

    def test_analyze_cyclic_dxg_fails(self, tmp_path, capsys):
        dxg = tmp_path / "bad.dxg"
        dxg.write_text(
            "Input:\n  A: app/v1/A/sa\n  B: app/v1/B/sb\n"
            "DXG:\n  A:\n    x: B.y\n  B:\n    y: A.x\n"
        )
        assert main(["analyze", str(dxg)]) == 1

    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/file.dxg"]) == 1
        assert "error" in capsys.readouterr().err

    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "export", str(out_file), "--orders", "1"]) == 0
        import json

        data = json.loads(out_file.read_text())
        assert len(data["traceEvents"]) > 10
        # Both span planes land in the file: causal DAG spans plus the
        # latency tracer's flat events.
        categories = {entry["cat"] for entry in data["traceEvents"]}
        assert "causal" in categories and len(categories) > 1

    def test_trace_requires_subcommand(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "trace.json")])

    def test_trace_request(self, capsys):
        assert main(["trace", "request", "o00001", "--orders", "1"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "place-order" in out
        assert "order/o00001" in out

    def test_trace_request_unknown_order(self, capsys):
        assert main(["trace", "request", "o99999", "--orders", "1"]) == 1
        err = capsys.readouterr().err
        assert "no trace" in err and "order/o00001" in err

    def test_top(self, capsys):
        assert main(["top", "--orders", "1"]) == 0
        out = capsys.readouterr().out
        assert "store_ops_total" in out
        assert "traces 1" in out

    def test_top_slo(self, capsys):
        assert main(["top", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "SLO report: sensorfleet" in out
        assert "burn rates" in out
        assert "budget left" in out
        # The flash crowd burns the availability budget hard enough to
        # trip both multi-window alerts.
        assert "[ALERT]" in out
        assert "alerts firing: 2 -- sensorfleet-availability" in out

    def test_bench_names_resolve_to_modules(self):
        from pathlib import Path

        from repro.cli.main import BENCHMARKS, build_parser

        benchmarks = Path(__file__).resolve().parent.parent / "benchmarks"
        for name, module in BENCHMARKS.items():
            args = build_parser().parse_args(["bench", name])
            assert args.bench == name
            assert (benchmarks / f"{module}.py").is_file()

    def test_unknown_bench_exits(self):
        with pytest.raises(SystemExit):
            main(["bench", "frobnicate"])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
