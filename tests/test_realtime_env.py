"""Unit tests for the realtime kernel primitives.

The realtime environment keeps the sim's scheduling discipline but
executes it against the wall clock; these tests drive the same kernel
surface the sim tests drive (timeouts, conditions, interrupts, queues)
at small time factors, plus the realtime-only surface: pacing,
external sources, and the asyncio bridge.
"""

import time

import pytest

from repro.realtime import (
    Interrupt,
    RealtimeEnvironment,
    Resource,
    SimulationError,
    Store,
)

#: Real seconds per schedule second for paced tests: fast, but long
#: enough that ordering cannot be won by accident.
FACTOR = 0.01


@pytest.fixture
def renv():
    env = RealtimeEnvironment(factor=FACTOR)
    yield env
    env.close()


class TestKernelSemantics:
    def test_timeout_ordering(self, renv):
        fired = []
        for delay in (0.3, 0.1, 0.2):
            def waiter(delay=delay):
                yield renv.timeout(delay)
                fired.append(delay)
            renv.process(waiter())
        renv.run()
        assert fired == [0.1, 0.2, 0.3]
        assert renv.now == 0.3

    def test_same_time_events_keep_creation_order(self, renv):
        fired = []
        for name in "abc":
            def waiter(name=name):
                yield renv.timeout(0.1)
                fired.append(name)
            renv.process(waiter())
        renv.run()
        assert fired == ["a", "b", "c"]

    def test_any_of_returns_first(self, renv):
        def race():
            slow = renv.timeout(0.5, value="slow")
            fast = renv.timeout(0.1, value="fast")
            result = yield renv.any_of([fast, slow])
            return list(result.values())

        assert renv.run(until=renv.process(race())) == ["fast"]

    def test_all_of_collects_everything(self, renv):
        def gather():
            first = renv.timeout(0.1, value=1)
            second = renv.timeout(0.2, value=2)
            result = yield renv.all_of([first, second])
            return sorted(result.values())

        assert renv.run(until=renv.process(gather())) == [1, 2]

    def test_interrupt_cuts_a_sleep_short(self, renv):
        log = []

        def sleeper():
            try:
                yield renv.timeout(10.0)
                log.append("overslept")
            except Interrupt as interrupt:
                log.append(("interrupted", interrupt.cause, renv.now))

        def alarm(target):
            yield renv.timeout(0.2)
            target.interrupt("wake")

        sleeper_proc = renv.process(sleeper())
        renv.process(alarm(sleeper_proc))
        # Run to the sleeper, not to an empty queue: the stale 10s timer
        # stays in the heap and must not cost 10 schedule seconds.
        renv.run(until=sleeper_proc)
        assert log == [("interrupted", "wake", pytest.approx(0.2))]

    def test_store_blocks_getter_until_put(self, renv):
        store = Store(renv)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, renv.now))

        def producer():
            yield renv.timeout(0.2)
            yield store.put("item")

        renv.process(consumer())
        renv.process(producer())
        renv.run()
        assert got == [("item", pytest.approx(0.2))]

    def test_resource_serializes_holders(self, renv):
        resource = Resource(renv, capacity=1)
        order = []

        def holder(name):
            yield resource.acquire()
            try:
                order.append((name, renv.now))
                yield renv.timeout(0.1)
            finally:
                resource.release()

        renv.process(holder("first"))
        renv.process(holder("second"))
        renv.run()
        assert order == [("first", pytest.approx(0.0)),
                         ("second", pytest.approx(0.1))]

    def test_failed_event_raises_out_of_run(self, renv):
        def boom():
            yield renv.timeout(0.01)
            raise ValueError("kernel must surface this")

        renv.process(boom())
        with pytest.raises(ValueError, match="kernel must surface this"):
            renv.run()

    def test_run_until_event_with_empty_queue_raises(self, renv):
        with pytest.raises(SimulationError, match="queue empty"):
            renv.run(until=renv.event())


class TestWallClockPacing:
    def test_schedule_time_costs_real_time(self):
        env = RealtimeEnvironment(factor=0.05)
        env.process(_sleep(env, 1.0))
        started = time.monotonic()
        env.run()
        elapsed = time.monotonic() - started
        assert elapsed >= 0.045, f"1 schedule-s at factor=0.05 took {elapsed}s"
        env.close()

    def test_factor_zero_runs_flat_out(self):
        env = RealtimeEnvironment(factor=0.0)

        def chain():
            for _ in range(50):
                yield env.timeout(10.0)

        started = time.monotonic()
        env.run(until=env.process(chain()))
        assert time.monotonic() - started < 1.0
        assert env.now == 500.0
        env.close()

    def test_finite_horizon_is_paced_not_jumped(self):
        env = RealtimeEnvironment(factor=0.05)
        started = time.monotonic()
        env.run(until=2.0)  # empty queue: still 2 schedule-s of wall pacing
        assert time.monotonic() - started >= 0.09
        assert env.now == 2.0
        env.close()

    def test_overdue_events_fire_without_error_by_default(self):
        env = RealtimeEnvironment(factor=0.0)
        env.process(_sleep(env, 1000.0))
        env.run()  # 1000 schedule-s, zero wall: lateness is not an error
        assert env.now == 1000.0
        env.close()

    def test_wall_now_advances_while_schedule_paces(self):
        env = RealtimeEnvironment(factor=0.05)
        env.process(_sleep(env, 1.0))
        env.run()
        assert env.wall_now >= 0.045
        assert env.trace_clock() == pytest.approx(env.wall_now, abs=0.05)
        env.close()

    def test_negative_factor_rejected(self):
        with pytest.raises(SimulationError, match="negative time factor"):
            RealtimeEnvironment(factor=-1.0)


class TestExternalSources:
    def test_injected_event_wakes_an_idle_kernel(self, renv):
        evt = renv.event()
        renv.register_external_source("test-socket")
        renv.loop.call_later(0.03, lambda: evt.succeed("hello"))
        assert renv.run(until=evt) == "hello"
        renv.unregister_external_source("test-socket")

    def test_unregister_lets_run_finish(self, renv):
        renv.register_external_source("test-socket")
        renv.loop.call_later(
            0.03, lambda: renv.unregister_external_source("test-socket")
        )
        started = time.monotonic()
        renv.run()  # would idle forever while the source stayed registered
        assert time.monotonic() - started < 2.0

    def test_future_of_bridges_kernel_to_coroutines(self, renv):
        def work():
            yield renv.timeout(0.1)
            return "done"

        future = renv.future_of(renv.process(work()))
        renv.run()
        assert renv.loop.run_until_complete(future) == "done"

    def test_future_of_carries_failures(self, renv):
        future = renv.future_of(renv.process(_failing(renv)))
        renv.run()  # the bridge defuses the failure: run() stays clean
        with pytest.raises(ValueError, match="bridged"):
            renv.loop.run_until_complete(future)

    def test_closed_environment_refuses_to_run(self):
        env = RealtimeEnvironment(factor=FACTOR)
        env.close()
        with pytest.raises(SimulationError, match="closed"):
            env.run()


def _failing(env):
    yield env.timeout(0.01)
    raise ValueError("bridged failure")


def _sleep(env, delay):
    yield env.timeout(delay)
