"""Unit tests for Store (FIFO queue) and Resource (semaphore)."""

import pytest

from repro.simnet import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc(env):
            yield store.put("x")
            item = yield store.get()
            return item

        p = env.process(proc(env))
        assert env.run(until=p) == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3.0, "late")]

    def test_fifo_ordering(self, env):
        store = Store(env)
        order = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                order.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_bounded_capacity_blocks_putter(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("put-a", 0.0), ("put-b", 5.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len_reflects_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestResource:
    def test_capacity_limits_concurrency(self, env):
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env, name):
            yield resource.acquire()
            active.append(name)
            peak.append(len(active))
            yield env.timeout(1.0)
            active.remove(name)
            resource.release()

        for i in range(5):
            env.process(worker(env, i))
        env.run()
        assert max(peak) == 2

    def test_fifo_grant_order(self, env):
        resource = Resource(env, capacity=1)
        grants = []

        def worker(env, name, start_delay):
            yield env.timeout(start_delay)
            yield resource.acquire()
            grants.append(name)
            yield env.timeout(10.0)
            resource.release()

        env.process(worker(env, "first", 0.0))
        env.process(worker(env, "second", 1.0))
        env.process(worker(env, "third", 2.0))
        env.run()
        assert grants == ["first", "second", "third"]

    def test_release_without_acquire_raises(self, env):
        resource = Resource(env)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_counters(self, env):
        resource = Resource(env, capacity=1)

        def holder(env):
            yield resource.acquire()
            yield env.timeout(5.0)
            resource.release()

        def waiter(env):
            yield env.timeout(1.0)
            yield resource.acquire()
            resource.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=2.0)
        assert resource.in_use == 1
        assert resource.queued == 1
        env.run()
        assert resource.in_use == 0


class TestStoreOverflow:
    """Bounded queues with typed overflow policies (repro.flow)."""

    def drain(self, env, store):
        items = []

        def consumer(env):
            while True:
                items.append((yield store.get()))

        env.process(consumer(env))
        return items

    def fill(self, env, store, values):
        for value in values:
            env.run(until=store.put(value))

    def test_shed_oldest_evicts_head(self, env):
        dead = []
        store = Store(env, capacity=2, overflow="shed_oldest",
                      on_shed=dead.append)
        self.fill(env, store, ["a", "b", "c", "d"])
        assert list(store.items) == ["c", "d"]
        assert store.shed == 2 and dead == ["a", "b"]

    def test_shed_newest_drops_incoming(self, env):
        dead = []
        store = Store(env, capacity=2, overflow="shed_newest",
                      on_shed=dead.append)
        self.fill(env, store, ["a", "b", "c", "d"])
        assert list(store.items) == ["a", "b"]
        assert store.shed == 2 and dead == ["c", "d"]

    def test_reject_fails_put_with_retryable_error(self, env):
        from repro.errors import OverloadedError, UnavailableError

        store = Store(env, capacity=1, overflow="reject")
        env.run(until=store.put("a"))
        with pytest.raises(OverloadedError) as excinfo:
            env.run(until=store.put("b"))
        assert isinstance(excinfo.value, UnavailableError)  # retryable
        assert store.rejected == 1
        assert list(store.items) == ["a"]

    def test_waiting_getter_absorbs_would_be_shed(self, env):
        store = Store(env, capacity=1, overflow="shed_newest")
        items = self.drain(env, store)
        env.run()
        self.fill(env, store, ["a", "b"])
        env.run()
        assert items == ["a", "b"] and store.shed == 0

    def test_peak_depth_recorded(self, env):
        store = Store(env, capacity=8)
        self.fill(env, store, list(range(5)))
        env.run(until=store.get())
        assert store.peak_depth == 5

    def test_unknown_policy_rejected(self, env):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="overflow"):
            Store(env, capacity=1, overflow="fifo")

    def test_block_policy_still_blocks(self, env):
        store = Store(env, capacity=1, overflow="block")
        env.run(until=store.put("a"))
        put = store.put("b")
        env.run()
        assert not put.triggered  # the classic behaviour: wait for room
        assert store.shed == 0 and store.rejected == 0
