"""Unit tests for Store (FIFO queue) and Resource (semaphore)."""

import pytest

from repro.simnet import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc(env):
            yield store.put("x")
            item = yield store.get()
            return item

        p = env.process(proc(env))
        assert env.run(until=p) == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3.0, "late")]

    def test_fifo_ordering(self, env):
        store = Store(env)
        order = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                order.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_bounded_capacity_blocks_putter(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("put-a", 0.0), ("put-b", 5.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len_reflects_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert len(store) == 2


class TestResource:
    def test_capacity_limits_concurrency(self, env):
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def worker(env, name):
            yield resource.acquire()
            active.append(name)
            peak.append(len(active))
            yield env.timeout(1.0)
            active.remove(name)
            resource.release()

        for i in range(5):
            env.process(worker(env, i))
        env.run()
        assert max(peak) == 2

    def test_fifo_grant_order(self, env):
        resource = Resource(env, capacity=1)
        grants = []

        def worker(env, name, start_delay):
            yield env.timeout(start_delay)
            yield resource.acquire()
            grants.append(name)
            yield env.timeout(10.0)
            resource.release()

        env.process(worker(env, "first", 0.0))
        env.process(worker(env, "second", 1.0))
        env.process(worker(env, "third", 2.0))
        env.run()
        assert grants == ["first", "second", "third"]

    def test_release_without_acquire_raises(self, env):
        resource = Resource(env)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_counters(self, env):
        resource = Resource(env, capacity=1)

        def holder(env):
            yield resource.acquire()
            yield env.timeout(5.0)
            resource.release()

        def waiter(env):
            yield env.timeout(1.0)
            yield resource.acquire()
            resource.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=2.0)
        assert resource.in_use == 1
        assert resource.queued == 1
        env.run()
        assert resource.in_use == 0
