"""Property: cross-shard txns are atomic and exactly-once under chaos.

Seeded, deterministic: each seed derives a random workload of cross-shard
op batches AND a random fault schedule (coordinator kills -- both timed
and phase-targeted -- plus coordinator<->shard partitions).  Whatever the
interleaving, two invariants must hold at quiescence:

- **atomicity**: every transaction's keys are either ALL present with
  that transaction's payload, or ALL absent.  Never a partial batch.
- **exactly-once**: each transaction carries an idempotence key and is
  submitted through a retry loop that may re-submit after retryable
  failures; replaying every key again at the end must change nothing
  (creates would blow up with AlreadyExistsError if effects re-applied).

Shards are WAL-backed (ApiServer) so participant crashes cannot excuse a
lost effect, and every in-doubt participant must drain by the end.
"""

import random

import pytest

from repro.errors import (
    ConflictError,
    DeadlineExceededError,
    StoreError,
    UnavailableError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer, ShardRing, ShardedStore, ShardedStoreClient
from repro.txn.coordinator import PHASES

N_SHARDS = 3
N_TXNS = 8


def build(seed):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0004))
    shards = [
        ApiServer(env, net, location=f"shard-{i}", watch_overhead=0.0)
        for i in range(N_SHARDS)
    ]
    store = ShardedStore(shards, name=f"chaos-{seed}")
    client = ShardedStoreClient(store, "driver")
    return env, net, store, client


def workload(seed):
    """Deterministic batches, each guaranteed to span >= 2 shards."""
    rng = random.Random(seed * 7919 + 13)
    batches = []
    for t in range(N_TXNS):
        keys, covered = [], set()
        i = 0
        want = rng.randrange(2, 5)
        while len(keys) < want or len(covered) < 2:
            key = f"s{seed}-t{t}-k{i}"
            i += 1
            idx = ShardRing.for_count(N_SHARDS).owner_index(key)
            if len(keys) < want or idx not in covered:
                keys.append(key)
                covered.add(idx)
            if i > 64:  # safety; never hit in practice
                break
        ops = [
            {"action": "create", "key": key, "data": {"txn": t, "seed": seed}}
            for key in keys
        ]
        mode = rng.choice(("2pc", "2pc", "saga"))
        batches.append((t, mode, ops))
    return batches


def chaos_plan(seed, coordinator_name, endpoints):
    rng = random.Random(seed * 104729 + 7)
    plan = FaultPlan()
    for _ in range(3):
        plan.kill_during_txn(
            coordinator_name, rng.choice(PHASES),
            at=rng.uniform(0.0, 1.2), duration=rng.uniform(0.05, 0.25),
        )
    for _ in range(2):
        plan.kill_process(coordinator_name, at=rng.uniform(0.0, 1.5),
                          duration=rng.uniform(0.05, 0.2))
    for _ in range(2):
        src, dst = rng.sample(list(endpoints), 2)
        plan.partition(src, dst, at=rng.uniform(0.0, 1.5),
                       duration=rng.uniform(0.02, 0.15))
    return plan


def submit_with_retries(env, client, mode, ops, idem_key, outcomes, t):
    """The disciplined caller: retry retryables with the SAME idem key."""
    attempts = 0
    while attempts < 60:
        attempts += 1
        try:
            yield client.txn(ops, mode=mode, idempotence_key=idem_key)
            outcomes[t] = "committed"
            return
        except (UnavailableError, DeadlineExceededError):
            yield env.timeout(0.05)
        except ConflictError:
            yield env.timeout(0.03)  # in-doubt lock; decided soon
        except StoreError:
            outcomes[t] = "aborted"
            return
    outcomes[t] = "gave-up"


@pytest.mark.parametrize("seed", range(5))
def test_atomic_and_exactly_once_under_chaos(seed):
    env, net, store, client = build(seed)
    coord = store.coordinator
    injector = FaultInjector(env, net, processes={"coord": coord})
    endpoints = [coord.location] + [s.location for s in store.shards]
    injector.schedule(chaos_plan(seed, "coord", endpoints))

    batches = workload(seed)
    outcomes = {}
    rng = random.Random(seed)
    for t, mode, ops in batches:
        start = rng.uniform(0.0, 1.5)
        timer = env.timeout(start)
        timer.callbacks.append(
            lambda _evt, t=t, mode=mode, ops=ops: env.process(
                submit_with_retries(env, client, mode, ops,
                                    f"idem-{seed}-{t}", outcomes, t)
            )
        )
    env.run()
    # Chaos horizon passed and everything quiesced.  If the coordinator
    # died with no restart pending (shouldn't happen: every kill window
    # ends), recovery would be owed -- assert it is not.
    assert coord.alive

    # -- atomicity: all-or-nothing per transaction --------------------------
    for t, mode, ops in batches:
        present = []
        for op in ops:
            shard = store.shard_for(op["key"])
            present.append(op["key"] in shard._objects)
        assert len(set(present)) == 1, (
            f"seed {seed} txn {t} ({mode}, {outcomes.get(t)}) partially "
            f"applied: {dict(zip([op['key'] for op in ops], present))}"
        )
        if outcomes.get(t) == "committed":
            assert all(present), (
                f"seed {seed} txn {t} reported committed but is absent"
            )

    # -- exactly-once: replaying every key changes nothing ------------------
    applied_before = {
        s.location: sorted(s._objects) for s in store.shards
    }
    for t, mode, ops in batches:
        if outcomes.get(t) != "committed":
            continue
        replay = env.process(submit_with_retries(
            env, client, mode, ops, f"idem-{seed}-{t}", outcomes, t
        ))
        env.run(until=replay)
        assert outcomes[t] == "committed"  # cached, not re-applied
    assert {
        s.location: sorted(s._objects) for s in store.shards
    } == applied_before

    # -- no participant left in doubt ---------------------------------------
    assert store.in_doubt_txns == 0
    assert not coord._inflight


@pytest.mark.parametrize("seed", [0, 3])
def test_same_seed_same_fingerprint(seed):
    """The whole chaotic run is deterministic, injector log included."""

    def run_once():
        env, net, store, client = build(seed)
        coord = store.coordinator
        injector = FaultInjector(env, net, processes={"coord": coord})
        endpoints = [coord.location] + [s.location for s in store.shards]
        injector.schedule(chaos_plan(seed, "coord", endpoints))
        outcomes = {}
        rng = random.Random(seed)
        for t, mode, ops in workload(seed):
            start = rng.uniform(0.0, 1.5)
            timer = env.timeout(start)
            timer.callbacks.append(
                lambda _evt, t=t, mode=mode, ops=ops: env.process(
                    submit_with_retries(env, client, mode, ops,
                                        f"idem-{seed}-{t}", outcomes, t)
                )
            )
        env.run()
        state = {
            s.location: {k: o.revision for k, o in sorted(s._objects.items())}
            for s in store.shards
        }
        return state, dict(outcomes), injector.trace(), coord.txn_stats()

    assert run_once() == run_once()
