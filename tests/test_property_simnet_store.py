"""Property-based tests: simulation kernel and store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import Environment, FixedLatency, Link, Network, UniformLatency
from repro.store import ApiServer, ApiServerClient, MemKV, MemKVClient
from repro.store.apiserver import merge_patch
from repro.store.base import estimate_size


def run_op(env, event):
    return env.run(until=event)


class TestSimnetProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                           max_size=30))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            t = env.timeout(delay)
            t.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(count=st.integers(min_value=1, max_value=60),
           seed=st.integers(min_value=0, max_value=2**20))
    def test_fifo_link_never_reorders(self, count, seed):
        env = Environment()
        link = Link(env, UniformLatency(0.0, 1.0, seed=seed), fifo=True)
        received = []
        for i in range(count):
            link.send(received.append, i)
        env.run()
        assert received == list(range(count))

    @given(seed=st.integers(min_value=0, max_value=2**20),
           count=st.integers(min_value=1, max_value=30))
    def test_same_seed_same_schedule(self, seed, count):
        def run_once():
            env = Environment()
            link = Link(env, UniformLatency(0, 0.5, seed=seed))
            times = []
            for i in range(count):
                link.send(lambda m: times.append(env.now), i)
            env.run()
            return times

        assert run_once() == run_once()


# Strategy: JSON-ish nested payloads with identifier-safe keys.
_scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=12,
    ),
)
_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=8
)
_payloads = st.recursive(
    _scalars,
    lambda children: st.dictionaries(_keys, children, max_size=4),
    max_leaves=12,
).filter(lambda v: isinstance(v, dict))


class TestStoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(payloads=st.lists(_payloads, min_size=1, max_size=8))
    def test_revisions_strictly_increase(self, payloads):
        env = Environment()
        net = Network(env, default_latency=FixedLatency(0))
        client = ApiServerClient(ApiServer(env, net, watch_overhead=0),
                                 location="t")
        revisions = []
        for i, payload in enumerate(payloads):
            view = run_op(env, client.create(f"k{i}", payload))
            revisions.append(view["revision"])
            view = run_op(env, client.update(f"k{i}", payload))
            revisions.append(view["revision"])
        assert revisions == sorted(revisions)
        assert len(set(revisions)) == len(revisions)

    @settings(max_examples=40, deadline=None)
    @given(payloads=st.lists(_payloads, min_size=1, max_size=8),
           use_memkv=st.booleans())
    def test_watch_completeness(self, payloads, use_memkv):
        """Every commit is observed exactly once, in commit order."""
        env = Environment()
        net = Network(env, default_latency=FixedLatency(0.001))
        backend_cls, client_cls = (
            (MemKV, MemKVClient) if use_memkv else (ApiServer, ApiServerClient)
        )
        server = backend_cls(env, net, watch_overhead=0.0005)
        client = client_cls(server, location="writer")
        watcher = client_cls(server, location="watcher")
        events = []
        watcher.watch(events.append)
        expected = []
        for i, payload in enumerate(payloads):
            view = run_op(env, client.create(f"k{i}", payload))
            expected.append(view["revision"])
        env.run()
        assert [e.revision for e in events] == expected

    @settings(max_examples=60, deadline=None)
    @given(payload=_payloads)
    def test_store_roundtrip_identity(self, payload):
        env = Environment()
        net = Network(env, default_latency=FixedLatency(0))
        client = ApiServerClient(ApiServer(env, net, watch_overhead=0),
                                 location="t")
        run_op(env, client.create("k", payload))
        assert run_op(env, client.get("k"))["data"] == payload

    @given(base=_payloads, patch=_payloads)
    def test_merge_patch_applies_every_patch_leaf(self, base, patch):
        from repro.util.paths import get_path, walk_leaves

        result = merge_patch(base, patch)
        for path, value in walk_leaves(patch):
            if value is None:
                continue  # None deletes
            if isinstance(value, dict) and not value:
                continue  # empty dicts merge to whatever was there
            assert get_path(result, list(path)) == value

    @given(base=_payloads, patch=_payloads)
    def test_merge_patch_is_idempotent(self, base, patch):
        once = merge_patch(base, patch)
        twice = merge_patch(once, patch)
        assert once == twice

    @given(payload=_payloads)
    def test_estimate_size_positive_and_monotone(self, payload):
        size = estimate_size(payload)
        assert size > 0
        grown = dict(payload)
        grown["zzextra"] = "x" * 10
        assert estimate_size(grown) > size
