"""End-to-end tests for DXG execution against real DE handles."""

import pytest

from repro.core.dxg import DXGExecutor, parse_dxg
from repro.core.dxg.executor import ExecutorOptions
from repro.errors import ConfigurationError
from repro.exchange import ObjectDE
from repro.store import ApiServer, MemKV

CHECKOUT = """\
schema: Retail/v1/Checkout/Order
items: array
address: string
cost: number
currency: string
shippingCost: number # +kr: external
trackingID: string # +kr: external
"""

SHIPPING = """\
schema: Retail/v1/Shipping/Shipment
items: array # +kr: external
addr: string # +kr: external
method: string # +kr: external
id: string
quote:
  price: number
  currency: string
"""

DXG = """\
Input:
  C: Retail/v1/Checkout/knactor-checkout
  S: Retail/v1/Shipping/knactor-shipping
DXG:
  C.order:
    shippingCost: currency_convert(S.quote.price, S.quote.currency, this.currency)
    trackingID: S.id
  S:
    items: '[item.name for item in C.order.items]'
    addr: C.order.address
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""


@pytest.fixture
def setup(env, zero_net):
    backend = ApiServer(env, zero_net, watch_overhead=0.0)
    de = ObjectDE(env, backend)
    de.host_store("knactor-checkout", CHECKOUT, owner="checkout")
    de.host_store("knactor-shipping", SHIPPING, owner="shipping")
    de.grant("cast", "knactor-checkout", role="integrator")
    de.grant("cast", "knactor-shipping", role="integrator")
    spec = parse_dxg(DXG)
    executor = DXGExecutor(
        env,
        spec,
        handles={
            "C": de.handle("knactor-checkout", principal="cast"),
            "S": de.handle("knactor-shipping", principal="cast"),
        },
    )
    return de, executor


def make_order(cost=100, currency="USD"):
    return {
        "items": [{"name": "mug"}, {"name": "pen"}],
        "address": "12 Elm St",
        "cost": cost,
        "currency": currency,
    }


class TestExchange:
    def test_creates_shipment_from_order(self, env, setup, call):
        de, executor = setup
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order()))
        stats = call(executor.exchange("o1"))
        assert stats.creates == 1
        shipping = de.handle("knactor-shipping", principal="shipping")
        shipment = call(shipping.get("o1"))["data"]
        assert shipment["items"] == ["mug", "pen"]
        assert shipment["addr"] == "12 Elm St"
        assert shipment["method"] == "ground"

    def test_conditional_policy_air_over_1000(self, env, setup, call):
        de, executor = setup
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order(cost=1500)))
        call(executor.exchange("o1"))
        shipping = de.handle("knactor-shipping", principal="shipping")
        assert call(shipping.get("o1"))["data"]["method"] == "air"

    def test_backfill_after_reconciler_fills_quote(self, env, setup, call):
        de, executor = setup
        checkout = de.handle("knactor-checkout", principal="checkout")
        shipping = de.handle("knactor-shipping", principal="shipping")
        call(checkout.create("order/o1", make_order(currency="USD")))
        call(executor.exchange("o1"))
        # Order not yet filled: quote/id missing on the shipment.
        order = call(checkout.get("order/o1"))["data"]
        assert "shippingCost" not in order and "trackingID" not in order
        # The Shipping "reconciler" produces id + quote.
        call(
            shipping.patch(
                "o1", {"id": "trk-9", "quote": {"price": 10.0, "currency": "EUR"}}
            )
        )
        call(executor.exchange("o1"))
        order = call(checkout.get("order/o1"))["data"]
        assert order["trackingID"] == "trk-9"
        assert order["shippingCost"] == pytest.approx(10.8)

    def test_idempotent_on_unchanged_sources(self, env, setup, call):
        de, executor = setup
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order()))
        call(executor.exchange("o1"))
        stats = call(executor.exchange("o1"))
        assert stats.writes == 0 and stats.creates == 0

    def test_missing_order_produces_nothing(self, env, setup, call):
        de, executor = setup
        stats = call(executor.exchange("ghost"))
        assert stats.writes == 0
        assert executor.totals.writes == 0

    def test_patch_only_target_never_created(self, env, setup, call):
        """The integrator must not create orders (C.order is patch-only)."""
        de, executor = setup
        shipping = de.handle("knactor-shipping", principal="shipping")
        call(shipping.create("s-lonely", {"id": "trk-1"}))
        call(executor.exchange("s-lonely"))
        checkout = de.handle("knactor-checkout", principal="checkout")
        views = call(checkout.list())
        assert views == []

    def test_source_update_propagates_on_reexchange(self, env, setup, call):
        de, executor = setup
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order(cost=100)))
        call(executor.exchange("o1"))
        call(checkout.patch("order/o1", {"cost": 2000}))
        call(executor.exchange("o1"))
        shipping = de.handle("knactor-shipping", principal="shipping")
        assert call(shipping.get("o1"))["data"]["method"] == "air"


class TestOptions:
    def test_unconsolidated_issues_more_writes(self, env, zero_net, call):
        backend = ApiServer(env, zero_net, watch_overhead=0.0)
        de = ObjectDE(env, backend)
        de.host_store("knactor-checkout", CHECKOUT, owner="checkout")
        de.host_store("knactor-shipping", SHIPPING, owner="shipping")
        de.grant("cast", "knactor-checkout", role="integrator")
        de.grant("cast", "knactor-shipping", role="integrator")
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order()))

        def run_with(consolidate):
            executor = DXGExecutor(
                env,
                parse_dxg(DXG),
                handles={
                    "C": de.handle("knactor-checkout", principal="cast"),
                    "S": de.handle("knactor-shipping", principal="cast"),
                },
                options=ExecutorOptions(consolidate=consolidate),
            )
            return executor

        consolidated = run_with(True)
        stats_c = call(consolidated.exchange("o1"))
        # Reset the shipment for a fair comparison.
        shipping = de.handle("knactor-shipping", principal="shipping")
        call(shipping.delete("o1"))
        unconsolidated = run_with(False)
        stats_u = call(unconsolidated.exchange("o1"))
        # Creation is one op either way, but updates split per field:
        # compare total write ops for the same logical change.
        assert stats_u.writes >= stats_c.writes

    def test_cache_mode_reads_nothing(self, env, setup, call):
        de, executor = setup
        executor.options.refresh_reads = False
        executor.update_cache("C", "order", "o1", make_order())
        stats = call(executor.exchange("o1"))
        assert stats.reads == 0
        assert stats.creates == 1  # still produced the shipment

    def test_max_passes_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutorOptions(max_passes=0)

    def test_unbound_alias_rejected(self, env, setup):
        de, _ = setup
        with pytest.raises(ConfigurationError):
            DXGExecutor(env, parse_dxg(DXG), handles={})


class TestPushdown:
    def test_udf_exchange_matches_remote_path(self, env, zero_net, call):
        backend = MemKV(env, zero_net, watch_overhead=0.0)
        de = ObjectDE(env, backend)
        de.host_store("knactor-checkout", CHECKOUT, owner="checkout")
        de.host_store("knactor-shipping", SHIPPING, owner="shipping")
        de.grant("cast", "knactor-checkout", role="integrator")
        de.grant("cast", "knactor-shipping", role="integrator")
        executor = DXGExecutor(
            env,
            parse_dxg(DXG),
            handles={
                "C": de.handle("knactor-checkout", principal="cast"),
                "S": de.handle("knactor-shipping", principal="cast"),
            },
        )
        udf = executor.as_udf(
            {"C": "knactor-checkout/", "S": "knactor-shipping/"}
        )
        backend.functions.register("dxg", udf, cost=executor.udf_cost)
        checkout = de.handle("knactor-checkout", principal="checkout")
        call(checkout.create("order/o1", make_order(cost=1500)))
        from repro.store import MemKVClient

        kv = MemKVClient(backend, location="cast")
        result = call(kv.fcall("dxg", "o1"))
        assert result["writes"] >= 1
        shipping = de.handle("knactor-shipping", principal="shipping")
        shipment = call(shipping.get("o1"))["data"]
        assert shipment["method"] == "air"
        assert shipment["items"] == ["mug", "pen"]

    def test_udf_missing_prefix_rejected(self, env, setup):
        _de, executor = setup
        with pytest.raises(ConfigurationError):
            executor.as_udf({"C": "knactor-checkout/"})
