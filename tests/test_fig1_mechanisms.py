"""Fig. 1: the same composition over RPC, REST, Pub/Sub, and Knactor.

Service A (thermostat) produces readings; service B (display) shows them.
All four mechanisms achieve the same end state.  What differs -- and what
these tests pin down -- is WHERE the composition knowledge lives:

- RPC:    A holds B's stub/IDL and calls it.
- REST:   A hard-codes B's URL structure and representation.
- Pub/Sub: A and B share a topic name and a message codec.
- Knactor: A and B know nothing; a third-party integrator holds the
  mapping, reconfigurable at run time.
"""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, StoreBinding
from repro.exchange import ObjectDE
from repro.pubsub import Broker, MessageCodec, PubSubClient
from repro.rest import RestClient, RestServer
from repro.rpc import RPCChannel, RPCServer, parse_idl
from repro.simnet import Environment, FixedLatency, Network
from repro.store import MemKV

READING = {"celsius": 21.5, "room": "den"}
EXPECTED_TEXT = "den: 21.5"


class DisplayState:
    def __init__(self):
        self.text = None


@pytest.fixture
def net(env):
    return Network(env, default_latency=FixedLatency(0.0005))


def test_rpc_mechanism(env, net):
    display = DisplayState()
    idl = parse_idl(
        "message ShowRequest {\n  string text = 1;\n}\n"
        "message Empty {\n}\n"
        "service DisplayService {\n  rpc Show(ShowRequest) returns (Empty);\n}\n"
    )
    server = RPCServer(env, net, "display")

    def show(request):
        display.text = request["text"]
        return {}

    server.register("DisplayService", "Show", show, idl=idl)
    # COUPLING: the thermostat imports the display's IDL and stub.
    channel = RPCChannel(env, server, "thermostat")
    env.run(until=channel.call(
        "DisplayService", "Show",
        {"text": f"{READING['room']}: {READING['celsius']}"},
    ))
    assert display.text == EXPECTED_TEXT


def test_rest_mechanism(env, net):
    display = DisplayState()
    server = RestServer(env, net, "display")

    def put_panel(request):
        display.text = request.body["text"]
        return {"ok": True}

    server.route("PUT", "/panel", put_panel)
    # COUPLING: the thermostat hard-codes the display's URL + body shape.
    client = RestClient(env, server, "thermostat")
    env.run(until=client.put(
        "/panel", body={"text": f"{READING['room']}: {READING['celsius']}"},
    ))
    assert display.text == EXPECTED_TEXT


def test_pubsub_mechanism(env, net):
    display = DisplayState()
    broker = Broker(env, net)
    # COUPLING: both sides hold the same topic name and codec.
    codec = MessageCodec("display.Show", 1, {"text": str})
    subscriber = PubSubClient(broker, "display")
    subscriber.subscribe(
        "home/display", lambda _t, m: setattr(display, "text", m["text"]),
        codec=codec,
    )
    publisher = PubSubClient(broker, "thermostat")
    env.run(until=publisher.publish(
        "home/display",
        {"text": f"{READING['room']}: {READING['celsius']}"},
        codec=codec,
    ))
    env.run()
    assert display.text == EXPECTED_TEXT


def test_knactor_mechanism(env, net):
    runtime = KnactorRuntime(env, network=net)
    de = ObjectDE(env, MemKV(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", de)
    runtime.add_knactor(Knactor("thermostat", [StoreBinding(
        "default", "object",
        "schema: Home/v1/Thermostat/Reading\ncelsius: number\nroom: string\n",
    )]))
    runtime.add_knactor(Knactor("display", [StoreBinding(
        "default", "object",
        "schema: Home/v1/Display/Panel\ntext: string # +kr: external\n",
    )]))
    # NO coupling: the mapping lives in a third module.
    de.grant("cast", "knactor-thermostat", role="reader")
    de.grant("cast", "knactor-display", role="integrator")
    runtime.add_integrator(Cast("cast", (
        "Input:\n"
        "  T: Home/v1/Thermostat/knactor-thermostat\n"
        "  D: Home/v1/Display/knactor-display\n"
        "DXG:\n"
        "  D:\n"
        "    text: concat(T.room, ': ', T.celsius)\n"
    )))
    runtime.start()
    thermostat = runtime.handle_of("thermostat")
    env.run(until=thermostat.create("den", READING))
    env.run()
    display = runtime.handle_of("display")
    assert env.run(until=display.get("den"))["data"]["text"] == EXPECTED_TEXT


def test_only_knactor_reconfigures_without_touching_services(env, net):
    """The discriminating property: with API-centric mechanisms the
    composition change lives in service code; with Knactor it is an
    integrator operation against a live system."""
    runtime = KnactorRuntime(env, network=net)
    de = ObjectDE(env, MemKV(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", de)
    runtime.add_knactor(Knactor("thermostat", [StoreBinding(
        "default", "object",
        "schema: Home/v1/Thermostat/Reading\ncelsius: number\nroom: string\n",
    )]))
    runtime.add_knactor(Knactor("display", [StoreBinding(
        "default", "object",
        "schema: Home/v1/Display/Panel\ntext: string # +kr: external\n",
    )]))
    de.grant("cast", "knactor-thermostat", role="reader")
    de.grant("cast", "knactor-display", role="integrator")
    cast = Cast("cast", (
        "Input:\n"
        "  T: Home/v1/Thermostat/knactor-thermostat\n"
        "  D: Home/v1/Display/knactor-display\n"
        "DXG:\n"
        "  D:\n"
        "    text: concat(T.room, ': ', T.celsius)\n"
    ))
    runtime.add_integrator(cast)
    runtime.start()
    thermostat = runtime.handle_of("thermostat")
    env.run(until=thermostat.create("den", dict(READING)))
    env.run()
    cast.set_assignment("D", "text",
                        "concat(T.room, ' is at ', T.celsius, ' degrees')")
    env.run(until=thermostat.patch("den", {"celsius": 22.0}))
    env.run()
    display = runtime.handle_of("display")
    assert env.run(until=display.get("den"))["data"]["text"] == (
        "den is at 22.0 degrees"
    )
