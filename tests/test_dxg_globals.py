"""Tests for global (singleton) DXG aliases -- shared lookup objects."""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, StoreBinding
from repro.core.dxg import parse_dxg
from repro.errors import DXGParseError
from repro.exchange import ObjectDE
from repro.simnet import Environment, FixedLatency, Network
from repro.store import MemKV

RATES_SCHEMA = """\
schema: Fx/v1/Rates/Table
rates: object
"""

ORDER_SCHEMA = """\
schema: Fx/v1/Orders/Order
amount: number
currency: string
usdAmount: number # +kr: external
"""

DXG = """\
Input:
  O: Fx/v1/Orders/knactor-orders
  R: Fx/v1/Rates/knactor-rates
Globals:
  R: main
DXG:
  O:
    usdAmount: O.amount / lookup(R.rates, O.currency, 1.0)
"""


class TestParsing:
    def test_globals_section_parsed(self):
        spec = parse_dxg(DXG)
        assert spec.globals_ == {"R": "main"}

    def test_global_alias_must_be_declared(self):
        with pytest.raises(DXGParseError, match="undeclared"):
            parse_dxg(
                "Input:\n  A: x/v1/A/a\nGlobals:\n  Z: main\n"
                "DXG:\n  A:\n    f: 1\n"
            )

    def test_global_alias_cannot_be_target(self):
        with pytest.raises(DXGParseError, match="read-only"):
            parse_dxg(
                "Input:\n  A: x/v1/A/a\n  R: x/v1/R/r\nGlobals:\n  R: main\n"
                "DXG:\n  R:\n    f: A.v\n"
            )

    def test_global_key_must_be_a_string(self):
        with pytest.raises(DXGParseError):
            parse_dxg(
                "Input:\n  A: x/v1/A/a\n  R: x/v1/R/r\nGlobals:\n  R:\n"
                "DXG:\n  A:\n    f: R.v\n"
            )


def build(env):
    net = Network(env, default_latency=FixedLatency(0.0005))
    runtime = KnactorRuntime(env, network=net)
    de = ObjectDE(env, MemKV(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", de)
    runtime.add_knactor(Knactor("orders", [StoreBinding(
        "default", "object", ORDER_SCHEMA)]))
    runtime.add_knactor(Knactor("rates", [StoreBinding(
        "default", "object", RATES_SCHEMA)]))
    de.grant("fx-cast", "knactor-orders", role="integrator")
    de.grant("fx-cast", "knactor-rates", role="reader")
    cast = Cast("fx-cast", DXG)
    runtime.add_integrator(cast)
    runtime.start()
    return runtime, de, cast


class TestExecution:
    def test_lookup_through_global_alias(self, env):
        runtime, de, cast = build(env)
        rates = runtime.handle_of("rates")
        env.run(until=rates.create("main", {"rates": {"EUR": 0.9, "USD": 1.0}}))
        orders = runtime.handle_of("orders")
        env.run(until=orders.create("o1", {"amount": 90.0, "currency": "EUR"}))
        env.run()
        data = env.run(until=orders.get("o1"))["data"]
        assert data["usdAmount"] == pytest.approx(100.0)

    def test_rate_update_reflows_every_group(self, env):
        """Changing the shared lookup re-derives ALL exchange groups."""
        runtime, de, cast = build(env)
        rates = runtime.handle_of("rates")
        env.run(until=rates.create("main", {"rates": {"EUR": 0.9}}))
        orders = runtime.handle_of("orders")
        for i, amount in enumerate((9.0, 90.0, 900.0)):
            env.run(until=orders.create(f"o{i}", {"amount": amount,
                                                  "currency": "EUR"}))
        env.run()
        # Devaluation: one write to the singleton...
        env.run(until=rates.patch("main", {"rates": {"EUR": 0.5}}))
        env.run()
        # ...and every order's derived field updated.
        for i, amount in enumerate((9.0, 90.0, 900.0)):
            data = env.run(until=orders.get(f"o{i}"))["data"]
            assert data["usdAmount"] == pytest.approx(amount / 0.5)

    def test_missing_global_defers_assignments(self, env):
        runtime, de, cast = build(env)
        orders = runtime.handle_of("orders")
        env.run(until=orders.create("o1", {"amount": 10.0, "currency": "EUR"}))
        env.run()
        assert "usdAmount" not in env.run(until=orders.get("o1"))["data"]
        # The table appears later; the order back-fills.
        rates = runtime.handle_of("rates")
        env.run(until=rates.create("main", {"rates": {"EUR": 1.0}}))
        env.run()
        assert env.run(until=orders.get("o1"))["data"]["usdAmount"] == 10.0

    def test_reconfigure_preserves_globals(self, env):
        runtime, de, cast = build(env)
        cast.set_assignment("O", "usdAmount",
                            "O.amount * lookup(R.rates, O.currency, 1.0)")
        assert cast.executor.spec.globals_ == {"R": "main"}
        rates = runtime.handle_of("rates")
        env.run(until=rates.create("main", {"rates": {"EUR": 2.0}}))
        orders = runtime.handle_of("orders")
        env.run(until=orders.create("o1", {"amount": 3.0, "currency": "EUR"}))
        env.run()
        assert env.run(until=orders.get("o1"))["data"]["usdAmount"] == 6.0
