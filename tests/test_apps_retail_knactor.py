"""Integration tests for the Knactor retail app (all three profiles)."""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_APISERVER, K_REDIS, K_REDIS_UDF
from repro.errors import AccessDeniedError


def place_and_settle(app, count=1, seed=7):
    workload = OrderWorkload(seed=seed)
    keys = []
    for _ in range(count):
        key, data = workload.next_order()
        data["email"] = "shopper@example.com"
        app.env.run(until=app.place_order(key, data))
        keys.append((key, data))
    app.run_until_quiet(max_seconds=60.0)
    return keys


@pytest.mark.parametrize("profile", [K_APISERVER, K_REDIS, K_REDIS_UDF],
                         ids=lambda p: p.name)
class TestProfiles:
    def test_order_fulfilled_end_to_end(self, profile):
        app = RetailKnactorApp.build(profile=profile)
        [(key, data)] = place_and_settle(app)
        order = app.env.run(until=app.order(key))["data"]
        assert order["status"] == "fulfilled"
        assert order["trackingID"].startswith("trk-")
        assert order["paymentID"].startswith("ch-")
        assert order["shippingCost"] > 0
        assert order["totalCost"] == pytest.approx(
            order["cost"] + order["shippingCost"]
        )

    def test_shipment_created_correctly(self, profile):
        app = RetailKnactorApp.build(profile=profile)
        [(key, data)] = place_and_settle(app)
        cid = key.split("/", 1)[1]
        shipment = app.env.run(until=app.shipment(cid))["data"]
        assert sorted(shipment["items"]) == sorted(data["items"])
        assert shipment["addr"] == data["address"]
        assert shipment["status"] == "shipped"

    def test_charge_matches_order(self, profile):
        app = RetailKnactorApp.build(profile=profile)
        [(key, data)] = place_and_settle(app)
        cid = key.split("/", 1)[1]
        charge = app.env.run(until=app.charge(cid))["data"]
        assert charge["currency"] == data["currency"]
        assert charge["status"] == "charged"

    def test_confirmation_email_sent(self, profile):
        app = RetailKnactorApp.build(profile=profile)
        [(key, _data)] = place_and_settle(app)
        cid = key.split("/", 1)[1]
        email = app.env.run(
            until=app.runtime.handle_of("email").get(f"notice/{cid}")
        )["data"]
        assert email["sent"] is True
        assert email["orderRef"] == cid
        assert email["to"] == "shopper@example.com"


class TestPolicies:
    def test_air_shipping_for_expensive_orders(self):
        app = RetailKnactorApp.build(profile=K_REDIS)
        keys = place_and_settle(app, count=8, seed=3)
        saw = set()
        for key, data in keys:
            cid = key.split("/", 1)[1]
            shipment = app.env.run(until=app.shipment(cid))["data"]
            expected = "air" if data["cost"] > 1000 else "ground"
            assert shipment["method"] == expected
            saw.add(expected)
        assert saw == {"air", "ground"}  # the workload exercises both

    def test_card_token_hidden_from_integrator(self):
        app = RetailKnactorApp.build(profile=K_REDIS)
        [(key, _data)] = place_and_settle(app)
        handle = app.de.handle("knactor-checkout", principal="retail-cast")
        view = app.env.run(until=handle.get(key))
        assert "cardToken" not in view["data"]
        owner_view = app.env.run(until=app.order(key))
        assert owner_view["data"]["cardToken"].startswith("tok-")

    def test_integrator_cannot_write_internal_fields(self):
        app = RetailKnactorApp.build(profile=K_REDIS)
        [(key, _data)] = place_and_settle(app)
        handle = app.de.handle("knactor-checkout", principal="retail-cast")
        with pytest.raises(AccessDeniedError):
            app.env.run(until=handle.patch(key, {"cost": 0.01}))


class TestVisibility:
    def test_exchange_matrix_shows_composition(self):
        app = RetailKnactorApp.build(profile=K_REDIS)
        place_and_settle(app)
        matrix = app.de.audit.exchange_matrix()
        cast_stores = {s for (p, s) in matrix if p == "retail-cast"}
        assert cast_stores == {
            "knactor-checkout", "knactor-shipping", "knactor-payment",
        }
        # Services only ever touch their own stores.
        for service in ("checkout", "shipping", "payment", "email"):
            stores = {s for (p, s) in matrix if p == service}
            assert stores <= {f"knactor-{service}"}

    def test_runtime_reconfiguration_swaps_policy(self):
        app = RetailKnactorApp.build(profile=K_REDIS)
        place_and_settle(app, count=1)
        # Everything now ships by air, regardless of price: one config op.
        app.cast.set_assignment("S", "method", "'air'")
        workload = OrderWorkload(seed=99)
        _key, data = workload.next_order()
        key = "order/after-reconfig"
        data["cost"] = 5.0  # cheap, would have been ground before
        app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=60.0)
        cid = key.split("/", 1)[1]
        shipment = app.env.run(until=app.shipment(cid))["data"]
        assert shipment["method"] == "air"


class TestThroughput:
    def test_fifty_orders_all_fulfil(self):
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        workload = OrderWorkload(seed=5)

        def driver(env):
            for _ in range(50):
                key, data = workload.next_order()
                yield app.place_order(key, data)
                yield env.timeout(0.05)

        app.env.process(driver(app.env))
        app.run_until_quiet(max_seconds=300.0)
        fulfilled = 0
        for key in app.orders_placed:
            order = app.env.run(until=app.order(key))["data"]
            fulfilled += order["status"] == "fulfilled"
        assert fulfilled == 50
