"""Unit tests for the DXG transformation-function library."""

import pytest

from repro.core.dxg.functions import (
    FunctionRegistry,
    clamp,
    coalesce,
    concat,
    currency_convert,
    lookup,
    standard_functions,
)
from repro.errors import ConfigurationError, ExpressionError


class TestCurrencyConvert:
    def test_identity(self):
        assert currency_convert(10.0, "USD", "USD") == 10.0

    def test_roundtrip_approximately_identity(self):
        eur = currency_convert(100.0, "USD", "EUR")
        back = currency_convert(eur, "EUR", "USD")
        assert back == pytest.approx(100.0, rel=1e-3)

    def test_none_passes_through(self):
        assert currency_convert(None, "USD", "EUR") is None

    def test_unknown_currency(self):
        with pytest.raises(ExpressionError):
            currency_convert(1.0, "USD", "XYZ")

    def test_known_rate_direction(self):
        # 1 EUR is worth more than 1 USD in the fixed table.
        assert currency_convert(1.0, "EUR", "USD") > 1.0


class TestHelpers:
    def test_coalesce(self):
        assert coalesce(None, None, 3, 4) == 3
        assert coalesce() is None

    def test_concat_skips_none(self):
        assert concat("a", None, 1, "b") == "a1b"

    def test_lookup(self):
        assert lookup({"k": 1}, "k") == 1
        assert lookup({"k": 1}, "x", "dflt") == "dflt"
        assert lookup("not-a-dict", "k", 0) == 0

    def test_lookup_unwraps_views(self):
        from repro.util.safeexpr import _wrap

        assert lookup(_wrap({"k": 7}), "k") == 7

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(99, 0, 10) == 10
        assert clamp(None, 0, 10) is None


class TestRegistry:
    def test_standard_set(self):
        registry = standard_functions()
        assert "currency_convert" in registry
        assert "coalesce" in registry
        assert registry.names() == sorted(registry.table())

    def test_register_and_unregister(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: 1)
        assert "f" in registry
        registry.unregister("f")
        assert "f" not in registry

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionRegistry().register("f", 42)

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionRegistry().register("not a name", lambda: 1)

    def test_table_is_a_copy(self):
        registry = standard_functions()
        table = registry.table()
        table["injected"] = lambda: 1
        assert "injected" not in registry
