"""Unit tests for the schema system (types, annotations, Schema)."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    Annotations,
    ArrayType,
    BooleanType,
    Field,
    IntegerType,
    NumberType,
    ObjectType,
    Schema,
    SchemaName,
    StringType,
    parse_annotation,
    parse_type,
)

CHECKOUT_SCHEMA = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
"""


class TestTypes:
    @pytest.mark.parametrize(
        "spelling,good,bad",
        [
            ("string", "hi", 5),
            ("number", 1.5, "x"),
            ("number", 3, "x"),
            ("integer", 3, 3.5),
            ("boolean", True, 1),
            ("object", {"k": 1}, [1]),
            ("array", [1, "a"], {"k": 1}),
            ("array<string>", ["a", "b"], ["a", 1]),
        ],
    )
    def test_check(self, spelling, good, bad):
        t = parse_type(spelling)
        assert t.check(good)
        assert not t.check(bad)

    def test_none_always_conforms(self):
        for spelling in ("string", "number", "object", "array<number>"):
            assert parse_type(spelling).check(None)

    def test_bool_is_not_number(self):
        assert not NumberType().check(True)
        assert not IntegerType().check(False)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            parse_type("widget")

    def test_parse_type_idempotent_on_type_objects(self):
        t = StringType()
        assert parse_type(t) is t

    def test_array_describe_roundtrip(self):
        t = parse_type("array<array<integer>>")
        assert t.describe() == "array<array<integer>>"
        assert parse_type(t.describe()) == t

    def test_type_equality(self):
        assert parse_type("string") == StringType()
        assert parse_type("array<string>") != ArrayType()
        assert BooleanType() != StringType()


class TestAnnotations:
    def test_plain_comment_is_empty(self):
        assert not parse_annotation("just a note")

    def test_none_is_empty(self):
        assert parse_annotation(None) == Annotations()

    def test_external(self):
        ann = parse_annotation("+kr: external")
        assert ann.external and not ann.secret

    def test_multiple_tokens(self):
        ann = parse_annotation("+kr: external, immutable")
        assert ann.external and ann.immutable

    def test_unknown_token_rejected(self):
        with pytest.raises(SchemaError):
            parse_annotation("+kr: exernal")  # typo must not pass silently

    def test_describe_roundtrip(self):
        ann = parse_annotation("+kr: secret, ingest")
        assert parse_annotation(ann.describe()) == ann


class TestSchemaName:
    def test_parse_four_part(self):
        name = SchemaName.parse("OnlineRetail/v1/Checkout/Order")
        assert (name.app, name.version, name.service, name.resource) == (
            "OnlineRetail",
            "v1",
            "Checkout",
            "Order",
        )

    def test_parse_three_part(self):
        name = SchemaName.parse("OnlineRetail/v1/Checkout")
        assert name.resource == ""
        assert str(name) == "OnlineRetail/v1/Checkout"

    def test_invalid_rejected(self):
        with pytest.raises(SchemaError):
            SchemaName.parse("just-a-name")

    def test_with_version(self):
        name = SchemaName.parse("App/v1/Svc/Res").with_version("v2")
        assert str(name) == "App/v2/Svc/Res"

    def test_parse_is_idempotent(self):
        name = SchemaName.parse("A/v1/B")
        assert SchemaName.parse(name) is name


class TestSchema:
    def test_fig5_parses(self):
        schema = Schema.from_text(CHECKOUT_SCHEMA)
        assert str(schema.name) == "OnlineRetail/v1/Checkout/Order"
        assert len(schema.fields) == 8
        assert isinstance(schema.field("items").type, ObjectType)
        assert isinstance(schema.field("cost").type, NumberType)

    def test_fig5_external_fields(self):
        schema = Schema.from_text(CHECKOUT_SCHEMA)
        externals = {f.path for f in schema.external_fields()}
        assert externals == {"shippingCost", "paymentID", "trackingID"}

    def test_nested_fields(self):
        schema = Schema.from_text(
            "schema: App/v1/Shipping/Shipment\n"
            "quote:\n"
            "  price: number\n"
            "  currency: string\n"
        )
        assert schema.has_field("quote.price")
        assert isinstance(schema.field("quote").type, ObjectType)
        assert [f.path for f in schema.children("quote")] == [
            "quote.price",
            "quote.currency",
        ]

    def test_missing_header_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_text("a: string\n")

    def test_duplicate_field_rejected(self):
        schema = Schema("A/v1/B/C")
        schema.add_field(Field("x"))
        with pytest.raises(SchemaError):
            schema.add_field(Field("x"))

    def test_orphan_nested_field_rejected(self):
        schema = Schema("A/v1/B/C")
        with pytest.raises(SchemaError):
            schema.add_field(Field("parent.child"))

    def test_unknown_field_lookup_raises(self):
        schema = Schema.from_text(CHECKOUT_SCHEMA)
        with pytest.raises(SchemaError):
            schema.field("nope")

    def test_text_roundtrip(self):
        schema = Schema.from_text(CHECKOUT_SCHEMA)
        assert Schema.from_text(schema.to_text()) == schema

    def test_dict_roundtrip(self):
        schema = Schema.from_text(CHECKOUT_SCHEMA)
        assert Schema.from_dict(schema.to_dict()) == schema

    def test_top_level_excludes_nested(self):
        schema = Schema.from_text(
            "schema: A/v1/B/C\nquote:\n  price: number\nid: string\n"
        )
        assert {f.path for f in schema.top_level()} == {"quote", "id"}
