"""Chained and fan-in integrator topologies.

The paper consolidates composition into "a single or a few
application-level integrator modules".  These tests exercise multi-
integrator topologies: state propagating through a chain of Casts, a
Cast feeding a Sync (Object -> Log via a bridging knactor), and two
Casts filling disjoint fields of one store.
"""

import pytest

from repro.core import Cast, Knactor, KnactorRuntime, Reconciler, StoreBinding
from repro.exchange import ObjectDE
from repro.simnet import Environment, FixedLatency, Network
from repro.store import MemKV


def make_runtime(env):
    net = Network(env, default_latency=FixedLatency(0.0005))
    runtime = KnactorRuntime(env, network=net)
    de = ObjectDE(env, MemKV(env, net, watch_overhead=0.0))
    runtime.add_exchange("object", de)
    return runtime, de


def schema(service, fields):
    lines = [f"schema: Chain/v1/{service}/S"]
    lines += fields
    return "\n".join(lines) + "\n"


class TestChain:
    def test_three_hop_chain_propagates(self, env):
        """A -> (cast1) -> B -> (cast2) -> C: a value crosses two
        integrators, each owned by a different party."""
        runtime, de = make_runtime(env)
        runtime.add_knactor(Knactor("a", [StoreBinding(
            "default", "object", schema("A", ["v: number"]))]))
        runtime.add_knactor(Knactor("b", [StoreBinding(
            "default", "object",
            schema("B", ["doubled: number # +kr: external"]))]))
        runtime.add_knactor(Knactor("c", [StoreBinding(
            "default", "object",
            schema("C", ["final: number # +kr: external"]))]))
        de.grant("cast1", "knactor-a", role="reader")
        de.grant("cast1", "knactor-b", role="integrator")
        de.grant("cast2", "knactor-b", role="reader")
        de.grant("cast2", "knactor-c", role="integrator")
        runtime.add_integrator(Cast("cast1", (
            "Input:\n  A: Chain/v1/A/knactor-a\n  B: Chain/v1/B/knactor-b\n"
            "DXG:\n  B:\n    doubled: A.v * 2\n"
        )))
        runtime.add_integrator(Cast("cast2", (
            "Input:\n  B: Chain/v1/B/knactor-b\n  C: Chain/v1/C/knactor-c\n"
            "DXG:\n  C:\n    final: B.doubled + 1\n"
        )))
        runtime.start()
        a = runtime.handle_of("a")
        env.run(until=a.create("x", {"v": 10}))
        env.run()
        c = runtime.handle_of("c")
        assert env.run(until=c.get("x"))["data"]["final"] == 21

    def test_chain_updates_ripple(self, env):
        runtime, de = make_runtime(env)
        runtime.add_knactor(Knactor("a", [StoreBinding(
            "default", "object", schema("A", ["v: number"]))]))
        runtime.add_knactor(Knactor("b", [StoreBinding(
            "default", "object",
            schema("B", ["doubled: number # +kr: external"]))]))
        runtime.add_knactor(Knactor("c", [StoreBinding(
            "default", "object",
            schema("C", ["final: number # +kr: external"]))]))
        de.grant("cast1", "knactor-a", role="reader")
        de.grant("cast1", "knactor-b", role="integrator")
        de.grant("cast2", "knactor-b", role="reader")
        de.grant("cast2", "knactor-c", role="integrator")
        runtime.add_integrator(Cast("cast1", (
            "Input:\n  A: Chain/v1/A/knactor-a\n  B: Chain/v1/B/knactor-b\n"
            "DXG:\n  B:\n    doubled: A.v * 2\n"
        )))
        runtime.add_integrator(Cast("cast2", (
            "Input:\n  B: Chain/v1/B/knactor-b\n  C: Chain/v1/C/knactor-c\n"
            "DXG:\n  C:\n    final: B.doubled + 1\n"
        )))
        runtime.start()
        a = runtime.handle_of("a")
        env.run(until=a.create("x", {"v": 10}))
        env.run()
        env.run(until=a.update("x", {"v": 100}))
        env.run()
        c = runtime.handle_of("c")
        assert env.run(until=c.get("x"))["data"]["final"] == 201


class TestFanIn:
    def test_two_casts_fill_disjoint_fields(self, env):
        """Two independent integrators (different vendors) each own a
        slice of the target's external fields."""
        runtime, de = make_runtime(env)
        runtime.add_knactor(Knactor("src1", [StoreBinding(
            "default", "object", schema("Src1", ["x: number"]))]))
        runtime.add_knactor(Knactor("src2", [StoreBinding(
            "default", "object", schema("Src2", ["y: number"]))]))
        runtime.add_knactor(Knactor("sink", [StoreBinding(
            "default", "object",
            schema("Sink", ["fromx: number # +kr: external",
                            "fromy: number # +kr: external"]))]))
        de.grant("cx", "knactor-src1", role="reader")
        de.grant("cx", "knactor-sink", role="integrator")
        de.grant("cy", "knactor-src2", role="reader")
        de.grant("cy", "knactor-sink", role="integrator")
        runtime.add_integrator(Cast("cx", (
            "Input:\n  A: Chain/v1/Src1/knactor-src1\n"
            "  S: Chain/v1/Sink/knactor-sink\n"
            "DXG:\n  S:\n    fromx: A.x\n"
        )))
        runtime.add_integrator(Cast("cy", (
            "Input:\n  B: Chain/v1/Src2/knactor-src2\n"
            "  S: Chain/v1/Sink/knactor-sink\n"
            "DXG:\n  S:\n    fromy: B.y\n"
        )))
        runtime.start()
        env.run(until=runtime.handle_of("src1").create("k", {"x": 1}))
        env.run(until=runtime.handle_of("src2").create("k", {"y": 2}))
        env.run()
        sink = runtime.handle_of("sink")
        data = env.run(until=sink.get("k"))["data"]
        # Merge-patch semantics: neither integrator clobbered the other.
        assert data == {"fromx": 1, "fromy": 2}

    def test_fan_in_quiesces(self, env):
        runtime, de = make_runtime(env)
        runtime.add_knactor(Knactor("src1", [StoreBinding(
            "default", "object", schema("Src1", ["x: number"]))]))
        runtime.add_knactor(Knactor("sink", [StoreBinding(
            "default", "object",
            schema("Sink", ["fromx: number # +kr: external"]))]))
        de.grant("cx", "knactor-src1", role="reader")
        de.grant("cx", "knactor-sink", role="integrator")
        cast = Cast("cx", (
            "Input:\n  A: Chain/v1/Src1/knactor-src1\n"
            "  S: Chain/v1/Sink/knactor-sink\n"
            "DXG:\n  S:\n    fromx: A.x\n"
        ))
        runtime.add_integrator(cast)
        runtime.start()
        env.run(until=runtime.handle_of("src1").create("k", {"x": 1}))
        env.run()
        runs = cast.exchanges_run
        env.run(until=env.now + 30.0)
        assert cast.exchanges_run == runs  # no churn
