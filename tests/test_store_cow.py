"""Unit tests for the copy-on-write object layer (`repro.store.cow`)."""

import copy
import json

import pytest

from repro.store.cow import (
    CopyMeter,
    CowList,
    CowMap,
    FrozenViewError,
    copy_value,
    diff_shared,
    estimate_size,
    freeze,
    is_frozen,
    mask_shared,
    merge_shared,
    thaw,
)


class TestFreeze:
    def test_freeze_produces_frozen_views(self):
        value = {"a": 1, "b": {"c": [1, 2, {"d": 3}]}}
        frozen = freeze(value)
        assert is_frozen(frozen)
        assert isinstance(frozen, dict)  # still a dict: isinstance-safe
        assert isinstance(frozen["b"], CowMap)
        assert isinstance(frozen["b"]["c"], CowList)
        assert frozen == value

    def test_freeze_is_idempotent_and_shares(self):
        frozen = freeze({"a": {"b": 1}})
        assert freeze(frozen) is frozen

    def test_tuple_becomes_frozen_list(self):
        frozen = freeze({"t": (1, 2)})
        assert isinstance(frozen["t"], CowList)
        assert frozen["t"] == [1, 2]

    def test_scalars_pass_through(self):
        for scalar in (None, True, 3, 2.5, "s"):
            assert freeze(scalar) is scalar

    def test_json_serializable(self):
        frozen = freeze({"a": [1, {"b": 2}]})
        assert json.loads(json.dumps(frozen)) == {"a": [1, {"b": 2}]}


class TestFrozenSemantics:
    def test_map_mutators_raise(self):
        frozen = freeze({"a": 1})
        with pytest.raises(FrozenViewError):
            frozen["b"] = 2
        with pytest.raises(FrozenViewError):
            del frozen["a"]
        with pytest.raises(FrozenViewError):
            frozen.update({"b": 2})
        with pytest.raises(FrozenViewError):
            frozen.pop("a")
        with pytest.raises(FrozenViewError):
            frozen.clear()
        with pytest.raises(FrozenViewError):
            frozen.setdefault("b", 2)
        assert frozen == {"a": 1}

    def test_list_mutators_raise(self):
        frozen = freeze([1, 2])
        with pytest.raises(FrozenViewError):
            frozen.append(3)
        with pytest.raises(FrozenViewError):
            frozen[0] = 9
        with pytest.raises(FrozenViewError):
            frozen.sort()
        with pytest.raises(FrozenViewError):
            frozen += [3]
        assert list(frozen) == [1, 2]

    def test_frozen_error_is_a_type_error(self):
        # Code catching TypeError for "immutable" keeps working.
        assert issubclass(FrozenViewError, TypeError)

    def test_thaw_gives_plain_mutable_copy(self):
        frozen = freeze({"a": {"b": [1]}})
        mine = frozen.thaw()
        assert type(mine) is dict
        assert type(mine["a"]) is dict
        assert type(mine["a"]["b"]) is list
        mine["a"]["b"].append(2)
        assert frozen["a"]["b"] == [1]

    def test_deepcopy_gives_plain_mutable_copy(self):
        frozen = freeze({"a": {"b": [1]}})
        mine = copy.deepcopy(frozen)
        assert type(mine) is dict
        mine["a"]["b"].append(2)
        assert frozen["a"]["b"] == [1]

    def test_shallow_copy_gives_plain_dict(self):
        frozen = freeze({"a": 1})
        assert type(copy.copy(frozen)) is dict
        assert type(dict(frozen)) is dict


class TestMergeShared:
    def test_merge_semantics_match_merge_patch(self):
        from repro.store.objectops import merge_patch

        base = {"a": {"x": 1, "y": 2}, "b": 1, "c": [1, 2]}
        patch = {"a": {"y": 9, "z": 3}, "b": None, "d": "new"}
        assert merge_shared(freeze(base), patch) == merge_patch(base, patch)

    def test_base_is_untouched(self):
        base = freeze({"a": {"x": 1}})
        merge_shared(base, {"a": {"x": 2}})
        assert base == {"a": {"x": 1}}

    def test_untouched_subtrees_are_shared(self):
        base = freeze({"hot": {"v": 1}, "cold": {"big": [1] * 100}})
        merged = merge_shared(base, {"hot": {"v": 2}})
        assert merged["cold"] is base["cold"]  # pointer-shared, not copied
        assert merged["hot"]["v"] == 2

    def test_result_is_frozen(self):
        merged = merge_shared(freeze({"a": 1}), {"b": {"c": 2}})
        assert is_frozen(merged)
        assert is_frozen(merged["b"])
        with pytest.raises(FrozenViewError):
            merged["b"]["c"] = 9

    def test_none_deletes(self):
        merged = merge_shared(freeze({"a": 1, "b": 2}), {"a": None})
        assert merged == {"b": 2}

    def test_meter_charges_path_not_object(self):
        meter = CopyMeter()
        base = freeze({"hot": {"v": 1}, "cold": {"blob": "x" * 10_000}})
        merge_shared(base, {"hot": {"v": 2}}, meter)
        # A deepcopy would have cost >10KB; the path copy is tiny.
        assert 0 < meter.copied_bytes < 1_000


class TestDiffShared:
    def test_diff_roundtrips_through_merge(self):
        old = freeze({"a": {"x": 1, "y": 2}, "b": 1, "keep": "k"})
        new = freeze({"a": {"x": 1, "y": 9, "z": 3}, "keep": "k", "c": [1]})
        delta = diff_shared(old, new)
        assert merge_shared(old, delta) == new

    def test_equal_objects_diff_empty(self):
        value = freeze({"a": {"b": [1, 2]}})
        assert diff_shared(value, value) == {}

    def test_removed_keys_become_none(self):
        assert diff_shared({"a": 1, "b": 2}, {"a": 1}) == {"b": None}

    def test_nested_change_is_minimal(self):
        old = {"a": {"x": 1, "y": 2}, "blob": "x" * 1000}
        new = {"a": {"x": 1, "y": 3}, "blob": "x" * 1000}
        delta = diff_shared(old, new)
        assert delta == {"a": {"y": 3}}
        assert estimate_size(delta) < estimate_size(new) / 10


class TestMaskShared:
    def test_masks_secret_leaves(self):
        data = freeze({"public": 1, "card": {"number": "4111", "exp": "12/30"}})
        masked = mask_shared(data, ["card.number"])
        assert masked == {"public": 1, "card": {"exp": "12/30"}}
        assert data["card"]["number"] == "4111"  # original intact

    def test_unmasked_subtrees_shared(self):
        data = freeze({"keep": {"big": [1] * 50}, "secret": "s"})
        masked = mask_shared(data, ["secret"])
        assert masked["keep"] is data["keep"]

    def test_missing_paths_are_noops(self):
        data = freeze({"a": 1})
        assert mask_shared(data, ["nope", "a.b.c"]) == {"a": 1}

    def test_scalar_parent_not_replaced(self):
        # Masking x.y where x is a scalar must not turn x into a dict.
        data = freeze({"x": 5})
        assert mask_shared(data, ["x.y"]) == {"x": 5}


class TestCopyMeter:
    def test_records_by_site(self):
        meter = CopyMeter()
        copy_value({"a": "x" * 100}, meter, "snapshot")
        copy_value({"b": 1}, meter, "mask")
        snap = meter.snapshot()
        assert snap["copies"] == 2
        assert set(snap["by_site"]) == {"snapshot", "mask"}
        assert snap["copied_bytes"] > 100

    def test_shared_accounting(self):
        meter = CopyMeter()
        meter.shared(500)
        assert meter.shared_views == 1
        assert meter.shared_bytes_avoided == 500

    def test_merge_snapshots(self):
        a, b = CopyMeter(), CopyMeter()
        a.record(100, "ingest")
        b.record(50, "ingest")
        b.record(10, "merge")
        merged = CopyMeter.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["copied_bytes"] == 160
        assert merged["by_site"] == {"ingest": 150, "merge": 10}


class TestThaw:
    def test_thaw_deep(self):
        frozen = freeze({"a": [{"b": 1}]})
        plain = thaw(frozen)
        assert type(plain) is dict
        assert type(plain["a"]) is list
        assert type(plain["a"][0]) is dict

    def test_thaw_passthrough_scalars(self):
        assert thaw(5) == 5
        assert thaw("s") == "s"
