"""Tests for the hash-sharded store frontend and the batched hot path.

Covers :class:`repro.store.ShardedStore` / :class:`ShardedStoreClient`
(deterministic routing, per-shard revisions, scatter-gather list,
single-shard transactions, merged watch streams, fault delegation),
server-side watch batching, the client hot-path optimizations through
the sharded router, and the MemKV restart/revision-monotonicity
regression.
"""

import pytest

from repro.errors import NotFoundError, StoreError
from repro.store import (
    ApiServer,
    MemKV,
    MemKVClient,
    ShardedStore,
    ShardedStoreClient,
    shard_index,
)

SHARDS = 3


@pytest.fixture
def store(env, zero_net):
    """A 3-way MemKV-sharded store with immediate watch delivery."""
    shards = [
        MemKV(env, zero_net, location=f"shard-{i}", watch_overhead=0.0)
        for i in range(SHARDS)
    ]
    return ShardedStore(shards, name="kv")


@pytest.fixture
def client(store):
    return ShardedStoreClient(store, "driver")


def keys_on_shard(shard, count=2, shard_count=SHARDS, tag="k"):
    """First ``count`` keys (deterministically) owned by ``shard``."""
    found = []
    i = 0
    while len(found) < count:
        key = f"{tag}/{i}"
        if shard_index(key, shard_count) == shard:
            found.append(key)
        i += 1
    return found


class TestRouting:
    def test_shard_index_is_deterministic_and_in_range(self):
        for key in ("order/o00001", "cart/u7", "k/0", ""):
            first = shard_index(key, 4)
            assert first == shard_index(key, 4)
            assert 0 <= first < 4

    def test_every_key_lands_on_its_computed_shard(self, store, client, call):
        keys = [f"k/{i}" for i in range(12)]
        for key in keys:
            call(client.create(key, {"n": 1}))
        for key in keys:
            owner = store.shard_for(key)
            probe = MemKVClient(owner, "probe")
            assert call(probe.get(key))["key"] == key
            for shard in store.shards:
                if shard is owner:
                    continue
                with pytest.raises(NotFoundError):
                    call(MemKVClient(shard, "probe").get(key))

    def test_heterogeneous_shards_rejected(self, env, zero_net):
        with pytest.raises(StoreError):
            ShardedStore([
                MemKV(env, zero_net, location="a"),
                ApiServer(env, zero_net, location="b"),
            ])

    def test_empty_shard_list_rejected(self):
        with pytest.raises(StoreError):
            ShardedStore([])


class TestCrud:
    def test_round_trip_through_router(self, client, call):
        call(client.create("k/1", {"v": 1}))
        call(client.update("k/1", {"v": 2}))
        call(client.patch("k/1", {"note": "hi"}))
        view = call(client.get("k/1"))
        assert view["data"] == {"v": 2, "note": "hi"}
        call(client.delete("k/1"))
        with pytest.raises(NotFoundError):
            call(client.get("k/1"))

    def test_revisions_are_per_shard(self, store, client, call):
        for i in range(12):
            call(client.create(f"k/{i}", {"n": i}))
        revisions = store.revisions
        assert set(revisions) == {s.location for s in store.shards}
        # No global counter: total commits split across shard counters.
        assert sum(revisions.values()) == 12
        assert sum(1 for r in revisions.values() if r > 0) >= 2

    def test_op_counts_aggregate_across_shards(self, store, client, call):
        for i in range(6):
            call(client.create(f"k/{i}", {"n": i}))
        assert store.op_counts["create"] == 6


class TestList:
    def test_scatter_gather_merges_sorted(self, client, call):
        keys = [f"k/{i:02d}" for i in range(10)]
        for key in reversed(keys):
            call(client.create(key, {"n": 1}))
        views = call(client.list())
        assert [v["key"] for v in views] == keys

    def test_list_respects_prefix(self, client, call):
        call(client.create("a/1", {}))
        call(client.create("a/2", {}))
        call(client.create("b/1", {}))
        views = call(client.list(key_prefix="a/"))
        assert [v["key"] for v in views] == ["a/1", "a/2"]


class TestTxn:
    def test_single_shard_txn_commits(self, client, call):
        first, second = keys_on_shard(shard=0)
        views = call(client.txn([
            {"action": "create", "key": first, "data": {"n": 1}},
            {"action": "create", "key": second, "data": {"n": 2}},
        ]))
        assert [v["key"] for v in views] == [first, second]

    def test_cross_shard_txn_fails_with_store_error(self, client, call):
        [on_zero] = keys_on_shard(shard=0, count=1)
        [on_one] = keys_on_shard(shard=1, count=1)
        with pytest.raises(StoreError, match="cross-shard"):
            call(client.txn([
                {"action": "create", "key": on_zero, "data": {}},
                {"action": "create", "key": on_one, "data": {}},
            ]))

    def test_cross_shard_txn_leaves_no_partial_state(self, client, call):
        [on_zero] = keys_on_shard(shard=0, count=1)
        [on_one] = keys_on_shard(shard=1, count=1)
        with pytest.raises(StoreError):
            call(client.txn([
                {"action": "create", "key": on_zero, "data": {}},
                {"action": "create", "key": on_one, "data": {}},
            ]))
        assert call(client.list()) == []


class TestMergedWatch:
    def test_merges_events_from_every_shard(self, env, client, call):
        seen = []
        client.watch(lambda e: seen.append((e.type, e.key)))
        keys = [f"k/{i}" for i in range(9)]
        for key in keys:
            call(client.create(key, {"n": 1}))
        env.run()
        assert sorted(seen) == sorted(("ADDED", key) for key in keys)

    def test_per_key_order_matches_commit_order(self, env, client, call):
        seen = {}
        client.watch(lambda e: seen.setdefault(e.key, []).append(e.type))
        for key in ("k/1", "k/2"):
            call(client.create(key, {"v": 0}))
            call(client.update(key, {"v": 1}))
            call(client.delete(key))
        env.run()
        for key in ("k/1", "k/2"):
            assert seen[key] == ["ADDED", "MODIFIED", "DELETED"]

    def test_interest_filter_applies_on_every_shard(self, env, client, call):
        seen = []
        client.watch(lambda e: seen.append(e.key), key_prefix="hot/")
        for i in range(6):
            call(client.create(f"hot/{i}", {}))
            call(client.create(f"cold/{i}", {}))
        env.run()
        assert sorted(seen) == [f"hot/{i}" for i in range(6)]

    def test_delivered_counts_aggregate(self, env, client, call):
        merged = client.watch(lambda e: None)
        for i in range(5):
            call(client.create(f"k/{i}", {}))
        env.run()
        assert merged.delivered == 5
        assert merged.active

    def test_cancel_fans_out_to_all_shards(self, env, client, call):
        seen = []
        merged = client.watch(seen.append)
        merged.cancel()
        assert not merged.active
        for i in range(4):
            call(client.create(f"k/{i}", {}))
        env.run()
        assert seen == []

    def test_one_shard_failover_closes_whole_stream_once(
        self, env, store, client, call
    ):
        closed = []
        merged = client.watch(lambda e: None, on_close=lambda: closed.append(1))
        # Break ONE shard's stream: the merged stream is invalidated as a
        # whole (events from that shard would silently go missing), and
        # on_close fires exactly once even though cancellation races the
        # other shards' own close notifications.
        store.shards[1].fail_over()
        env.run()
        assert closed == [1]
        assert not merged.active

    def test_fault_surface_delegates_to_every_shard(self, env, store, client, call):
        call(client.create("k/1", {}))
        assert store.available
        store.crash()
        assert not store.available
        assert store.crash_count == SHARDS
        store.restart()
        assert store.available


class TestWatchBatching:
    def make_store(self, env, zero_net, window):
        shards = [
            MemKV(env, zero_net, location=f"shard-{i}", watch_overhead=0.0,
                  watch_batch_window=window)
            for i in range(SHARDS)
        ]
        return ShardedStore(shards, name="kv")

    def run_burst(self, env, store, rounds=6):
        client = ShardedStoreClient(store, "driver")
        seen = {}
        client.watch(lambda e: seen.setdefault(e.key, []).append(e.revision))
        keys = [f"k/{i}" for i in range(4)]
        for key in keys:
            env.run(until=client.create(key, {"n": 0}))
        burst = [
            client.patch(key, {"n": round_})
            for round_ in range(rounds)
            for key in keys
        ]
        env.run(until=env.all_of(burst))
        env.run()
        return seen

    def test_batching_cuts_messages_not_events(self, env, zero_net):
        unbatched = self.make_store(env, zero_net, window=0.0)
        plain = self.run_burst(env, unbatched)

        env2, net2 = type(env)(), None
        # A second, independent environment for the batched run.
        from repro.simnet import FixedLatency, Network

        net2 = Network(env2, default_latency=FixedLatency(0.0))
        batched = self.make_store(env2, net2, window=0.05)
        coalesced = self.run_burst(env2, batched)

        assert unbatched.watch_events_sent == batched.watch_events_sent
        assert batched.watch_messages_sent < unbatched.watch_messages_sent
        # Batching is invisible to the consumer: same per-key revisions
        # in the same order.
        assert plain == coalesced

    def test_sharded_store_reports_max_batch_window(self, env, zero_net):
        store = self.make_store(env, zero_net, window=0.01)
        assert store.watch_batch_window == 0.01


class TestHotPathThroughRouter:
    def test_write_coalescing_merges_inflight_patches(self, env, client, call):
        call(client.create("k/1", {"base": True}))
        client.coalesce_writes = True
        assert client.coalesce_writes
        first = client.patch("k/1", {"a": 1})
        second = client.patch("k/1", {"b": 2})
        third = client.patch("k/1", {"a": 3})
        env.run(until=env.all_of([first, second, third]))
        assert client.patches_coalesced == 2
        data = call(client.get("k/1"))["data"]
        assert data == {"base": True, "a": 3, "b": 2}

    def test_read_cache_serves_hits_locally(self, env, store, client, call):
        writer = ShardedStoreClient(store, "writer")
        call(writer.create("k/1", {"v": 1}))
        client.enable_read_cache()
        env.run()  # warm the mirrors (list) and drain watch deliveries
        gets_before = store.op_counts.get("get", 0)
        view = call(client.get("k/1"))
        assert view["data"] == {"v": 1}
        assert client.cache_hits == 1
        assert store.op_counts.get("get", 0) == gets_before


class TestMemKVRestartRevisions:
    def test_rewatch_after_restart_never_rewinds_revisions(
        self, env, zero_net, call
    ):
        """Regression: a watcher that re-attaches after ``restart()`` must
        never observe a revision at or below one it was already delivered
        (MemKV loses its objects on crash, but intentionally NOT its
        revision counter)."""
        kv = MemKV(env, zero_net, watch_overhead=0.0)
        client = MemKVClient(kv, "watcher")
        delivered = []

        def record(event):
            delivered.append((event.key, event.revision))

        def rewatch():
            client.watch(record, on_close=rewatch)

        client.watch(record, on_close=rewatch)
        call(client.create("a", {"v": 1}))
        call(client.update("a", {"v": 2}))
        call(client.create("b", {"v": 1}))
        env.run()
        assert delivered, "sanity: the pre-crash watch delivered events"
        high_water = max(revision for _, revision in delivered)

        kv.crash()
        env.run()  # keepalive detects the break; on_close re-watches
        kv.restart()
        before_restart = len(delivered)
        call(client.create("a", {"v": 3}))  # state was volatile: recreate
        call(client.create("c", {"v": 1}))
        env.run()

        post = [revision for _, revision in delivered[before_restart:]]
        assert post, "sanity: the re-attached watch delivered events"
        assert min(post) > high_water
        revisions = [revision for _, revision in delivered]
        assert all(b > a for a, b in zip(revisions, revisions[1:]))
