"""ShardFleet: the cluster plane driving live ring resharding."""

import pytest

from repro.cluster import Cluster, ShardFleet
from repro.cluster.objects import Image
from repro.errors import ConfigurationError
from repro.simnet import Environment, Network
from repro.store import MemKV, ShardedStore, ShardedStoreClient, Topology
from repro.store.ring import AutoscalePolicy


def make_fleet(env, net, shards=1, metric=None, **topology_kwargs):
    topology_kwargs.setdefault("min_shards", 1)
    topology_kwargs.setdefault("max_shards", 4)
    topology_kwargs.setdefault(
        "autoscale",
        AutoscalePolicy(target_queue_depth=2.0, interval=0.2, cooldown=0.5),
    )
    topology = Topology(shards=shards, **topology_kwargs)
    store = ShardedStore(
        topology=topology,
        shard_factory=lambda i: MemKV(env, net, location=f"fleet-{i}"),
        name="fleetkv",
    )
    cluster = Cluster(env)
    return cluster, store, ShardFleet(cluster, store, metric=metric)


class TestConstruction:
    def test_fleet_requires_topology_and_factory(self):
        env = Environment()
        net = Network(env)
        shards = [MemKV(env, net, location=f"s{i}") for i in range(2)]
        store = ShardedStore(shards, name="kv")  # list form: no topology
        with pytest.raises(ConfigurationError):
            ShardFleet(Cluster(env), store)

    def test_bounds_come_from_the_topology(self):
        env = Environment()
        net = Network(env)
        _cluster, _store, fleet = make_fleet(env, net, shards=2)
        assert fleet.autoscaler.min_replicas == 1
        assert fleet.autoscaler.max_replicas == 4
        assert fleet.autoscaler.interval == 0.2
        assert fleet.deployment_name == "fleetkv-shards"


class TestLoadSignal:
    def test_load_adds_aimd_penalty_to_queue_depth(self):
        env = Environment()
        net = Network(env)
        _cluster, store, fleet = make_fleet(env, net, shards=2)
        assert fleet.load() == 0.0

        class _SqueezedAdmission:
            def stats(self):
                return {"classes": {"batch": {"scale": 0.25}}}

        store.shards[0].admission = _SqueezedAdmission()
        # (1 - 0.25) * target_queue_depth: a throttled class weighs in
        # even while sheds keep the visible queues short.
        assert fleet.load() == pytest.approx(0.75 * 2.0)


class TestElasticity:
    def test_scripted_load_scales_up_then_back_down(self):
        env = Environment()
        net = Network(env)
        signal = {"load": 0.0}
        cluster, store, fleet = make_fleet(
            env, net, shards=1, metric=lambda: signal["load"]
        )
        client = ShardedStoreClient(store, "app")

        def seed():
            for i in range(12):
                yield client.create(f"k/{i}", {"v": i})

        env.process(seed())
        env.run(until=4.0)  # initial pod pulled + started, data in place
        fleet.start()

        signal["load"] = 10.0  # HPA: ceil(10 / 2) = 5, clamped to max 4
        env.run(until=40.0)
        assert store.shard_count == 4
        assert len(cluster.deployment("fleetkv-shards").ready_pods) == 4

        signal["load"] = 0.0
        env.run(until=80.0)
        assert store.shard_count == 1

        assert fleet.reshards_driven >= 2
        assert len(fleet.autoscaler.events) >= 2
        assert store.reshard_stats["keys_moved"] > 0

        def verify():
            for i in range(12):
                obj = yield client.get(f"k/{i}")
                assert obj["data"]["v"] == i
            return True

        done = {}

        def runner():
            done["ok"] = yield from verify()

        env.process(runner())
        env.run(until=env.now + 5.0)
        assert done.get("ok")
        fleet.stop()

    def test_sync_waits_out_an_active_reshard(self):
        env = Environment()
        net = Network(env)
        signal = {"load": 10.0}
        _cluster, store, fleet = make_fleet(
            env, net, shards=1, metric=lambda: signal["load"]
        )
        env.run(until=4.0)
        fleet.start()
        env.run(until=40.0)
        # Intermediate ready counts (2, 3) appear while pods start; the
        # one-transition-at-a-time guard must still converge on 4.
        assert store.shard_count == 4
        assert store.ring.version >= 4
        fleet.stop()


class TestRollout:
    def test_rollout_moves_pods_not_the_ring(self):
        env = Environment()
        net = Network(env)
        cluster, store, fleet = make_fleet(env, net, shards=2)
        env.run(until=8.0)  # both initial pods ready
        version_before = store.ring.version
        new_image = Image("fleetkv", "shard-v2", size_mb=64.0)
        fleet.rollout(new_image)
        env.run(until=40.0)
        deployment = cluster.deployment("fleetkv-shards")
        assert deployment.pods_running_image(new_image)
        assert all(p.image.ref == new_image.ref
                   for p in deployment.ready_pods)
        assert store.ring.version == version_before
        assert fleet.image is new_image

    def test_stats_shape(self):
        env = Environment()
        net = Network(env)
        _cluster, _store, fleet = make_fleet(env, net, shards=1)
        env.run(until=4.0)
        stats = fleet.stats()
        assert stats["shards"] == 1
        assert stats["ready_pods"] == 1
        assert stats["reshards_driven"] == 0
        assert stats["scaling_events"] == 0
        assert stats["load"] == 0.0
