"""Admission control: the token-bucket + AIMD front door (repro.flow)."""

import pytest

from repro.errors import ConfigurationError, OverloadedError, UnavailableError
from repro.flow import (
    BULK,
    INTEGRATOR,
    NORMAL,
    OVERFLOW_POLICIES,
    AdmissionController,
    FlowConfig,
    check_overflow,
)
from repro.faults import RetryPolicy
from repro.faults.retry import default_retryable
from repro.store import ApiServer, ApiServerClient


class TestOverflowPolicy:
    def test_vocabulary(self):
        assert OVERFLOW_POLICIES == ("block", "shed_oldest", "shed_newest",
                                     "reject")

    def test_check_accepts_members(self):
        for policy in OVERFLOW_POLICIES:
            assert check_overflow(policy) == policy

    def test_check_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="overflow"):
            check_overflow("drop_sometimes")

    def test_check_respects_allowed_subset(self):
        with pytest.raises(ConfigurationError):
            check_overflow("shed_oldest", allowed=("block", "reject"))


class TestTokenBucket:
    def test_burst_admits_then_rejects(self, env):
        limiter = AdmissionController(env, rate=100.0, burst=3)
        assert [limiter.admit("p", 0) for _ in range(4)] == [
            True, True, True, False,
        ]
        assert limiter.admitted == 3 and limiter.rejected == 1

    def test_tokens_refill_with_virtual_time(self, env):
        limiter = AdmissionController(env, rate=10.0, burst=1)
        assert limiter.admit("p", 0)
        assert not limiter.admit("p", 0)
        env.run(until=env.timeout(0.1))  # 10/s * 0.1s = one token back
        assert limiter.admit("p", 0)

    def test_rejects_are_per_class(self, env):
        limiter = AdmissionController(
            env, rate=100.0, burst=1,
            principals={"cast": INTEGRATOR, "reader": BULK},
        )
        limiter.admit("cast", 0)
        assert not limiter.admit("cast", 0)
        # The bulk class still has its own bucket.
        assert limiter.admit("reader", 0)
        stats = limiter.stats()
        assert stats["classes"][INTEGRATOR]["rejected"] == 1
        assert stats["classes"][BULK]["rejected"] == 0

    def test_unattributed_principal_uses_default_class(self, env):
        limiter = AdmissionController(env, rate=100.0, burst=1)
        assert limiter.class_of(None) == NORMAL
        limiter.admit(None, 0)
        assert limiter.stats()["classes"][NORMAL]["admitted"] == 1

    def test_invalid_configuration(self, env):
        with pytest.raises(ConfigurationError):
            AdmissionController(env, rate=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(env, principals={"p": "no-such-class"})
        with pytest.raises(ConfigurationError):
            AdmissionController(env, default_class="no-such-class")

    def test_assign_binds_and_validates(self, env):
        limiter = AdmissionController(env)
        limiter.assign("spider", BULK)
        assert limiter.class_of("spider") == BULK
        with pytest.raises(ConfigurationError, match="priority class"):
            limiter.assign("spider", "mega")


class TestAIMD:
    def _congest(self, env, limiter, principal, rounds=8, step=0.1):
        """Admit against a saturated queue, spaced past decrease_interval."""
        for _ in range(rounds):
            limiter.admit(principal, queue_depth=100)
            env.run(until=env.timeout(step))

    def test_congestion_cuts_scale_to_class_floor(self, env):
        limiter = AdmissionController(
            env, rate=1000.0, burst=8, queue_high=16, beta=0.5,
            decrease_interval=0.05,
            principals={"cast": INTEGRATOR, "reader": BULK},
        )
        self._congest(env, limiter, "cast")
        self._congest(env, limiter, "reader")
        scales = {name: entry["scale"]
                  for name, entry in limiter.stats()["classes"].items()}
        # Integrator keeps half its rate through overload; bulk is cut
        # to near-zero -- the priority ranking at the moment it matters.
        assert scales[INTEGRATOR] == 0.5
        assert scales[BULK] == pytest.approx(0.02)
        assert scales[NORMAL] == 1.0  # untouched class keeps full scale

    def test_decrease_interval_limits_cut_rate(self, env):
        limiter = AdmissionController(env, queue_high=4, beta=0.5,
                                      decrease_interval=10.0)
        for _ in range(5):  # same instant: only the first cut lands
            limiter.admit("p", queue_depth=50)
        assert limiter.stats()["classes"][NORMAL]["scale"] == 0.5

    def test_healthy_queue_recovers_additively(self, env):
        limiter = AdmissionController(env, rate=1000.0, queue_high=4,
                                      alpha=0.2, decrease_interval=0.01)
        self._congest(env, limiter, "p", rounds=6, step=0.02)
        cut = limiter.stats()["classes"][NORMAL]["scale"]
        assert cut < 1.0
        for _ in range(40):
            env.run(until=env.timeout(0.25))
            limiter.admit("p", queue_depth=0)
        assert limiter.stats()["classes"][NORMAL]["scale"] == 1.0


class TestStoreFrontDoor:
    """AdmissionController installed on StoreServer.handle."""

    def _server(self, env, zero_net, **limiter_kwargs):
        server = ApiServer(env, zero_net, location="store",
                           watch_overhead=0.0)
        server.admission = AdmissionController(env, **limiter_kwargs)
        return server

    def test_rejection_surfaces_overloaded_error(self, env, zero_net, call):
        server = self._server(env, zero_net, rate=5.0, burst=2)
        client = ApiServerClient(server, location="app")
        client.principal = "app"
        call(client.create("a", {"v": 1}))
        call(client.create("b", {"v": 2}))
        with pytest.raises(OverloadedError, match="admission control"):
            call(client.create("c", {"v": 3}))

    def test_overloaded_error_is_retryable(self):
        error = OverloadedError("shed")
        assert isinstance(error, UnavailableError)
        assert default_retryable(error)

    def test_retry_policy_rides_through_rejection(self, env, zero_net, call):
        server = self._server(env, zero_net, rate=10.0, burst=1)
        policy = RetryPolicy(max_attempts=6, base_backoff=0.1, jitter=0.0)
        client = ApiServerClient(server, location="app", retry_policy=policy)
        client.principal = "app"
        call(client.create("a", {"v": 1}))  # spends the only token
        # The next create is rejected, backs off while the bucket
        # refills (10/s), and lands on a retry -- Overloaded is a
        # *retryable* condition end to end.
        view = call(client.create("b", {"v": 2}))
        assert view["data"] == {"v": 2}
        assert policy.stats()["retries"] >= 1
        assert server.admission.rejected >= 1

    def test_admission_stats_scraped_by_obs_registry(self, env, zero_net):
        """The obs plane surfaces admission counters per exchange."""
        from repro.exchange import ObjectDE
        from repro.obs import ObsPlane

        server = self._server(env, zero_net, rate=5.0, burst=1)
        de = ObjectDE(env, server)
        plane = ObsPlane(env)

        class FakeRuntime:
            knactors = {}
            integrators = {}
            exchanges = {"object": de}
            network = zero_net

        plane.bind_runtime(FakeRuntime())
        server.admission.admit("p", 0)
        server.admission.admit("p", 0)  # rejected: bucket empty
        metrics = plane.registry.snapshot()["metrics"]
        assert metrics["admission_admitted_total"]["series"][
            "exchange=object"] == 1
        assert metrics["admission_rejected_total"]["series"][
            "exchange=object"] == 1


class TestFlowConfig:
    def test_build_admission_carries_principals(self, env):
        cfg = FlowConfig(admission_rate=123.0, admission_burst=7,
                         principals={"spider": BULK})
        limiter = cfg.build_admission(env)
        assert limiter.rate == 123.0
        assert limiter.burst == 7.0
        assert limiter.class_of("spider") == BULK

    def test_retail_app_flow_wiring(self):
        """``build(flow=True)`` arms every layer of the plane."""
        from repro.apps.retail.knactor_app import RetailKnactorApp

        app = RetailKnactorApp.build(flow=True, with_notify=True)
        cfg = app.flow
        assert cfg is not None
        assert app.de.watch_credits == cfg.watch_credits
        assert app.de.backend.admission is not None
        # The integrator casts outrank knactor traffic at the front door.
        limiter = app.de.backend.admission
        assert limiter.class_of("retail-cast") == INTEGRATOR
        assert limiter.class_of("notify-cast") == INTEGRATOR
        assert limiter.class_of("checkout") == NORMAL
        for knactor in app.runtime.knactors.values():
            assert knactor.reconciler.max_queue == cfg.reconciler_queue
            assert knactor.reconciler.queue_overflow == cfg.reconciler_overflow

    def test_flow_accepts_custom_config(self):
        from repro.apps.retail.knactor_app import RetailKnactorApp

        cfg = FlowConfig(watch_credits=5, reconciler_queue=9,
                         principals={"bench": BULK})
        app = RetailKnactorApp.build(flow=cfg, with_notify=False)
        assert app.de.watch_credits == 5
        assert app.de.backend.admission.class_of("bench") == BULK
        # Explicit principal overrides merge with the cast defaults.
        assert app.de.backend.admission.class_of("retail-cast") == INTEGRATOR

    def test_flow_off_leaves_no_machinery(self):
        from repro.apps.retail.knactor_app import RetailKnactorApp

        app = RetailKnactorApp.build(with_notify=False)
        assert app.flow is None
        assert app.de.backend.admission is None
        assert app.de.watch_credits is None
