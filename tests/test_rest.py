"""Unit tests for the REST baseline (router, server, client)."""

import pytest

from repro.errors import ConfigurationError
from repro.rest import RestClient, RestServer, Response, Router
from repro.rest.server import HTTPError


class TestRouter:
    def test_static_route(self):
        router = Router().get("/orders", lambda r: {})
        handler, params = router.resolve("GET", "/orders")
        assert handler is not None and params == {}

    def test_path_params_extracted(self):
        router = Router().get("/orders/{id}/shipments/{sid}", lambda r: {})
        _handler, params = router.resolve("GET", "/orders/o1/shipments/s9")
        assert params == {"id": "o1", "sid": "s9"}

    def test_method_mismatch(self):
        router = Router().get("/orders", lambda r: {})
        assert router.resolve("POST", "/orders") == (None, None)

    def test_length_mismatch(self):
        router = Router().get("/orders/{id}", lambda r: {})
        assert router.resolve("GET", "/orders") == (None, None)
        assert router.resolve("GET", "/orders/o1/extra") == (None, None)

    def test_first_match_wins(self):
        router = Router()
        router.get("/orders/special", lambda r: "special")
        router.get("/orders/{id}", lambda r: "generic")
        handler, _ = router.resolve("GET", "/orders/special")
        assert handler(None) == "special"

    def test_all_verbs(self):
        router = Router()
        for verb in ("get", "post", "put", "patch", "delete"):
            getattr(router, verb)(f"/{verb}", lambda r: {})
        assert len(router) == 5

    def test_invalid_method_rejected(self):
        with pytest.raises(ConfigurationError):
            Router().add("BREW", "/coffee", lambda r: {})

    def test_template_must_be_absolute(self):
        with pytest.raises(ConfigurationError):
            Router().get("orders", lambda r: {})


@pytest.fixture
def server(env, net):
    server = RestServer(env, net, "orders-svc")
    orders = {}

    def create(request):
        order_id = f"o{len(orders) + 1}"
        orders[order_id] = dict(request.body or {}, id=order_id)
        return Response(201, orders[order_id])

    def read(request):
        order = orders.get(request.params["id"])
        if order is None:
            raise HTTPError(404, f"no order {request.params['id']}")
        return order

    def update(request):
        order = orders.get(request.params["id"])
        if order is None:
            raise HTTPError(404, "missing")
        order.update(request.body or {})
        return order

    def slow(request):
        yield env.timeout(0.5)
        return {"slow": True}

    server.route("POST", "/orders", create)
    server.route("GET", "/orders/{id}", read)
    server.route("PATCH", "/orders/{id}", update)
    server.route("GET", "/slow", slow)
    return server


@pytest.fixture
def client(env, server):
    return RestClient(env, server, "frontend")


class TestServerClient:
    def test_crud_roundtrip(self, env, client, call):
        created = call(client.post("/orders", body={"item": "mug"}))
        assert created.status == 201
        order_id = created.body["id"]
        fetched = call(client.get(f"/orders/{order_id}"))
        assert fetched.body["item"] == "mug"
        call(client.patch(f"/orders/{order_id}", body={"item": "pen"}))
        assert call(client.get(f"/orders/{order_id}")).body["item"] == "pen"

    def test_404_raises_by_default(self, env, client, call):
        with pytest.raises(HTTPError) as excinfo:
            call(client.get("/orders/ghost"))
        assert excinfo.value.status == 404

    def test_unrouted_path_404(self, env, client, call):
        with pytest.raises(HTTPError):
            call(client.get("/nope"))

    def test_raise_for_status_opt_out(self, env, client, call):
        response = call(client.get("/orders/ghost", raise_for_status=False))
        assert response.status == 404 and "no order" in response.body["error"]

    def test_generator_handler(self, env, client, call):
        start = env.now
        response = call(client.get("/slow"))
        assert response.body == {"slow": True}
        assert env.now - start >= 0.5

    def test_network_latency_charged(self, env, client, call):
        start = env.now
        call(client.post("/orders", body={"item": "x"}))
        assert env.now - start >= 2 * 0.00025

    def test_counters(self, env, server, client, call):
        call(client.post("/orders", body={}))
        call(client.get("/orders/o1"))
        assert client.requests_made == 2
        assert server.requests_served == 2

    def test_internal_error_maps_to_500(self, env, net, call):
        from repro.errors import StoreError

        server = RestServer(env, net, "buggy")

        def boom(request):
            raise StoreError("backend exploded")

        server.route("GET", "/boom", boom)
        client = RestClient(env, server, "c")
        response = call(client.get("/boom", raise_for_status=False))
        assert response.status == 500
