"""Unit tests for the Log Data Exchange."""

import pytest

from repro.errors import AccessDeniedError, ConfigurationError, SchemaError
from repro.exchange import LogDE
from repro.store import ApiServer, LogLake

HOUSE_SCHEMA = """\
schema: SmartHome/v1/House/Readings
kwh: number # +kr: ingest
motion: boolean # +kr: ingest
note: string
"""

MOTION_SCHEMA = """\
schema: SmartHome/v1/Motion/Readings
triggered: boolean
sensitivity: number
"""


@pytest.fixture
def de(env, zero_net):
    backend = LogLake(env, zero_net, watch_overhead=0.0)
    exchange = LogDE(env, backend)
    exchange.host_store("house-log", HOUSE_SCHEMA, owner="house")
    exchange.host_store("motion-log", MOTION_SCHEMA, owner="motion")
    return exchange


class TestHosting:
    def test_pools_created_on_host(self, de, call):
        assert de.backend.op_pools() == ["house-log", "motion-log"]

    def test_wrong_backend_rejected(self, env, zero_net):
        with pytest.raises(ConfigurationError):
            LogDE(env, ApiServer(env, zero_net))


class TestOwnerAccess:
    def test_owner_load_and_query(self, de, call):
        house = de.handle("house-log", principal="house")
        call(house.load([{"kwh": 0.5, "motion": True}]))
        rows = call(house.query())
        assert rows[0]["kwh"] == 0.5

    def test_semi_structured_unknown_fields_allowed(self, de, call):
        house = de.handle("house-log", principal="house")
        call(house.load([{"kwh": 0.5, "vendor_extra": "xyz"}]))
        assert call(house.query())[0]["vendor_extra"] == "xyz"

    def test_declared_field_types_still_enforced(self, de, call):
        house = de.handle("house-log", principal="house")
        with pytest.raises(SchemaError):
            call(house.load([{"kwh": "lots"}]))

    def test_stats(self, de, call):
        house = de.handle("house-log", principal="house")
        call(house.load([{"kwh": 1.0}, {"kwh": 2.0}]))
        assert call(house.stats())["records"] == 2


class TestIntegratorAccess:
    def test_integrator_loads_ingest_fields_only(self, de, call):
        de.grant("sync", "house-log", role="integrator")
        handle = de.handle("house-log", principal="sync")
        call(handle.load([{"kwh": 1.5, "motion": True}]))
        with pytest.raises(AccessDeniedError):
            call(handle.load([{"note": "sneaky write"}]))

    def test_integrator_can_query_source(self, de, call):
        motion_owner = de.handle("motion-log", principal="motion")
        call(motion_owner.load([{"triggered": True}]))
        de.grant("sync", "motion-log", role="integrator")
        handle = de.handle("motion-log", principal="sync")
        rows = call(handle.query(ops=[{"op": "filter", "expr": "triggered == True"}]))
        assert len(rows) == 1

    def test_stranger_denied(self, de, call):
        handle = de.handle("house-log", principal="stranger")
        with pytest.raises(AccessDeniedError):
            call(handle.query())

    def test_reader_grant_cannot_load(self, de, call):
        de.grant("viewer", "motion-log", role="reader")
        handle = de.handle("motion-log", principal="viewer")
        with pytest.raises(AccessDeniedError):
            call(handle.load([{"triggered": True}]))


class TestWatch:
    def test_owner_watch_batches(self, env, de, call):
        house = de.handle("house-log", principal="house")
        batches = []
        house.watch(batches.append)
        call(house.load([{"kwh": 1.0}]))
        env.run()
        assert len(batches) == 1

    def test_watch_requires_grant(self, de):
        handle = de.handle("motion-log", principal="stranger")
        with pytest.raises(AccessDeniedError):
            handle.watch(lambda e: None)
