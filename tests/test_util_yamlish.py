"""Unit tests for the YAML-subset parser."""

import pytest

from repro.util import yamlish
from repro.util.yamlish import YamlishError


class TestScalars:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("key: 42", 42),
            ("key: 4.5", 4.5),
            ("key: true", True),
            ("key: false", False),
            ("key: null", None),
            ("key: hello", "hello"),
            ("key: 'quoted: string'", "quoted: string"),
            ('key: "double"', "double"),
            ("key: [1, 2, 3]", [1, 2, 3]),
            ("key: []", []),
            ("key: [a, 'b, c']", ["a", "b, c"]),
        ],
    )
    def test_scalar_values(self, text, expected):
        assert yamlish.parse(text) == {"key": expected}

    def test_empty_document(self):
        assert yamlish.parse("") == {}
        assert yamlish.parse("\n# only a comment\n") == {}


class TestMappings:
    def test_nested_mapping(self):
        doc = "a:\n  b: 1\n  c:\n    d: x\n"
        assert yamlish.parse(doc) == {"a": {"b": 1, "c": {"d": "x"}}}

    def test_empty_value_is_none(self):
        assert yamlish.parse("a:\nb: 2") == {"a": None, "b": 2}

    def test_duplicate_key_rejected(self):
        with pytest.raises(YamlishError):
            yamlish.parse("a: 1\na: 2")

    def test_tab_indentation_rejected(self):
        with pytest.raises(YamlishError):
            yamlish.parse("a:\n\tb: 1")

    def test_unexpected_indent_rejected(self):
        with pytest.raises(YamlishError):
            yamlish.parse("a: 1\n    b: 2")

    def test_colon_in_quoted_value(self):
        assert yamlish.parse("a: 'x: y'") == {"a": "x: y"}


class TestLists:
    def test_block_list(self):
        assert yamlish.parse("- 1\n- 2\n- three") == [1, 2, "three"]

    def test_list_of_mappings(self):
        doc = "- name: a\n  size: 1\n- name: b\n  size: 2\n"
        assert yamlish.parse(doc) == [
            {"name": "a", "size": 1},
            {"name": "b", "size": 2},
        ]

    def test_mapping_with_list_value(self):
        doc = "items:\n  - x\n  - y\n"
        assert yamlish.parse(doc) == {"items": ["x", "y"]}


class TestBlocks:
    def test_folded_block_joins_with_spaces(self):
        doc = "expr: >\n  line one\n  line two\n"
        assert yamlish.parse(doc) == {"expr": "line one line two"}

    def test_literal_block_keeps_newlines(self):
        doc = "text: |\n  line one\n  line two\n"
        assert yamlish.parse(doc) == {"text": "line one\nline two"}

    def test_folded_block_ends_at_dedent(self):
        doc = "expr: >\n  folded text\nnext: 1\n"
        assert yamlish.parse(doc) == {"expr": "folded text", "next": 1}

    def test_empty_block_rejected(self):
        with pytest.raises(YamlishError):
            yamlish.parse("expr: >\nnext: 1")


class TestComments:
    def test_comments_stripped(self):
        doc = "# header\na: 1  # trailing\n"
        assert yamlish.parse(doc) == {"a": 1}

    def test_hash_inside_quotes_not_a_comment(self):
        assert yamlish.parse("a: 'x # y'") == {"a": "x # y"}

    def test_annotations_reported_with_paths(self):
        doc = "a: 1  # +kr: external\nb:\n  c: 2  # note\n"
        data, annotations = yamlish.parse(doc, with_annotations=True)
        assert data == {"a": 1, "b": {"c": 2}}
        assert annotations == {("a",): "+kr: external", ("b", "c"): "note"}


class TestPaperListings:
    def test_fig5_checkout_schema_shape(self):
        doc = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
"""
        data, annotations = yamlish.parse(doc, with_annotations=True)
        assert data["schema"] == "OnlineRetail/v1/Checkout/Order"
        assert data["shippingCost"] == "number"
        assert annotations[("paymentID",)] == "+kr: external"

    def test_fig6_dxg_shape(self):
        doc = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v1/Shipping/knactor-shipping
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    trackingID: S.id
  S:
    items: '[item.name for item in C.order.items]'
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""
        data = yamlish.parse(doc)
        assert data["Input"]["C"] == "OnlineRetail/v1/Checkout/knactor-checkout"
        assert data["DXG"]["C.order"]["trackingID"] == "S.id"
        assert "currency_convert(S.quote.price, S.quote.currency" in (
            data["DXG"]["C.order"]["shippingCost"]
        )
        assert data["DXG"]["S"]["method"] == '"air" if C.order.cost > 1000 else "ground"'


class TestDumps:
    def test_roundtrip_nested(self):
        data = {"a": {"b": 1, "c": [1, 2, "x"]}, "d": None, "e": True}
        assert yamlish.parse(yamlish.dumps(data)) == data

    def test_roundtrip_special_strings(self):
        data = {"a": "needs: quoting", "b": "plain"}
        assert yamlish.parse(yamlish.dumps(data)) == data
