"""Live schema evolution (task T3) and transactional composition.

Table 1 prices T3 from artifacts; this test performs it against a RUNNING
app: the Shipping knactor evolves its schema to v2 (nested destination,
item quantities), a v2-speaking Shipping2 reconciler comes online, and
the only change on the composition side is a Cast reconfiguration.
Checkout never learns any of this happened.
"""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core import Cast, Knactor, Reconciler, StoreBinding
from repro.core.dxg.executor import ExecutorOptions
from repro.core.optimizer import K_REDIS
from repro.errors import SchemaError

SHIPPING_V2 = """\
schema: OnlineRetail/v2/Shipping2/Shipment
items: array # +kr: external
destination: # +kr: external
  street_address: string
  zip_code: string
method: string # +kr: external
id: string
quote:
  price: number
  currency: string
"""

V2_DXG = """\
Input:
  C: OnlineRetail/v1/Checkout/knactor-checkout
  S: OnlineRetail/v2/Shipping2/knactor-shipping2
  P: OnlineRetail/v1/Payment/knactor-payment
DXG:
  C.order:
    shippingCost: >
      currency_convert(S.quote.price,
      S.quote.currency, this.currency)
    paymentID: P.id
    trackingID: S.id
  P:
    amount: C.order.totalCost
    currency: C.order.currency
  S:
    items: '[{"product_name": item.name, "quantity": 1} for item in C.order.items]'
    destination:
      street_address: C.order.address
      zip_code: '"00000"'
    method: >
      "air" if C.order.cost > 1000 else "ground"
"""


class ShippingV2Reconciler(Reconciler):
    """Speaks the v2 shape: nested destination, structured items."""

    def reconcile(self, ctx, key, obj):
        if obj is None or obj.get("id") or obj.get("destination") is None:
            return
        yield ctx.env.timeout(0.05)
        yield ctx.store.patch(
            key,
            {"id": f"v2-{key}", "quote": {"price": 8.5, "currency": "USD"}},
        )


class TestLiveT3:
    def test_schema_evolution_with_cast_remap_only(self, env, zero_net):
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        workload = OrderWorkload(seed=13)

        # Sanity: the v1 composition works.
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=30.0)
        order = app.env.run(until=app.order(key))["data"]
        assert order["trackingID"].startswith("trk-")

        # The new vendor service (v2 schema) comes online.
        app.runtime.add_knactor(
            Knactor("shipping2",
                    [StoreBinding("default", "object", SHIPPING_V2)],
                    reconciler=ShippingV2Reconciler())
        )
        app.de.grant("retail-cast", "knactor-shipping2", role="integrator")

        # The ONLY composition change: reconfigure the running Cast.
        app.cast.reconfigure(spec=V2_DXG)

        key2, data2 = workload.next_order()
        key2 = "order/v2-era"
        app.env.run(until=app.place_order(key2, data2))
        app.run_until_quiet(max_seconds=30.0)
        order = app.env.run(until=app.order(key2))["data"]
        assert order["trackingID"].startswith("v2-")
        assert order["status"] == "fulfilled"

        # The v2 shipment has the restructured shape.
        shipment = app.env.run(
            until=app.runtime.handle_of("shipping2").get("v2-era")
        )["data"]
        assert shipment["destination"]["street_address"] == data2["address"]
        assert all(
            set(item) == {"product_name", "quantity"}
            for item in shipment["items"]
        )

    def test_breaking_schema_update_requires_explicit_force(self, env):
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        narrower = "schema: OnlineRetail/v1/Shipping/Shipment\nid: string\n"
        with pytest.raises(SchemaError):
            app.de.update_schema("knactor-shipping", narrower)
        delta = app.de.update_schema(
            "knactor-shipping", narrower, allow_breaking=True
        )
        assert "addr" in delta.removed


class TestTransactionalApp:
    def test_full_app_with_transactional_cast(self):
        """The retail app with atomic exchange commits, end to end."""
        profile = K_REDIS
        app = RetailKnactorApp.build(profile=profile, with_notify=False)
        # Swap in a transactional executor configuration at run time.
        app.cast.options = ExecutorOptions(
            transactional=True, trust_cache_for_missing=True
        )
        app.cast.reconfigure(body={})  # rebuild executor with new options
        workload = OrderWorkload(seed=5)
        key, data = workload.next_order()
        app.env.run(until=app.place_order(key, data))
        app.run_until_quiet(max_seconds=30.0)
        order = app.env.run(until=app.order(key))["data"]
        assert order["status"] == "fulfilled"
        assert order["trackingID"].startswith("trk-")
        assert order["paymentID"].startswith("ch-")
