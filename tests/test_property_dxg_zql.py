"""Property-based tests: DXG quiescence/analysis and log-query laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dxg import DXGExecutor, DependencyGraph, analyze
from repro.core.dxg.parser import build_spec
from repro.exchange import ObjectDE
from repro.simnet import Environment, FixedLatency, Network
from repro.store import ApiServer
from repro.query import compile_ops

# ---------------------------------------------------------------------------
# Random acyclic DXGs: store B's fields computed from store A's fields.
# ---------------------------------------------------------------------------

_field_index = st.integers(min_value=0, max_value=4)


@st.composite
def acyclic_dxgs(draw):
    """A random fan-in DXG A -> B with arithmetic transforms."""
    n_assignments = draw(st.integers(min_value=1, max_value=5))
    body = {}
    for i in range(n_assignments):
        sources = draw(st.lists(_field_index, min_size=1, max_size=3))
        expr = " + ".join(f"A.f{j}" for j in sources)
        scale = draw(st.integers(min_value=1, max_value=5))
        body[f"g{i}"] = f"({expr}) * {scale}"
    return build_spec(
        {"A": "app/v1/A/knactor-a", "B": "app/v1/B/knactor-b"},
        {"B": body},
    )


def _setup(spec):
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0))
    de = ObjectDE(env, ApiServer(env, net, watch_overhead=0))
    source_schema = "schema: app/v1/A/S\n" + "\n".join(
        f"f{i}: number" for i in range(5)
    )
    target_schema = "schema: app/v1/B/T\n" + "\n".join(
        f"g{i}: number # +kr: external" for i in range(5)
    )
    de.host_store("knactor-a", source_schema + "\n", owner="a")
    de.host_store("knactor-b", target_schema + "\n", owner="b")
    de.grant("cast", "knactor-a", role="integrator")
    de.grant("cast", "knactor-b", role="integrator")
    executor = DXGExecutor(
        env, spec,
        handles={"A": de.handle("knactor-a", principal="cast"),
                 "B": de.handle("knactor-b", principal="cast")},
    )
    return env, de, executor


class TestDXGProperties:
    @settings(max_examples=30, deadline=None)
    @given(spec=acyclic_dxgs(),
           values=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=5, max_size=5))
    def test_acyclic_dxg_quiesces_and_is_idempotent(self, spec, values):
        assert analyze(spec).ok
        env, de, executor = _setup(spec)
        owner = de.handle("knactor-a", principal="a")
        env.run(until=owner.create("x", {f"f{i}": v for i, v in enumerate(values)}))
        first = env.run(until=executor.exchange("x"))
        assert first.passes <= executor.options.max_passes
        # Idempotence: nothing changes on a re-run over unchanged sources.
        second = env.run(until=executor.exchange("x"))
        assert second.writes == 0 and second.creates == 0

    @settings(max_examples=30, deadline=None)
    @given(spec=acyclic_dxgs(),
           values=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=5, max_size=5))
    def test_computed_values_match_semantics(self, spec, values):
        env, de, executor = _setup(spec)
        owner = de.handle("knactor-a", principal="a")
        env.run(until=owner.create("x", {f"f{i}": v for i, v in enumerate(values)}))
        env.run(until=executor.exchange("x"))
        reader = de.handle("knactor-b", principal="b")
        target = env.run(until=reader.get("x"))["data"]
        for assignment in spec.assignments:
            expected = assignment.expression.evaluate(
                {"A": {f"f{i}": v for i, v in enumerate(values)}, "this": {}}
            )
            assert target[assignment.field] == expected

    @settings(max_examples=50)
    @given(
        n=st.integers(min_value=2, max_value=6),
        extra_edges=st.integers(min_value=0, max_value=3),
    )
    def test_ring_dxgs_are_rejected(self, n, extra_edges):
        """Any assignment ring must be caught by static analysis."""
        inputs = {chr(ord("A") + i): f"app/v1/{i}/s{i}" for i in range(n)}
        body = {}
        names = sorted(inputs)
        for i, name in enumerate(names):
            source = names[(i + 1) % n]
            body[name] = {"x": f"{source}.x + 1"}
        spec = build_spec(inputs, body)
        report = analyze(spec)
        assert not report.ok and report.cycles

    @settings(max_examples=40)
    @given(spec=acyclic_dxgs())
    def test_topological_order_respects_dependencies(self, spec):
        graph = DependencyGraph.from_spec(spec)
        order = graph.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for node in order:
            for pred in graph.predecessors(node):
                if pred in position:
                    assert position[pred] < position[node]


# ---------------------------------------------------------------------------
# ZQL laws
# ---------------------------------------------------------------------------

_records = st.lists(
    st.fixed_dictionaries(
        {"v": st.integers(min_value=-1000, max_value=1000),
         "w": st.integers(min_value=0, max_value=10)}
    ),
    max_size=30,
)


class TestZQLProperties:
    @given(records=_records)
    def test_filter_output_subset_of_input(self, records):
        out = compile_ops([{"op": "filter", "expr": "v > 0"}])(list(records))
        assert all(r in records for r in out)
        assert all(r["v"] > 0 for r in out)

    @given(records=_records)
    def test_sort_is_an_ordered_permutation(self, records):
        out = compile_ops([{"op": "sort", "by": "v"}])(list(records))
        assert sorted(out, key=lambda r: r["v"]) == out
        assert sorted(map(repr, out)) == sorted(map(repr, records))

    @given(records=_records)
    def test_rename_preserves_count_and_values(self, records):
        out = compile_ops([{"op": "rename", "from": "v", "to": "value"}])(
            list(records)
        )
        assert len(out) == len(records)
        assert [r["value"] for r in out] == [r["v"] for r in records]

    @given(records=_records)
    def test_agg_sum_matches_manual(self, records):
        [row] = compile_ops([{"op": "agg", "aggs": {"t": "sum(v)", "n": "count()"}}])(
            list(records)
        )
        assert row["t"] == sum(r["v"] for r in records)
        assert row["n"] == len(records)

    @given(records=_records)
    def test_grouped_sum_partitions_total(self, records):
        rows = compile_ops(
            [{"op": "agg", "aggs": {"t": "sum(v)"}, "by": ["w"]}]
        )(list(records))
        assert sum(r["t"] for r in rows) == sum(r["v"] for r in records)
        assert len({r["w"] for r in rows}) == len(rows)

    @given(records=_records)
    def test_pipeline_never_mutates_input(self, records):
        import copy

        snapshot = copy.deepcopy(records)
        compile_ops(
            [{"op": "derive", "field": "d", "expr": "v * 2"},
             {"op": "filter", "expr": "d > 0"},
             {"op": "sort", "by": "d"}]
        )(records)
        assert records == snapshot

    @given(records=_records, k=st.integers(min_value=0, max_value=40))
    def test_head_tail_bounds(self, records, k):
        head = compile_ops([{"op": "head", "count": k}])(list(records))
        tail = compile_ops([{"op": "tail", "count": k}])(list(records))
        assert len(head) == min(k, len(records))
        assert len(tail) == min(k, len(records))
