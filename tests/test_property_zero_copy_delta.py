"""Property test: the zero-copy/delta state plane is observably identical
to the classic deepcopy/full-snapshot plane.

Seeded random operation sequences (create/patch/update/delete/txn) are
applied to two stores -- one classic (``zero_copy=False``), one
``cow+delta`` (``zero_copy=True, delta_watch=True``).  A watcher mirrors
each store.  The properties:

- final store state is byte-identical (canonical JSON),
- the per-key sequence of (type, object, revision) a watcher observes is
  identical -- the delta encoding is invisible to handlers,
- after an injected dropped watch message, the delta stream detects the
  gap, resyncs the key, and converges to the same state anyway.
"""

import json
import random

import pytest

from repro.store import DELETED, MemKV, MemKVClient
from repro.simnet import Environment, FixedLatency, Network

KEYS = ["orders/a", "orders/b", "orders/c", "ships/x", "ships/y"]
FIELDS = ["status", "cost", "eta", "meta"]


def random_value(rng, depth=0):
    roll = rng.random()
    if depth < 2 and roll < 0.25:
        return {
            f"f{i}": random_value(rng, depth + 1) for i in range(rng.randint(1, 3))
        }
    if depth < 2 and roll < 0.35:
        return [random_value(rng, depth + 1) for _ in range(rng.randint(1, 3))]
    if roll < 0.6:
        return rng.randint(0, 1000)
    return "v" * rng.randint(1, 30) + str(rng.randint(0, 9))


def random_ops(seed, count=60):
    """One seeded op sequence, replayable against any store."""
    rng = random.Random(seed)
    ops = []
    live = set()
    for _ in range(count):
        roll = rng.random()
        key = rng.choice(KEYS)
        if key not in live or roll < 0.15:
            key = rng.choice([k for k in KEYS if k not in live] or KEYS)
            if key not in live:
                ops.append(("create", key, {
                    f: random_value(rng) for f in rng.sample(FIELDS, 2)
                }))
                live.add(key)
                continue
        if roll < 0.55:
            patch = {rng.choice(FIELDS): random_value(rng)}
            if rng.random() < 0.2:
                patch[rng.choice(FIELDS)] = None  # deletion marker
            ops.append(("patch", key, patch))
        elif roll < 0.7:
            ops.append(("update", key, {
                f: random_value(rng) for f in rng.sample(FIELDS, 3)
            }))
        elif roll < 0.8 and len(live) > 1:
            ops.append(("delete", key, None))
            live.discard(key)
        else:
            patch = {rng.choice(FIELDS): random_value(rng)}
            ops.append(("txn", key, patch))
    return ops


class Mirror:
    """Watch consumer recording per-key event streams and live state."""

    def __init__(self):
        self.state = {}
        self.per_key = {}

    def absorb(self, event):
        self.per_key.setdefault(event.key, []).append(
            (event.type, None if event.object is None else dict(event.object),
             event.revision)
        )
        if event.type == DELETED:
            self.state.pop(event.key, None)
        else:
            self.state[event.key] = event.object


def run_sequence(ops, zero_copy, delta_watch, drop_at=None):
    """Apply ``ops``; returns (final_state_json, mirror, watch, server)."""
    env = Environment()
    net = Network(env, default_latency=FixedLatency(0.0))
    server = MemKV(env, net, watch_overhead=0.0,
                   zero_copy=zero_copy, delta_watch=delta_watch)
    client = MemKVClient(server, location="tester")
    mirror = Mirror()
    watch = client.watch(mirror.absorb)

    def call(proc):
        return env.run(until=proc)

    for index, (verb, key, payload) in enumerate(ops):
        if drop_at is not None and index == drop_at:
            server.drop_next_watch_message()
        try:
            if verb == "create":
                call(client.create(key, payload))
            elif verb == "patch":
                call(client.patch(key, payload))
            elif verb == "update":
                call(client.update(key, payload))
            elif verb == "delete":
                call(client.delete(key))
            else:  # txn
                call(client.txn([{"action": "patch", "key": key,
                                  "patch": payload}]))
        except Exception:
            pass  # op raced a delete; both stores see identical failures
    env.run()
    state = {
        key: view["data"]
        for key, view in (
            (k, call(client.get(k))) for k in sorted(server._objects)
        )
    }
    return json.dumps(state, sort_keys=True), mirror, watch, server


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 13, 42])
def test_cow_delta_equivalent_to_deepcopy_snapshot(seed):
    ops = random_ops(seed)
    base_state, base_mirror, _, base_server = run_sequence(
        ops, zero_copy=False, delta_watch=False
    )
    cow_state, cow_mirror, _, cow_server = run_sequence(
        ops, zero_copy=True, delta_watch=True
    )
    assert cow_state == base_state
    assert set(cow_mirror.per_key) == set(base_mirror.per_key)
    for key in base_mirror.per_key:
        assert cow_mirror.per_key[key] == base_mirror.per_key[key], key
    # And the optimized plane actually copied less.
    assert (
        cow_server.copy_meter.copied_bytes
        < base_server.copy_meter.copied_bytes
    )


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_injected_drop_resyncs_and_converges(seed):
    ops = random_ops(seed)
    # Drop a mid-sequence watch message: the delta chain breaks for the
    # keys it carried; gap detection + per-key resync must converge the
    # mirror to the same final state as the unbroken baseline.
    drop_at = len(ops) // 2
    base_state, base_mirror, _, _ = run_sequence(
        ops, zero_copy=False, delta_watch=False
    )
    cow_state, cow_mirror, watch, _ = run_sequence(
        ops, zero_copy=True, delta_watch=True, drop_at=drop_at
    )
    assert cow_state == base_state
    assert watch.active  # resync healed the stream, no break needed
    assert json.dumps(cow_mirror.state, sort_keys=True) == json.dumps(
        base_mirror.state, sort_keys=True
    )
    # Revisions per key still strictly increase in the mirror's view.
    for key, events in cow_mirror.per_key.items():
        revisions = [rev for (_t, _o, rev) in events]
        assert revisions == sorted(revisions), key
