"""Unit tests for the Object Data Exchange."""

import pytest

from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    NotFoundError,
    SchemaError,
)
from repro.exchange import ObjectDE
from repro.store import ApiServer, LogLake, MemKV

CHECKOUT_SCHEMA = """\
schema: OnlineRetail/v1/Checkout/Order
items: object
address: string
cost: number
shippingCost: number # +kr: external
totalCost: number
currency: string
paymentID: string # +kr: external
trackingID: string # +kr: external
cardToken: string # +kr: secret
"""


@pytest.fixture
def de(env, zero_net):
    backend = ApiServer(env, zero_net, watch_overhead=0.0)
    exchange = ObjectDE(env, backend)
    exchange.host_store("knactor-checkout", CHECKOUT_SCHEMA, owner="checkout")
    return exchange


@pytest.fixture
def owner(de):
    return de.handle("knactor-checkout", principal="checkout")


class TestHosting:
    def test_schema_registered(self, de):
        schema = de.schema_for("knactor-checkout")
        assert str(schema.name) == "OnlineRetail/v1/Checkout/Order"

    def test_duplicate_hosting_rejected(self, de):
        with pytest.raises(ConfigurationError):
            de.host_store("knactor-checkout", CHECKOUT_SCHEMA, owner="x")

    def test_unknown_store_rejected(self, de):
        with pytest.raises(NotFoundError):
            de.handle("nope", principal="x")

    def test_wrong_backend_rejected(self, env, zero_net):
        with pytest.raises(ConfigurationError):
            ObjectDE(env, LogLake(env, zero_net))

    def test_memkv_backend_accepted(self, env, zero_net):
        exchange = ObjectDE(env, MemKV(env, zero_net))
        assert exchange.supports_udf

    def test_apiserver_has_no_udf(self, de):
        assert not de.supports_udf

    def test_describe_mentions_stores_and_grants(self, de):
        de.grant("intg", "knactor-checkout", role="integrator")
        text = de.describe()
        assert "knactor-checkout" in text and "intg" in text


class TestOwnerAccess:
    def test_owner_full_crud(self, owner, call):
        call(owner.create("o1", {"cost": 10, "currency": "USD"}))
        view = call(owner.get("o1"))
        assert view["data"]["cost"] == 10
        assert view["key"] == "o1"
        call(owner.update("o1", {"cost": 20}))
        call(owner.patch("o1", {"address": "12 Elm St"}))
        assert call(owner.read_field("o1", "address")) == "12 Elm St"
        call(owner.delete("o1"))
        with pytest.raises(NotFoundError):
            call(owner.get("o1"))

    def test_schema_enforced_on_create(self, owner, call):
        with pytest.raises(SchemaError):
            call(owner.create("o1", {"cost": "not-a-number"}))

    def test_unknown_field_rejected(self, owner, call):
        with pytest.raises(SchemaError):
            call(owner.create("o1", {"bogus": 1}))

    def test_owner_sees_secret_fields(self, owner, call):
        call(owner.create("o1", {"cardToken": "tok-123"}))
        assert call(owner.get("o1"))["data"]["cardToken"] == "tok-123"

    def test_list_scoped_to_store(self, de, owner, call):
        call(owner.create("o1", {"cost": 1}))
        call(owner.create("o2", {"cost": 2}))
        views = call(owner.list())
        assert [v["key"] for v in views] == ["o1", "o2"]


class TestIntegratorAccess:
    def test_integrator_grant_allows_external_fields_only(self, de, owner, call):
        de.grant("intg", "knactor-checkout", role="integrator")
        handle = de.handle("knactor-checkout", principal="intg")
        call(owner.create("o1", {"cost": 10}))
        call(handle.patch("o1", {"shippingCost": 4.5, "trackingID": "t-1"}))
        with pytest.raises(AccessDeniedError):
            call(handle.patch("o1", {"cost": 0.01}))

    def test_ungranted_integrator_denied(self, de, call):
        handle = de.handle("knactor-checkout", principal="stranger")
        with pytest.raises(AccessDeniedError):
            call(handle.get("o1"))

    def test_integrator_cannot_delete(self, de, owner, call):
        de.grant("intg", "knactor-checkout", role="integrator")
        handle = de.handle("knactor-checkout", principal="intg")
        call(owner.create("o1", {"cost": 10}))
        with pytest.raises(AccessDeniedError):
            call(handle.delete("o1"))

    def test_secret_masked_for_integrator(self, de, owner, call):
        de.grant("intg", "knactor-checkout", role="integrator")
        handle = de.handle("knactor-checkout", principal="intg")
        call(owner.create("o1", {"cost": 10, "cardToken": "tok-1"}))
        view = call(handle.get("o1"))
        assert "cardToken" not in view["data"]
        assert view["data"]["cost"] == 10

    def test_secret_visible_with_read_grant(self, de, owner, call):
        de.grant(
            "auditor",
            "knactor-checkout",
            verbs={"get"},
            read_fields=("cardToken",),
        )
        handle = de.handle("knactor-checkout", principal="auditor")
        call(owner.create("o1", {"cardToken": "tok-1"}))
        assert call(handle.get("o1"))["data"]["cardToken"] == "tok-1"

    def test_reader_grant_is_read_only(self, de, owner, call):
        de.grant("viewer", "knactor-checkout", role="reader")
        handle = de.handle("knactor-checkout", principal="viewer")
        call(owner.create("o1", {"cost": 10}))
        assert call(handle.get("o1"))["data"]["cost"] == 10
        with pytest.raises(AccessDeniedError):
            call(handle.patch("o1", {"shippingCost": 1}))


class TestWatch:
    def test_watch_events_masked_and_key_relative(self, env, de, owner, call):
        de.grant("intg", "knactor-checkout", role="integrator")
        handle = de.handle("knactor-checkout", principal="intg")
        events = []
        handle.watch(events.append)
        call(owner.create("o1", {"cost": 10, "cardToken": "tok"}))
        env.run()
        assert events[0].key == "o1"
        assert events[0].object["cost"] == 10
        assert "cardToken" not in events[0].object

    def test_watch_denied_without_grant(self, de):
        handle = de.handle("knactor-checkout", principal="stranger")
        with pytest.raises(AccessDeniedError):
            handle.watch(lambda e: None)

    def test_stores_isolated_on_shared_backend(self, env, de, owner, call):
        de.host_store(
            "knactor-shipping",
            "schema: OnlineRetail/v1/Shipping/Shipment\nitems: array\naddr: string\n",
            owner="shipping",
        )
        ship = de.handle("knactor-shipping", principal="shipping")
        events = []
        ship.watch(events.append)
        call(owner.create("o1", {"cost": 1}))
        call(ship.create("s1", {"addr": "x"}))
        env.run()
        assert [e.key for e in events] == ["s1"]


class TestSchemaEvolution:
    def test_compatible_update(self, de):
        wider = CHECKOUT_SCHEMA + "giftWrap: boolean\n"
        delta = de.update_schema("knactor-checkout", wider)
        assert delta.added == ["giftWrap"]
        assert de.schema_for("knactor-checkout").has_field("giftWrap")

    def test_breaking_update_blocked_then_forced(self, de):
        narrower = "schema: OnlineRetail/v1/Checkout/Order\ncost: number\n"
        with pytest.raises(SchemaError):
            de.update_schema("knactor-checkout", narrower)
        delta = de.update_schema("knactor-checkout", narrower, allow_breaking=True)
        assert "address" in delta.removed


class TestAuditIntegration:
    def test_every_access_audited(self, de, owner, call):
        call(owner.create("o1", {"cost": 1}))
        call(owner.get("o1"))
        records = de.audit.records(principal="checkout")
        assert [r.verb for r in records] == ["create", "get"]

    def test_denial_audited(self, de, call):
        handle = de.handle("knactor-checkout", principal="stranger")
        with pytest.raises(AccessDeniedError):
            call(handle.get("o1"))
        assert de.audit.denials()[0].principal == "stranger"
