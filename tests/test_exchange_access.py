"""Unit tests for RBAC, field scoping, conditions, and the audit log."""

import pytest

from repro.errors import AccessDeniedError, ConfigurationError
from repro.exchange import AccessController, AuditLog, Permission, Role


@pytest.fixture
def acl():
    controller = AccessController(audit=AuditLog())
    controller.add_role(
        Role("reader", [Permission("storeA", frozenset({"get", "watch"}))])
    )
    controller.add_role(
        Role(
            "writer",
            [
                Permission(
                    "storeA",
                    frozenset({"patch"}),
                    write_fields=("shippingCost", "quote"),
                )
            ],
        )
    )
    return controller


class TestRBAC:
    def test_unbound_principal_denied(self, acl):
        with pytest.raises(AccessDeniedError):
            acl.check("stranger", "storeA", "get")

    def test_bound_principal_allowed(self, acl):
        acl.bind("alice", "reader")
        acl.check("alice", "storeA", "get")  # no raise

    def test_verb_not_granted_denied(self, acl):
        acl.bind("alice", "reader")
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeA", "delete")

    def test_wrong_store_denied(self, acl):
        acl.bind("alice", "reader")
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeB", "get")

    def test_multiple_roles_union(self, acl):
        acl.bind("bob", "reader")
        acl.bind("bob", "writer")
        acl.check("bob", "storeA", "get")
        acl.check("bob", "storeA", "patch", fields=["shippingCost"])

    def test_unbind_revokes(self, acl):
        acl.bind("alice", "reader")
        acl.unbind("alice", "reader")
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeA", "get")

    def test_bind_unknown_role_rejected(self, acl):
        with pytest.raises(ConfigurationError):
            acl.bind("alice", "nope")

    def test_unknown_verb_in_permission_rejected(self):
        with pytest.raises(ConfigurationError):
            Permission("s", frozenset({"frobnicate"}))

    def test_can_is_non_raising(self, acl):
        acl.bind("alice", "reader")
        assert acl.can("alice", "storeA", "get")
        assert not acl.can("alice", "storeA", "delete")


class TestFieldScope:
    def test_scoped_write_allowed(self, acl):
        acl.bind("intg", "writer")
        acl.check("intg", "storeA", "patch", fields=["shippingCost"])

    def test_out_of_scope_write_denied(self, acl):
        acl.bind("intg", "writer")
        with pytest.raises(AccessDeniedError):
            acl.check("intg", "storeA", "patch", fields=["cost"])

    def test_prefix_covers_subpaths(self, acl):
        acl.bind("intg", "writer")
        acl.check("intg", "storeA", "patch", fields=["quote.price"])

    def test_prefix_does_not_cover_siblings(self, acl):
        acl.bind("intg", "writer")
        with pytest.raises(AccessDeniedError):
            acl.check("intg", "storeA", "patch", fields=["quoted"])

    def test_none_scope_means_all_fields(self, acl):
        acl.add_role(
            Role("owner", [Permission("storeA", frozenset({"patch"}), None)])
        )
        acl.bind("own", "owner")
        acl.check("own", "storeA", "patch", fields=["anything.at.all"])


class TestConditions:
    def test_condition_denies_despite_role(self, acl):
        acl.bind("alice", "reader")
        acl.add_condition(lambda p, s, v, now: now < 10.0)
        acl.check("alice", "storeA", "get", now=5.0)
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeA", "get", now=15.0)

    def test_sleep_hours_policy_shape(self, acl):
        """The paper's example: no Lamp access during sleep hours."""
        acl.add_role(Role("house", [Permission("lamp", frozenset({"patch"}), None)]))
        acl.bind("house", "house")

        def awake(principal, store, verb, now):
            if store == "lamp" and principal == "house":
                return (now % 24.0) < 22.0  # sleep from hour 22 to 24
            return True

        acl.add_condition(awake)
        acl.check("house", "lamp", "patch", now=12.0)
        with pytest.raises(AccessDeniedError):
            acl.check("house", "lamp", "patch", now=23.0)


class TestAudit:
    def test_allowed_and_denied_recorded(self, acl):
        acl.bind("alice", "reader")
        acl.check("alice", "storeA", "get", now=1.0)
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeA", "delete", now=2.0)
        records = acl.audit.records(principal="alice")
        assert [r.allowed for r in records] == [True, False]
        assert records[1].reason

    def test_exchange_matrix(self, acl):
        acl.bind("alice", "reader")
        acl.check("alice", "storeA", "get")
        acl.check("alice", "storeA", "get")
        assert acl.audit.exchange_matrix() == {("alice", "storeA"): 2}

    def test_denials_filter(self, acl):
        acl.bind("alice", "reader")
        acl.check("alice", "storeA", "get")
        with pytest.raises(AccessDeniedError):
            acl.check("alice", "storeA", "delete")
        assert len(acl.audit.denials()) == 1

    def test_capacity_rotation(self):
        log = AuditLog(capacity=100)
        for i in range(150):
            log.record(
                time=float(i), principal="p", store="s", verb="get",
                fields=(), allowed=True, reason="",
            )
        assert len(log) <= 110
        assert log.dropped > 0
