"""Unit tests for the Pub/Sub baseline (broker, codec, client)."""

import pytest

from repro.errors import ConfigurationError
from repro.pubsub import Broker, CodecError, MessageCodec, PubSubClient
from repro.pubsub.broker import topic_matches


@pytest.fixture
def broker(env, net):
    return Broker(env, net)


class TestTopicMatching:
    @pytest.mark.parametrize(
        "pattern,topic,expected",
        [
            ("home/motion", "home/motion", True),
            ("home/motion", "home/lamp", False),
            ("home/+", "home/motion", True),
            ("home/+", "home/motion/1", False),
            ("home/#", "home/motion/1", True),
            ("#", "anything/at/all", True),
            ("home/+/state", "home/lamp/state", True),
            ("home/+/state", "home/lamp/brightness", False),
        ],
    )
    def test_wildcards(self, pattern, topic, expected):
        assert topic_matches(pattern, topic) is expected


class TestBroker:
    def test_publish_subscribe(self, env, broker, call):
        received = []
        broker.subscribe("home/motion", lambda t, m: received.append((t, m)), "house")
        call(broker.publish("home/motion", b"hi", "motion-svc"))
        env.run()
        assert received == [("home/motion", b"hi")]

    def test_multiple_subscribers(self, env, broker, call):
        a, b = [], []
        broker.subscribe("t", lambda *m: a.append(m), "svc-a")
        broker.subscribe("t", lambda *m: b.append(m), "svc-b")
        call(broker.publish("t", b"x", "pub"))
        env.run()
        assert len(a) == 1 and len(b) == 1

    def test_retained_message_replayed_to_late_subscriber(self, env, broker, call):
        call(broker.publish("cfg", b"retained", "pub", retain=True))
        env.run()
        received = []
        broker.subscribe("cfg", lambda t, m: received.append(m), "late")
        env.run()
        assert received == [b"retained"]

    def test_cancelled_subscription_stops(self, env, broker, call):
        received = []
        sub = broker.subscribe("t", lambda t, m: received.append(m), "svc")
        sub.cancel()
        call(broker.publish("t", b"x", "pub"))
        env.run()
        assert received == []

    def test_fifo_per_subscriber(self, env, broker, call):
        received = []
        broker.subscribe("t", lambda t, m: received.append(m), "svc")
        for i in range(10):
            call(broker.publish("t", i, "pub"))
        env.run()
        assert received == list(range(10))

    def test_wildcard_publish_rejected(self, broker):
        with pytest.raises(ConfigurationError):
            broker.publish("a/+", b"x", "pub")

    def test_empty_pattern_rejected(self, broker):
        with pytest.raises(ConfigurationError):
            broker.subscribe("", lambda t, m: None, "svc")

    def test_publish_costs_time(self, env, broker, call):
        start = env.now
        call(broker.publish("t", b"payload", "pub"))
        assert env.now > start


class TestCodec:
    def codec(self, version=1):
        return MessageCodec("motion.Reading", version,
                            {"triggered": bool, "battery": (int, float)})

    def test_roundtrip(self):
        codec = self.codec()
        data = codec.encode({"triggered": True, "battery": 0.9})
        assert codec.decode(data) == {"triggered": True, "battery": 0.9}

    def test_unknown_field_rejected(self):
        with pytest.raises(CodecError):
            self.codec().encode({"trigered": True})

    def test_wrong_type_rejected(self):
        with pytest.raises(CodecError):
            self.codec().encode({"triggered": "yes"})

    def test_version_mismatch_fails_decode(self):
        v1, v2 = self.codec(1), self.codec(2)
        data = v1.encode({"triggered": True})
        with pytest.raises(CodecError, match="version mismatch"):
            v2.decode(data)

    def test_schema_name_mismatch(self):
        other = MessageCodec("lamp.Command", 1, {"brightness": int})
        data = self.codec().encode({"triggered": False})
        with pytest.raises(CodecError, match="schema mismatch"):
            other.decode(data)

    def test_undecodable_bytes(self):
        with pytest.raises(CodecError):
            self.codec().decode(b"\xff\xfenot json")

    def test_compatibility_check(self):
        assert self.codec(1).compatible_with(self.codec(1))
        assert not self.codec(1).compatible_with(self.codec(2))


class TestClient:
    def test_encoded_roundtrip_between_clients(self, env, broker, call):
        codec = MessageCodec("motion.Reading", 1, {"triggered": bool})
        motion = PubSubClient(broker, "motion-svc")
        house = PubSubClient(broker, "house-svc")
        received = []
        house.subscribe("home/motion", lambda t, m: received.append(m), codec=codec)
        call(motion.publish("home/motion", {"triggered": True}, codec=codec))
        env.run()
        assert received == [{"triggered": True}]

    def test_schema_change_breaks_subscriber(self, env, broker, call):
        """The T3 failure mode: publisher upgrades its schema version."""
        v1 = MessageCodec("motion.Reading", 1, {"triggered": bool})
        v2 = MessageCodec("motion.Reading", 2, {"triggered": bool})
        motion = PubSubClient(broker, "motion-svc")
        house = PubSubClient(broker, "house-svc")
        outcomes = []
        house.subscribe("home/motion", lambda t, m: outcomes.append(m), codec=v1)
        call(motion.publish("home/motion", {"triggered": True}, codec=v2))
        env.run()
        assert len(outcomes) == 1 and isinstance(outcomes[0], CodecError)

    def test_disconnect_cancels_all(self, env, broker, call):
        client = PubSubClient(broker, "svc")
        received = []
        client.subscribe("a", lambda t, m: received.append(m))
        client.subscribe("b", lambda t, m: received.append(m))
        client.disconnect()
        call(broker.publish("a", b"x", "pub"))
        call(broker.publish("b", b"y", "pub"))
        env.run()
        assert received == []


class TestSubscriptionBackpressure:
    """Bounded in-flight windows + per-subscription loss callbacks."""

    def test_slow_consumer_sheds_when_window_full(self, env, broker, call):
        from repro.simnet import FixedLatency

        broker.network.set_latency("broker", "slow", FixedLatency(0.05))
        received, lagged = [], []
        sub = broker.subscribe(
            "t", lambda t, m: received.append(m), "slow",
            max_inflight=2, overflow="shed_newest",
            on_lag=lambda topic, n: lagged.append((topic, n)),
        )
        for index in range(6):  # publishes far outpace the 50 ms link
            call(broker.publish("t", bytes([index]), "pub"))
        env.run()
        assert sub.shed > 0
        assert broker.shed == sub.shed
        assert lagged == [("t", 1)] * sub.shed  # every loss is observable
        assert len(received) == 6 - sub.shed
        assert sub.peak_inflight <= 2

    def test_reject_evicts_the_subscription(self, env, broker, call):
        from repro.simnet import FixedLatency

        broker.network.set_latency("broker", "slow", FixedLatency(0.05))
        closed, lagged = [], []
        sub = broker.subscribe(
            "t", lambda t, m: None, "slow",
            max_inflight=1, overflow="reject",
            on_lag=lambda topic, n: lagged.append(topic),
            on_close=lambda: closed.append(True),
        )
        for index in range(4):
            call(broker.publish("t", b"x", "pub"))
        env.run()
        assert not sub.active
        assert closed == [True] and broker.evicted == 1
        assert lagged  # the eviction-triggering message counts as lost

    def test_faulted_link_drop_invokes_on_lag(self, env, broker, call):
        """A lost delivery tells the subscription, not just the broker."""
        lagged = []
        sub = broker.subscribe(
            "t", lambda t, m: None, "gone",
            on_lag=lambda topic, n: lagged.append((topic, n)),
        )
        broker.network.partition("broker", "gone")
        call(broker.publish("t", b"x", "pub"))
        env.run()
        assert broker.dropped == 1
        assert sub.dropped == 1          # the per-subscription account
        assert lagged == [("t", 1)]      # ... and its callback fired
        assert sub.delivered == 0

    def test_block_policy_maps_to_unbounded(self, env, broker):
        sub = broker.subscribe("t", lambda t, m: None, "svc",
                               max_inflight=4, overflow="block")
        assert sub.max_inflight is None  # a broker cannot block publishers

    def test_broker_wide_default_window(self, env, net):
        broker = Broker(env, net, max_inflight=3, overflow="shed_newest")
        sub = broker.subscribe("t", lambda t, m: None, "svc")
        assert sub.max_inflight == 3 and sub.overflow == "shed_newest"
        tuned = broker.subscribe("t", lambda t, m: None, "svc",
                                 max_inflight=9)
        assert tuned.max_inflight == 9
