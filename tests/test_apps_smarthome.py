"""Integration tests for both smart home variants."""

import pytest

from repro.apps.smarthome import (
    MotionTrace,
    SmartHomeKnactorApp,
    SmartHomePubSubApp,
)
from repro.core.policy import deny_during


class TestDevices:
    def test_motion_trace_alternates(self):
        events = MotionTrace(seed=3).events()
        assert events, "trace must not be empty"
        states = [e.triggered for e in events]
        assert all(a != b for a, b in zip(states, states[1:]))

    def test_trace_is_deterministic(self):
        assert MotionTrace(seed=3).events() == MotionTrace(seed=3).events()

    def test_lamp_energy_accumulates_with_brightness(self):
        from repro.apps.smarthome.devices import LampDevice
        from repro.simnet import Environment

        env = Environment()
        reports = []
        lamp = LampDevice(env, on_energy=reports.append, report_interval=10.0)
        lamp.start()
        lamp.set_brightness(100)
        env.run(until=10.5)
        assert reports and reports[0] > 0

    def test_lamp_off_consumes_nothing(self):
        from repro.apps.smarthome.devices import LampDevice
        from repro.simnet import Environment

        env = Environment()
        reports = []
        lamp = LampDevice(env, on_energy=reports.append, report_interval=10.0)
        lamp.start()
        env.run(until=10.5)
        assert reports == [0.0]


class TestPubSubVariant:
    def test_lamp_follows_motion(self):
        app = SmartHomePubSubApp.build(trace=MotionTrace(seed=11))
        app.run(until=130.0)
        assert len(app.lamp.device.changes) > 0
        levels = {level for _t, level in app.lamp.device.changes}
        assert levels == {0, 70}

    def test_house_accumulates_energy(self):
        app = SmartHomePubSubApp.build()
        app.run(until=130.0)
        assert app.house.kwh_total > 0

    def test_no_decode_errors_with_matching_codecs(self):
        app = SmartHomePubSubApp.build()
        app.run(until=130.0)
        assert app.house.decode_errors == 0


class TestKnactorVariant:
    def test_lamp_follows_motion(self):
        app = SmartHomeKnactorApp.build(trace=MotionTrace(seed=11))
        app.run(until=130.0)
        levels = {level for _t, level in app.lamp_device.changes}
        assert levels == {0, 70}

    def test_behaviour_matches_pubsub_variant(self):
        """Same devices, same trace, same outcome -- different plumbing."""
        trace = MotionTrace(seed=11)
        pubsub = SmartHomePubSubApp.build(trace=trace).run(until=130.0)
        knactor = SmartHomeKnactorApp.build(trace=trace).run(until=130.0)
        assert len(pubsub.lamp.device.changes) == len(knactor.lamp_device.changes)
        assert pubsub.house.kwh_total == pytest.approx(
            knactor.house.kwh_total, rel=0.05
        )

    def test_house_only_touches_its_own_stores(self):
        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        for de in (app.object_de, app.log_de):
            matrix = de.audit.exchange_matrix()
            house_stores = {s for (p, s) in matrix if p == "house"}
            assert house_stores <= {"knactor-house", "knactor-house-log"}

    def test_energy_analytics_on_house_log(self):
        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        [report] = app.env.run(until=app.energy_report())
        assert report["total_kwh"] == pytest.approx(app.house.kwh_total, rel=1e-6)
        assert report["motion_events"] > 0

    def test_rollup_gauge_on_house_object_store(self):
        """The Rollup integrator keeps a live totalKwh gauge on the
        House's Object store, derived from its Log store."""
        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        house = app.runtime.handle_of("house")
        config = app.env.run(until=house.get("main"))["data"]
        assert config["totalKwh"] == pytest.approx(app.house.kwh_total,
                                                   rel=1e-6)
        assert config["intensity"] in (0, 70)  # the reconciler's own field

    def test_windowed_energy_analytics(self):
        """Time-bucketed aggregation over the House's own log: the
        Log DE's analytics API composed from existing operators."""
        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        handle = app.runtime.handle_of("house", "log")
        rows = app.env.run(
            until=handle.query(
                ops=[
                    {"op": "filter", "expr": "kwh != None"},
                    {"op": "derive", "field": "window",
                     "expr": "int(_ts // 30)"},
                    {"op": "agg", "aggs": {"kwh": "sum(kwh)"},
                     "by": ["window"]},
                    {"op": "sort", "by": "window"},
                ]
            )
        )
        assert len(rows) >= 3  # 130 s of run, 30 s windows
        total = sum(r["kwh"] for r in rows)
        assert total == pytest.approx(app.house.kwh_total, rel=1e-6)

    def test_rename_pipeline_applied(self):
        """Motion publishes 'triggered'; House's log holds 'motion'."""
        app = SmartHomeKnactorApp.build()
        app.run(until=130.0)
        handle = app.runtime.handle_of("house", "log")
        rows = app.env.run(
            until=handle.query(ops=[{"op": "filter", "expr": "motion == True"}])
        )
        assert rows
        assert all("triggered" not in r for r in rows)

    def test_sleep_hours_policy_blocks_lamp_control(self):
        """The paper's access-control example, enforced at the DE."""
        app = SmartHomeKnactorApp.build(trace=MotionTrace(seed=11))
        # The whole simulation happens during "sleep hours".
        deny_during(
            app.object_de, "control-cast", "knactor-lamp",
            start_hour=0, end_hour=23.9, seconds_per_hour=1e9,
        )
        app.run(until=130.0)
        # Motion was detected but the lamp never changed.
        assert len(app.house.motion_log) > 0
        assert app.lamp_device.changes == []
        assert app.object_de.audit.denials()


class TestVendorSwap:
    def test_replace_lamp_without_touching_house(self):
        """Fig. 2: compose S_A with S_C without modifying S_A."""
        from repro.apps.smarthome.knactors import LAMP_LOG, LAMP_OBJECT, LampReconciler
        from repro.apps.smarthome.devices import LampDevice
        from repro.core import Knactor, StoreBinding

        app = SmartHomeKnactorApp.build(trace=MotionTrace(seed=11))
        # A second lamp from another vendor comes online mid-run.
        new_reconciler = LampReconciler()
        schema2 = LAMP_OBJECT.replace("SmartHome/v1/Lamp", "SmartHome/v1/Lamp2")
        log2 = LAMP_LOG.replace("SmartHome/v1/Lamp", "SmartHome/v1/Lamp2")
        app.runtime.add_knactor(
            Knactor("lamp2", [
                StoreBinding("default", "object", schema2),
                StoreBinding("log", "log", log2),
            ], reconciler=new_reconciler)
        )
        new_device = LampDevice(app.env, on_energy=lambda kwh: None)
        new_reconciler.device = new_device
        app.object_de.grant("control-cast", "knactor-house", role="reader")
        app.object_de.grant("control-cast", "knactor-lamp2", role="integrator")
        # ONE integrator reconfiguration; House's code is untouched.
        app.control_cast.reconfigure(
            spec=(
                "Input:\n"
                "  H: SmartHome/v1/House/knactor-house\n"
                "  L: SmartHome/v1/Lamp2/knactor-lamp2\n"
                "DXG:\n"
                "  L:\n"
                "    brightness: H.intensity\n"
            )
        )
        app.run(until=130.0)
        assert len(new_device.changes) > 0
