"""Shared fixtures for the test suite."""

import pytest

from repro.simnet import Environment, FixedLatency, Network


@pytest.fixture
def env():
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def net(env):
    """A network with a tiny fixed default latency (0.25 ms per hop)."""
    return Network(env, default_latency=FixedLatency(0.00025))


@pytest.fixture
def zero_net(env):
    """A network with zero latency (pure-functional store tests)."""
    return Network(env, default_latency=FixedLatency(0.0))


@pytest.fixture
def call(env):
    """Drive a client-op process (or generator) to completion, return value.

    Usage::

        result = call(client.get("key"))
        result = call(my_generator(env))
    """

    def runner(target):
        if hasattr(target, "send"):
            target = env.process(target)
        return env.run(until=target)

    return runner
