"""Store failover: watches drop; reconcilers and integrators resync."""

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_REDIS
from repro.store import ApiServer, ApiServerClient


class TestWatchFailover:
    def test_fail_over_drops_watches(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        events = []
        client.watch(events.append)
        call(client.create("k1", {}))
        env.run()
        assert server.fail_over() == 1
        call(client.create("k2", {}))
        env.run()
        assert [e.key for e in events] == ["k1"]  # nothing after the drop

    def test_on_close_fires_after_failover(self, env, zero_net, call):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        closed = []
        client.watch(lambda e: None, on_close=lambda: closed.append(env.now))
        server.fail_over()
        env.run()
        assert len(closed) == 1

    def test_cancelled_watch_does_not_fire_on_close(self, env, zero_net):
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        closed = []
        watch = client.watch(lambda e: None, on_close=lambda: closed.append(1))
        watch.cancel()
        server.fail_over()
        env.run()
        assert closed == []

    def test_rewatch_with_replay_recovers_missed_events(self, env, zero_net, call):
        """The full informer recovery: remember the last seen revision,
        re-watch from it after failover, miss nothing."""
        server = ApiServer(env, zero_net, watch_overhead=0.0)
        client = ApiServerClient(server, "c")
        seen = []
        last_revision = [0]

        def handler(event):
            seen.append(event.key)
            last_revision[0] = event.revision

        def reconnect():
            client.watch(handler, from_revision=last_revision[0],
                         on_close=reconnect)

        client.watch(handler, on_close=reconnect)
        call(client.create("k1", {}))
        env.run()
        server.fail_over()
        # These commits happen while the watcher is disconnected...
        call(client.create("k2", {}))
        call(client.create("k3", {}))
        env.run()
        # ...but replay-from-revision delivers them on reconnect.
        assert seen == ["k1", "k2", "k3"]


class TestSyncFailover:
    def test_sync_catches_up_after_log_failover(self, env, zero_net):
        from repro.apps.smarthome import SmartHomeKnactorApp, MotionTrace

        app = SmartHomeKnactorApp.build(trace=MotionTrace(seed=11))
        app.run(until=30.0)
        seen_before = len(app.house.motion_log)
        # The log backend fails over: every Sync subscription drops.
        dropped = app.log_de.backend.fail_over()
        assert dropped > 0
        app.run(until=130.0)
        # Motion kept sensing through the outage; the Sync re-subscribed
        # and caught up from its cursor -- the House missed nothing.
        assert len(app.house.motion_log) > seen_before
        reference = SmartHomeKnactorApp.build(trace=MotionTrace(seed=11))
        reference.run(until=130.0)
        assert len(app.house.motion_log) == len(reference.house.motion_log)


class TestAppRecovery:
    def test_retail_app_survives_backend_failover(self):
        """Orders placed during the watch outage still fulfil: every
        component re-watches and resyncs."""
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        workload = OrderWorkload(seed=7)

        # One order completes normally.
        key1, data1 = workload.next_order()
        app.env.run(until=app.place_order(key1, data1))
        app.run_until_quiet(max_seconds=30.0)
        assert app.env.run(until=app.order(key1))["data"]["status"] == "fulfilled"

        # Failover drops every watch in the system.
        dropped = app.de.backend.fail_over()
        assert dropped > 0

        # An order placed right after the failover...
        key2, data2 = workload.next_order()
        app.env.run(until=app.place_order(key2, data2))
        app.run_until_quiet(max_seconds=60.0)
        # ...is still fulfilled end-to-end.
        order = app.env.run(until=app.order(key2))["data"]
        assert order["status"] == "fulfilled"
        assert order["trackingID"].startswith("trk-")

    def test_reconciler_resyncs_pending_work_after_failover(self, env, zero_net):
        """An object created DURING the outage is picked up by re-list."""
        from repro.core import Knactor, KnactorRuntime, Reconciler, StoreBinding
        from repro.exchange import ObjectDE

        runtime = KnactorRuntime(env, network=zero_net)
        backend = ApiServer(env, zero_net, watch_overhead=0.0)
        de = ObjectDE(env, backend)
        runtime.add_exchange("object", de)

        class MarkSeen(Reconciler):
            def __init__(self):
                super().__init__("seen")
                self.keys = set()

            def reconcile(self, ctx, key, obj):
                if obj is not None:
                    self.keys.add(key)

        rec = MarkSeen()
        runtime.add_knactor(Knactor("svc", [StoreBinding(
            "default", "object", "schema: A/v1/S/T\nv: number\n")],
            reconciler=rec))
        runtime.start()
        env.run(until=env.now + 0.1)

        # Kill watches, then write while nobody is watching.
        backend.fail_over()
        owner_client = ApiServerClient(backend, "svc")
        env.run(until=owner_client.create("knactor-svc/orphan", {"v": 1}))
        env.run(until=env.now + 1.0)
        # The re-established watch + re-list found the orphan.
        assert "orphan" in rec.keys
