"""Unit tests for the RPC baseline (IDL, codegen, channel)."""

import pytest

from repro.errors import IDLError, RPCStatusError
from repro.rpc import (
    RPCChannel,
    RPCServer,
    build_client_class,
    generate_client_stub,
    parse_idl,
)

SHIPPING_PROTO = """\
syntax = "proto3";
package onlineretail.shipping.v1;

message Item {
  string name = 1;
}

message ShipOrderRequest {
  repeated Item items = 1;
  string address = 2;
  string method = 3;
}

message ShipOrderResponse {
  string tracking_id = 1;
  double shipping_cost = 2;
  string currency = 3;
}

service ShippingService {
  rpc ShipOrder(ShipOrderRequest) returns (ShipOrderResponse);
}
"""


@pytest.fixture
def idl():
    return parse_idl(SHIPPING_PROTO)


class TestIDLParsing:
    def test_package_and_syntax(self, idl):
        assert idl.package == "onlineretail.shipping.v1"
        assert idl.syntax == "proto3"

    def test_messages(self, idl):
        request = idl.message("ShipOrderRequest")
        assert request.field_names() == ["items", "address", "method"]
        assert request.field_by_name("items").repeated
        assert request.field_by_name("items").type == "Item"

    def test_service_methods(self, idl):
        method = idl.service("ShippingService").method("ShipOrder")
        assert (method.request, method.response) == (
            "ShipOrderRequest",
            "ShipOrderResponse",
        )

    def test_comments_ignored(self):
        idl = parse_idl("// header\nmessage M {\n  string x = 1; // trailing\n}\n")
        assert idl.message("M").field_names() == ["x"]

    @pytest.mark.parametrize(
        "bad",
        [
            "message M {\n  string x = 1;\n",  # unterminated
            "message M {\n  stringx1;\n}\n",  # bad field
            "message M {\n  string x = 1;\n  string y = 1;\n}\n",  # dup tag
            "message M {\n  Unknown x = 1;\n}\n",  # unknown type
            "service S {\n  rpc F(Nope) returns (Nope);\n}\n",  # unknown msg
            "floating line\n",
            "message M {\n  string x = 1;\n}\nmessage M {\n  string y = 1;\n}\n",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(IDLError):
            parse_idl(bad)


class TestPayloadValidation:
    def test_valid_payload(self, idl):
        idl.validate_payload(
            "ShipOrderRequest",
            {"items": [{"name": "mug"}], "address": "12 Elm St"},
        )

    def test_missing_fields_default(self, idl):
        idl.validate_payload("ShipOrderRequest", {})

    def test_unknown_field_rejected(self, idl):
        with pytest.raises(IDLError):
            idl.validate_payload("ShipOrderRequest", {"addr": "typo"})

    def test_wrong_type_rejected(self, idl):
        with pytest.raises(IDLError):
            idl.validate_payload("ShipOrderRequest", {"address": 42})

    def test_repeated_needs_list(self, idl):
        with pytest.raises(IDLError):
            idl.validate_payload("ShipOrderRequest", {"items": {"name": "x"}})

    def test_nested_message_checked(self, idl):
        with pytest.raises(IDLError):
            idl.validate_payload("ShipOrderRequest", {"items": [{"nam": "typo"}]})

    def test_bool_is_not_double(self, idl):
        with pytest.raises(IDLError):
            idl.validate_payload("ShipOrderResponse", {"shipping_cost": True})


class TestCodegen:
    def test_stub_source_shape(self, idl):
        source = generate_client_stub(idl)
        assert "class ShippingServiceStub:" in source
        assert "def ship_order(self, request, deadline=None):" in source
        assert "def make_ship_order_request(" in source
        assert "DO NOT EDIT" in source

    def test_generated_source_compiles(self, idl):
        compile(generate_client_stub(idl), "<stub>", "exec")

    def test_runtime_stub_validates_requests(self, env, net, idl):
        server = RPCServer(env, net, "shipping")
        channel = RPCChannel(env, server, "checkout")
        stub_class = build_client_class(idl, "ShippingService")
        stub = stub_class(channel)
        with pytest.raises(IDLError):
            stub.ship_order({"bogus_field": 1})

    def test_no_services_rejected(self):
        idl = parse_idl("message M {\n  string x = 1;\n}\n")
        with pytest.raises(IDLError):
            generate_client_stub(idl)


class TestChannel:
    def make_server(self, env, net, idl, service_time=0.0):
        server = RPCServer(env, net, "shipping")

        def handler(request):
            if service_time:
                yield env.timeout(service_time)
            return {"tracking_id": "trk-1", "shipping_cost": 4.5}

        server.register("ShippingService", "ShipOrder", handler, idl=idl)
        return server

    def test_roundtrip(self, env, net, idl, call):
        server = self.make_server(env, net, idl)
        channel = RPCChannel(env, server, "checkout")
        response = call(
            channel.call("ShippingService", "ShipOrder", {"address": "x"})
        )
        assert response["tracking_id"] == "trk-1"
        assert server.calls_served == 1 and channel.calls_made == 1

    def test_latency_includes_network_and_service_time(self, env, net, idl, call):
        server = self.make_server(env, net, idl, service_time=0.446)
        channel = RPCChannel(env, server, "checkout")
        start = env.now
        call(channel.call("ShippingService", "ShipOrder", {}))
        elapsed = env.now - start
        assert elapsed >= 0.446 + 2 * 0.00025

    def test_unimplemented_status(self, env, net, idl, call):
        server = RPCServer(env, net, "shipping")
        channel = RPCChannel(env, server, "checkout")
        with pytest.raises(RPCStatusError) as excinfo:
            call(channel.call("ShippingService", "ShipOrder", {}))
        assert excinfo.value.code == "UNIMPLEMENTED"

    def test_invalid_argument_status(self, env, net, idl, call):
        server = self.make_server(env, net, idl)
        channel = RPCChannel(env, server, "checkout")
        with pytest.raises(RPCStatusError) as excinfo:
            call(channel.call("ShippingService", "ShipOrder", {"bogus": 1}))
        assert excinfo.value.code == "INVALID_ARGUMENT"

    def test_handler_error_maps_to_status(self, env, net, idl, call):
        server = RPCServer(env, net, "shipping")

        def handler(request):
            raise RPCStatusError("NOT_FOUND", "no such order")

        server.register("ShippingService", "ShipOrder", handler, idl=idl)
        channel = RPCChannel(env, server, "checkout")
        with pytest.raises(RPCStatusError) as excinfo:
            call(channel.call("ShippingService", "ShipOrder", {}))
        assert excinfo.value.code == "NOT_FOUND"

    def test_bad_response_is_internal_error(self, env, net, idl, call):
        server = RPCServer(env, net, "shipping")
        server.register(
            "ShippingService", "ShipOrder",
            lambda request: {"not_a_field": 1}, idl=idl,
        )
        channel = RPCChannel(env, server, "checkout")
        with pytest.raises(RPCStatusError) as excinfo:
            call(channel.call("ShippingService", "ShipOrder", {}))
        assert excinfo.value.code == "INTERNAL"

    def test_deadline_exceeded(self, env, net, idl, call):
        server = self.make_server(env, net, idl, service_time=10.0)
        channel = RPCChannel(env, server, "checkout")
        with pytest.raises(RPCStatusError) as excinfo:
            call(channel.call("ShippingService", "ShipOrder", {}, deadline=0.5))
        assert excinfo.value.code == "DEADLINE_EXCEEDED"
        assert env.now < 1.0


class TestAcceptQueueBackpressure:
    """Bounded worker pools + accept queues (repro.flow)."""

    def make_busy_server(self, env, net, idl, **server_kwargs):
        server = RPCServer(env, net, "shipping", **server_kwargs)

        def handler(request):
            yield env.timeout(1.0)
            return {"tracking_id": "trk-1", "shipping_cost": 4.5}

        server.register("ShippingService", "ShipOrder", handler, idl=idl)
        return server

    def burst(self, env, channel, count):
        failures = []

        def one(env):
            try:
                yield channel.call("ShippingService", "ShipOrder", {})
            except RPCStatusError as error:
                failures.append(error.code)

        procs = [env.process(one(env)) for _ in range(count)]
        env.run(until=env.all_of(procs))
        return failures

    def test_overflow_rejects_with_resource_exhausted(self, env, net, idl):
        server = self.make_busy_server(
            env, net, idl, workers=1, accept_queue=1, overflow="reject",
        )
        channel = RPCChannel(env, server, "checkout")
        failures = self.burst(env, channel, 4)
        # One running + one queued; the other two bounce off the door.
        assert failures == ["RESOURCE_EXHAUSTED", "RESOURCE_EXHAUSTED"]
        assert server.rejected_overload == 2
        assert server.calls_served == 2
        assert server.peak_queued <= 1

    def test_resource_exhausted_is_retryable(self):
        from repro.faults.retry import default_retryable
        from repro.rpc.channel import RESOURCE_EXHAUSTED, RETRYABLE_CODES

        assert RESOURCE_EXHAUSTED in RETRYABLE_CODES
        assert default_retryable(
            RPCStatusError(RESOURCE_EXHAUSTED, "accept queue full"))

    def test_block_policy_parks_callers(self, env, net, idl):
        server = self.make_busy_server(
            env, net, idl, workers=1, accept_queue=1, overflow="block",
        )
        channel = RPCChannel(env, server, "checkout")
        failures = self.burst(env, channel, 4)
        assert failures == []  # everyone waits; nobody is turned away
        assert server.calls_served == 4
        assert env.now >= 4.0  # strictly serialized by the single worker

    def test_unbounded_without_workers(self, env, net, idl):
        server = self.make_busy_server(env, net, idl)
        channel = RPCChannel(env, server, "checkout")
        failures = self.burst(env, channel, 6)
        assert failures == []
        assert env.now < 2.0  # fully concurrent: no pool to serialize
        assert server.rejected_overload == 0
