"""Tests for the observability plane: causal tracing + metrics registry."""

import json

import pytest

from repro.apps.retail.knactor_app import RetailKnactorApp
from repro.apps.retail.workload import OrderWorkload
from repro.core.optimizer import K_REDIS
from repro.errors import ConfigurationError
from repro.obs import CausalTracer, ObsPlane, Registry
from repro.obs.context import (
    bind_generator,
    current_context,
    span_process,
    use,
)
from repro.simnet import Environment, TraceError, Tracer


# -- context propagation ------------------------------------------------------


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None

    def test_use_scopes_to_the_block(self):
        env = Environment()
        ctx = CausalTracer(env).new_trace("t", service="svc")
        with use(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_use_nests(self):
        env = Environment()
        tracer = CausalTracer(env)
        outer = tracer.new_trace("outer", service="svc")
        inner = tracer.start_span("inner", service="svc", parent=outer)
        with use(outer):
            with use(inner):
                assert current_context() is inner
            assert current_context() is outer

    def test_bind_generator_arms_each_slice(self):
        env = Environment()
        ctx = CausalTracer(env).new_trace("t", service="svc")
        seen = []

        def task():
            seen.append(current_context())
            yield "step"
            seen.append(current_context())
            return "done"

        wrapped = bind_generator(task(), ctx)
        assert next(wrapped) == "step"
        # Between resumptions the ambient slot is NOT this task's context.
        assert current_context() is None
        with pytest.raises(StopIteration) as stop:
            wrapped.send(None)
        assert stop.value.value == "done"
        assert seen == [ctx, ctx]

    def test_interleaved_generators_stay_isolated(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx_a = tracer.new_trace("a", service="svc")
        ctx_b = tracer.new_trace("b", service="svc")
        seen = {"a": [], "b": []}

        def task(label):
            for _ in range(2):
                seen[label].append(current_context())
                yield label

        gen_a = bind_generator(task("a"), ctx_a)
        gen_b = bind_generator(task("b"), ctx_b)
        # Interleave the two, as the event loop would.
        next(gen_a), next(gen_b), gen_a.send(None), gen_b.send(None)
        assert seen["a"] == [ctx_a, ctx_a]
        assert seen["b"] == [ctx_b, ctx_b]

    def test_bind_generator_forwards_thrown_exceptions(self):
        env = Environment()
        ctx = CausalTracer(env).new_trace("t", service="svc")
        caught = []

        def task():
            try:
                yield "step"
            except RuntimeError as exc:
                caught.append((current_context(), exc))
            return "recovered"

        wrapped = bind_generator(task(), ctx)
        next(wrapped)
        with pytest.raises(StopIteration) as stop:
            wrapped.throw(RuntimeError("boom"))
        assert stop.value.value == "recovered"
        # The except clause ran with the bound context ambient.
        assert caught[0][0] is ctx

    def test_span_process_closes_with_outcome(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx = tracer.new_trace("work", service="svc")

        def task():
            yield "step"

        wrapped = span_process(task(), ctx)
        next(wrapped)
        with pytest.raises(StopIteration):
            wrapped.send(None)
        assert tracer.spans[ctx.span_id].attrs["outcome"] == "ok"
        assert tracer.spans[ctx.span_id].end is not None

    def test_span_process_records_failure_outcome(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx = tracer.new_trace("work", service="svc")

        def task():
            yield "step"
            raise ValueError("bad")

        wrapped = span_process(task(), ctx)
        next(wrapped)
        with pytest.raises(ValueError):
            wrapped.send(None)
        assert tracer.spans[ctx.span_id].attrs["outcome"] == "ValueError"


# -- the causal tracer --------------------------------------------------------


class TestCausalTracer:
    def test_span_ids_are_deterministic_counters(self):
        env = Environment()
        tracer = CausalTracer(env)
        root = tracer.new_trace("r", service="svc")
        child = tracer.start_span("c", service="svc", parent=root)
        assert root.trace_id == "t000001"
        assert root.span_id == "s000002"
        assert child.span_id == "s000003"
        assert child.trace_id == root.trace_id

    def test_baggage_inherits_and_merges(self):
        env = Environment()
        tracer = CausalTracer(env)
        root = tracer.new_trace("r", service="svc", baggage={"order": "o1"})
        child = tracer.start_span("c", service="svc", parent=root,
                                  baggage={"step": "ship"})
        assert child.baggage == {"order": "o1", "step": "ship"}
        assert root.baggage == {"order": "o1"}  # parent untouched

    def test_end_span_is_idempotent(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx = tracer.new_trace("r", service="svc")
        tracer.end_span(ctx, outcome="ok")
        first_end = tracer.spans[ctx.span_id].end
        env.run(until=1.0)
        tracer.end_span(ctx, outcome="late")
        assert tracer.spans[ctx.span_id].end == first_end
        # Later attrs still merge (the first *end time* wins, not attrs).
        assert tracer.spans[ctx.span_id].attrs["outcome"] == "late"

    def test_dag_and_children(self):
        env = Environment()
        tracer = CausalTracer(env)
        root = tracer.new_trace("r", service="svc")
        a = tracer.start_span("a", service="svc", parent=root)
        b = tracer.start_span("b", service="svc", parent=root)
        leaf = tracer.start_span("leaf", service="svc", parent=a)
        dag = tracer.dag(root.trace_id)
        assert dag[root.span_id] == [a.span_id, b.span_id]
        assert dag[a.span_id] == [leaf.span_id]
        assert [s.span_id for s in tracer.children(root.span_id)] == \
            [a.span_id, b.span_id]
        assert [s.span_id for s in tracer.roots(root.trace_id)] == \
            [root.span_id]

    def test_find_trace_by_baggage(self):
        env = Environment()
        tracer = CausalTracer(env)
        tracer.new_trace("r1", service="svc", baggage={"order": "o1"})
        t2 = tracer.new_trace("r2", service="svc", baggage={"order": "o2"})
        assert tracer.find_trace(order="o2") == t2.trace_id
        assert tracer.find_trace(order="nope") is None

    def test_point_span_has_zero_duration(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx = tracer.point("commit", service="store", store="s1")
        span = tracer.spans[ctx.span_id]
        assert span.duration == 0
        assert span.attrs["store"] == "s1"

    def test_annotate_attaches_events(self):
        env = Environment()
        tracer = CausalTracer(env)
        ctx = tracer.new_trace("r", service="svc")
        tracer.annotate(ctx, "retry", attempt=1)
        [(_, name, attrs)] = tracer.spans[ctx.span_id].events
        assert name == "retry" and attrs == {"attempt": 1}

    def test_critical_path_follows_latest_leaf(self):
        env = Environment()
        tracer = CausalTracer(env)
        root = tracer.new_trace("r", service="svc")
        fast = tracer.start_span("fast", service="svc", parent=root)
        tracer.end_span(fast)
        env.run(until=2.0)
        slow = tracer.start_span("slow", service="svc", parent=root)
        tracer.end_span(slow)
        tracer.end_span(root)
        path = [s.name for s in tracer.critical_path(root.trace_id)]
        assert path == ["r", "slow"]

    def test_chrome_trace_entries_are_well_formed(self):
        env = Environment()
        tracer = CausalTracer(env)
        root = tracer.new_trace("r", service="svc", baggage={"order": "o1"})
        tracer.end_span(root)
        [entry] = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert entry["ph"] == "X"
        assert entry["pid"] == "svc"
        assert entry["tid"] == root.trace_id
        assert entry["args"]["baggage"] == {"order": "o1"}


# -- the metrics registry -----------------------------------------------------


class TestRegistry:
    def test_counter_accumulates(self):
        reg = Registry(Environment())
        reg.counter("ops", store="a").inc()
        reg.counter("ops", store="a").inc(2)
        reg.counter("ops", store="b").inc()
        series = reg.snapshot()["metrics"]["ops"]["series"]
        assert series == {"store=a": 3.0, "store=b": 1.0}

    def test_counter_rejects_decrease(self):
        reg = Registry(Environment())
        with pytest.raises(ConfigurationError):
            reg.counter("ops").inc(-1)

    def test_gauge_sets_level(self):
        reg = Registry(Environment())
        reg.gauge("depth").set(5)
        reg.gauge("depth").set(2)
        assert reg.snapshot()["metrics"]["depth"]["series"][""] == 2.0

    def test_histogram_summary(self):
        reg = Registry(Environment())
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("lag").observe(v)
        summary = reg.snapshot()["metrics"]["lag"]["series"][""]
        assert summary["count"] == 4
        assert summary["sum"] == 10.0
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == 2.5

    def test_histogram_decimates_past_cap(self):
        from repro.obs.registry import _HISTOGRAM_CAP

        reg = Registry(Environment())
        handle = reg.histogram("big")
        for v in range(_HISTOGRAM_CAP + 10):
            handle.observe(float(v))
        summary = reg.snapshot()["metrics"]["big"]["series"][""]
        # Exact count survives decimation; the reservoir is bounded.
        assert summary["count"] == _HISTOGRAM_CAP + 10
        assert len(handle._series.values) <= _HISTOGRAM_CAP

    def test_kind_mismatch_is_a_configuration_error(self):
        reg = Registry(Environment())
        reg.counter("ops").inc()
        with pytest.raises(ConfigurationError):
            reg.gauge("ops")
        with pytest.raises(ConfigurationError):
            reg.counter("ops").set(1)

    def test_collector_scrapes_at_snapshot(self):
        reg = Registry(Environment())
        source = {"total": 7}
        reg.register_collector(
            lambda r: r.counter("scraped").set_total(source["total"]))
        assert reg.snapshot()["metrics"]["scraped"]["series"][""] == 7.0
        source["total"] = 9
        assert reg.snapshot()["metrics"]["scraped"]["series"][""] == 9.0

    def test_window_delta_rates_over_sim_time(self):
        env = Environment()
        reg = Registry(env)
        reg.counter("ops").inc(5)
        window = reg.window()
        env.run(until=2.0)
        reg.counter("ops").inc(6)
        delta = window.delta()
        assert delta["interval"] == 2.0
        assert delta["metrics"]["ops"][""] == {"increase": 6.0, "rate": 3.0}


# -- the latency tracer's protocol error (satellite) --------------------------


class TestTracerEndError:
    def test_end_without_begin_raises_trace_error(self):
        tracer = Tracer(Environment())
        tracer.begin("cast", "exchange", key="c1")
        with pytest.raises(TraceError) as err:
            tracer.end("cast", "exchange", key="c2")
        message = str(err.value)
        assert "cast/exchange" in message and "c2" in message
        # The message lists what IS open, to make the mismatch findable.
        assert "c1" in message

    def test_double_end_raises_trace_error(self):
        tracer = Tracer(Environment())
        tracer.begin("rpc", "call")
        tracer.end("rpc", "call")
        with pytest.raises(TraceError):
            tracer.end("rpc", "call")

    def test_open_span_has_none_end(self):
        tracer = Tracer(Environment())
        span = tracer.begin("rpc", "call")
        assert span.end is None
        with pytest.raises(ValueError):
            span.duration


# -- the acceptance run: one order's cross-service causal DAG -----------------


@pytest.fixture(scope="module")
def traced_app():
    app = RetailKnactorApp.build(profile=K_REDIS, with_notify=True, obs=True)
    workload = OrderWorkload(seed=7)
    key, data = workload.next_order()
    app.env.run(until=app.place_order(key, data))
    app.run_until_quiet(max_seconds=60.0)
    return app, key


class TestCausalDagAcceptance:
    def test_trace_found_by_order_baggage(self, traced_app):
        app, key = traced_app
        assert app.runtime.obs.causal.find_trace(order=key) is not None

    def test_trace_spans_three_services_and_two_stores(self, traced_app):
        app, key = traced_app
        causal = app.runtime.obs.causal
        trace_id = causal.find_trace(order=key)
        services = causal.services(trace_id)
        stores = causal.stores(trace_id)
        assert len(services) >= 3, f"only {services}"
        assert len(stores) >= 2, f"only {stores}"
        assert "knactor-checkout" in stores
        assert "knactor-shipping" in stores

    def test_checkout_write_flows_through_exchange_to_shipping(
            self, traced_app):
        """The paper's pitch, as a DAG walk: the checkout write is an
        ancestor of the integrator exchange, which parents the shipping
        write -- causality across services recovered purely from data."""
        app, key = traced_app
        causal = app.runtime.obs.causal
        trace_id = causal.find_trace(order=key)
        spans = causal.spans_of(trace_id)
        shipping_writes = [
            s for s in spans
            if s.name == "write" and s.attrs.get("store") == "knactor-shipping"
        ]
        assert shipping_writes, "no shipping write recorded in the trace"

        def ancestors(span):
            while span.parent_id is not None:
                span = causal.spans[span.parent_id]
                yield span

        chain = list(ancestors(shipping_writes[0]))
        names = [(s.name, s.service) for s in chain]
        assert ("exchange", "retail-cast") in names, names
        assert any(
            s.name == "write" and s.attrs.get("store") == "knactor-checkout"
            for s in chain
        ), names
        assert chain[-1].name == "place-order"

    def test_root_span_closed_ok(self, traced_app):
        app, key = traced_app
        causal = app.runtime.obs.causal
        [root] = causal.roots(causal.find_trace(order=key))
        assert root.end is not None
        assert root.attrs["outcome"] == "ok"

    def test_chrome_export_is_valid_trace_event_json(self, traced_app):
        app, _key = traced_app
        entries = app.runtime.obs.causal.to_chrome_trace()
        entries += app.tracer.to_chrome_trace()
        data = json.loads(json.dumps({"traceEvents": entries}))
        assert len(data["traceEvents"]) > 10
        for entry in data["traceEvents"]:
            assert entry["ph"] in ("X", "i")
            assert isinstance(entry["ts"], (int, float))
            if entry["ph"] == "X":
                assert entry["dur"] >= 0

    def test_registry_scraped_runtime_counters(self, traced_app):
        app, _key = traced_app
        metrics = app.runtime.obs.registry.snapshot()["metrics"]
        ops = metrics["store_ops_total"]["series"]
        assert sum(ops.values()) == sum(app.de.backend.op_counts.values())
        assert metrics["exchanges_total"]["series"]["integrator=retail-cast"] \
            == app.cast.exchanges_run
        lag = metrics["watch_lag_seconds"]["series"]
        assert sum(s["count"] for s in lag.values()) > 0

    def test_dashboard_renders_every_metric(self, traced_app):
        app, _key = traced_app
        dashboard = app.runtime.obs.dashboard()
        assert "store_ops_total" in dashboard
        assert "traces 1" in dashboard

    def test_request_report_names_the_critical_path(self, traced_app):
        app, key = traced_app
        causal = app.runtime.obs.causal
        report = causal.request_report(causal.find_trace(order=key))
        assert "critical path:" in report
        assert "place-order" in report
        assert key in report  # baggage surfaces in the header

    def test_obs_off_leaves_no_plane(self):
        app = RetailKnactorApp.build(profile=K_REDIS, with_notify=False)
        assert app.runtime.obs is None
        assert app.tracer.obs is None
