"""The consistent-hash ring: determinism, locality, and the Topology spec."""

import pytest

from repro.errors import ConfigurationError
from repro.store import AutoscalePolicy, ShardRing, Topology, key_in_ranges
from repro.store.ring import hash_key

KEYS = [f"key/{i}" for i in range(4000)]


class TestDeterminism:
    def test_same_seed_rings_are_bit_identical(self):
        a = ShardRing(seed=5, members=range(3))
        b = ShardRing(seed=5, members=range(3))
        assert a.fingerprint() == b.fingerprint()
        assert all(a.owner_of(k) == b.owner_of(k) for k in KEYS)

    def test_different_seeds_place_differently(self):
        a = ShardRing(seed=0, members=range(3))
        b = ShardRing(seed=1, members=range(3))
        assert a.fingerprint() != b.fingerprint()
        assert any(a.owner_of(k) != b.owner_of(k) for k in KEYS)

    def test_key_hash_is_seed_independent(self):
        # Key placement comes from the key's own digest; the seed only
        # moves the members' vnodes.  (And never Python's randomized
        # ``hash()``: fingerprints must survive interpreter restarts.)
        assert hash_key("order/1") == hash_key("order/1")
        assert hash_key("order/1") != hash_key("order/2")

    def test_grown_ring_matches_fresh_ring(self):
        grown = ShardRing(seed=0, members=range(2))
        grown.add(2)
        assert grown.fingerprint() == ShardRing.for_count(3).fingerprint()

    def test_version_counts_membership_changes(self):
        ring = ShardRing(seed=0, members=range(2))
        assert ring.version == 2
        ring.add(2)
        ring.remove(2)
        assert ring.version == 4


class TestLocality:
    def test_unmoved_keys_keep_their_owner_on_add(self):
        ring = ShardRing(seed=0, members=range(4))
        before = {k: ring.owner_of(k) for k in KEYS}
        moved_ranges = [(lo, hi) for lo, hi, _src in ring.preview_add(4)]
        ring.add(4)
        for key in KEYS:
            if key_in_ranges(key, moved_ranges):
                assert ring.owner_of(key) == 4
            else:
                assert ring.owner_of(key) == before[key]

    def test_unmoved_keys_keep_their_owner_on_remove(self):
        ring = ShardRing(seed=0, members=range(4))
        before = {k: ring.owner_of(k) for k in KEYS}
        ring.remove(3)
        for key in KEYS:
            if before[key] != 3:
                assert ring.owner_of(key) == before[key]

    def test_moved_fraction_is_about_one_over_n(self):
        ring = ShardRing(seed=0, members=range(4))
        before = {k: ring.owner_of(k) for k in KEYS}
        ring.add(4)
        moved = sum(before[k] != ring.owner_of(k) for k in KEYS)
        fraction = moved / len(KEYS)
        # Expectation K/N = 1/5; vnode placement keeps it in the
        # neighborhood (a modulo router would move ~4/5 instead).
        assert 0.10 < fraction < 0.35

    def test_preview_matches_actual_movement(self):
        ring = ShardRing(seed=3, members=range(3))
        before = {k: ring.owner_of(k) for k in KEYS}
        moved_ranges = [(lo, hi) for lo, hi, _src in ring.preview_add(3000)]
        ring.add(3000)
        for key in KEYS:
            assert (before[key] != ring.owner_of(key)) == key_in_ranges(
                key, moved_ranges
            )

    def test_preview_remove_names_the_inheritors(self):
        ring = ShardRing(seed=0, members=range(3))
        before = {k: ring.owner_of(k) for k in KEYS}
        moved = ring.preview_remove(2)
        ring.remove(2)
        for lo, hi, dest in moved:
            assert dest != 2
        for key in KEYS:
            if before[key] == 2:
                assert ring.owner_of(key) != 2


class TestRingEdges:
    def test_single_member_owns_everything(self):
        ring = ShardRing(seed=0, members=[7])
        assert all(ring.owner_of(k) == 7 for k in KEYS[:100])

    def test_cannot_remove_last_member(self):
        ring = ShardRing(seed=0, members=[0])
        with pytest.raises(ConfigurationError):
            ring.preview_remove(0)

    def test_duplicate_member_rejected(self):
        ring = ShardRing(seed=0, members=range(2))
        with pytest.raises(ConfigurationError):
            ring.add(1)


class TestTopologySpec:
    def test_defaults(self):
        topology = Topology()
        assert topology.shards == 1
        assert topology.min_shards == 1
        assert topology.effective_max_shards >= topology.shards

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            Topology(shards=0)
        with pytest.raises(ConfigurationError):
            Topology(shards=2, min_shards=3)
        with pytest.raises(ConfigurationError):
            Topology(shards=9, max_shards=4)

    def test_build_ring_uses_seed_and_vnodes(self):
        a = Topology(shards=3, seed=11).build_ring(members=range(3))
        b = Topology(shards=3, seed=11).build_ring(members=range(3))
        assert a.fingerprint() == b.fingerprint()

    def test_autoscale_policy_validated(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(target_queue_depth=0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(interval=0)
