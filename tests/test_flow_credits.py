"""Credit-based watch flow control (repro.flow + repro.store.base).

A watch opened with ``credits=N`` carries an HTTP/2-style window: the
server spends one credit per event sent and pauses fan-out when the
window empties; the client grants credits back after dispatching each
delivery.  While paused, Object stores coalesce newest-wins per key and
Log stores queue contiguously; a paused buffer past ``max_paused``
applies the stream's overflow policy (``reject`` = break + resync).
"""

import pytest

from repro.simnet import FixedLatency
from repro.store import ApiServer, ApiServerClient, LogLake, LogLakeClient
from repro.store.sharded import ShardedStore, ShardedStoreClient

SLOW = FixedLatency(0.05)  # watcher link; grant round trip = 100 ms


@pytest.fixture
def server(env, net):
    return ApiServer(env, net, location="store", watch_overhead=0.0)


@pytest.fixture
def owner(env, server):
    return ApiServerClient(server, location="store")


def slow_watcher(env, net, server, **watch_kwargs):
    """A watcher whose credit grants ride a WAN-grade link."""
    net.set_latency(server.location, "watcher", SLOW)
    client = ApiServerClient(server, location="watcher")
    seen = []
    watch = client.watch(lambda e: seen.append(e), **watch_kwargs)
    return watch, seen


class TestCreditAccounting:
    def test_window_spends_then_refills_on_grant(self, env, net, server,
                                                 owner, call):
        watch, seen = slow_watcher(env, net, server, credits=2)
        assert watch.credits == 2 and watch._credits_remaining == 2
        call(owner.create("k1", {"v": 1}))
        env.run()
        assert [e.key for e in seen] == ["k1"]
        # The grant made the round trip: the window is whole again.
        assert watch._credits_remaining == 2
        assert server.watch_credit_grants >= 1

    def test_no_credits_means_no_accounting(self, env, net, server, owner,
                                            call):
        watch, seen = slow_watcher(env, net, server)
        assert watch.credits is None and watch._credits_remaining is None
        for index in range(8):
            call(owner.create(f"k{index}", {"v": index}))
        env.run()
        assert len(seen) == 8
        assert watch.credit_pauses == 0 and server.watch_pauses == 0

    def test_exhausted_window_pauses_and_resumes(self, env, net, server,
                                                 owner, call):
        watch, seen = slow_watcher(env, net, server, credits=1)
        for index in range(3):  # commits ~1 ms apart, grants 100 ms away
            call(owner.create(f"k{index}", {"v": index}))
        assert watch.credit_pauses >= 1
        assert server.watch_pauses >= 1
        env.run()  # grants drain the paused buffer, in FIFO order
        assert [e.key for e in seen] == ["k0", "k1", "k2"]
        assert watch._paused == {}


class TestPausedCoalescing:
    def test_newest_wins_per_key_while_paused(self, env, net, server, owner,
                                              call):
        watch, seen = slow_watcher(env, net, server, credits=1)
        call(owner.create("hot", {"v": 0}))
        for value in (1, 2, 3):  # all land while the stream is paused
            call(owner.patch("hot", {"v": value}))
        assert watch.paused_coalesced >= 1
        env.run()
        # The watcher saw the create and the LATEST paused payload; the
        # intermediate patches coalesced away server-side.
        assert len(seen) < 4
        assert seen[-1].object["v"] == 3
        assert server.watch_paused_coalesced >= 1

    def test_coalescing_preserves_fifo_slot_across_keys(self, env, net,
                                                        server, owner, call):
        watch, seen = slow_watcher(env, net, server, credits=1)
        call(owner.create("a", {"v": 0}))
        call(owner.create("b", {"v": 0}))
        call(owner.patch("a", {"v": 9}))  # replaces in place, keeps slot
        env.run()
        keys = [e.key for e in seen]
        assert keys[0] == "a"
        # "a"'s coalesced update is delivered before "b" would be
        # re-ordered -- the entry kept its FIFO position.
        assert keys.index("a", 1) < len(keys)

    def test_log_streams_queue_contiguously(self, env, net):
        lake = LogLake(env, net, location="lake", watch_overhead=0.0)
        lake.op_create_pool(pool="readings")
        net.set_latency("lake", "watcher", SLOW)
        client = LogLakeClient(lake, location="watcher")
        batches = []
        watch = client.watch(lambda e: batches.append(e), key_prefix="readings",
                             credits=1)
        assert watch._coalesce == "append"
        loader = LogLakeClient(lake, location="lake")
        env.run(until=loader.load("readings", [{"kwh": 1}]))
        env.run(until=loader.load("readings", [{"kwh": 2}]))
        env.run(until=loader.load("readings", [{"kwh": 3}]))
        env.run()
        # Every append survives the pause: log records never coalesce.
        assert len(batches) == 3
        assert watch.paused_coalesced == 0


class TestPausedOverflow:
    def test_reject_breaks_stream_into_resync(self, env, net, server, owner,
                                              call):
        closed = []
        net.set_latency(server.location, "watcher", SLOW)
        client = ApiServerClient(server, location="watcher")
        seen = []
        watch = client.watch(lambda e: seen.append(e), credits=1,
                             overflow="reject",
                             on_close=lambda: closed.append(True))
        assert watch.max_paused == 4  # 4x the credit window by default
        for index in range(8):  # 1 sent + 4 buffered + the 6th overflows
            call(owner.create(f"k{index}", {"v": index}))
        env.run()
        assert watch.forced_resyncs == 1
        assert server.watch_forced_resyncs == 1
        assert not watch.active
        assert closed == [True]
        assert watch._paused == {}  # bounded memory: buffer dropped

    def test_shed_oldest_keeps_stream_alive(self, env, net, server, owner,
                                            call):
        watch, seen = slow_watcher(env, net, server, credits=1,
                                   overflow="shed_oldest")
        for index in range(10):
            call(owner.create(f"k{index}", {"v": index}))
        assert watch.paused_shed > 0
        assert server.watch_shed_events > 0
        env.run()
        assert watch.active
        keys = [e.key for e in seen]
        assert "k9" in keys          # newest survived
        assert "k1" not in keys      # an oldest buffered entry was shed
        assert watch.peak_paused <= watch.max_paused

    def test_shed_newest_drops_incoming(self, env, net, server, owner, call):
        watch, seen = slow_watcher(env, net, server, credits=1,
                                   overflow="shed_newest")
        for index in range(10):
            call(owner.create(f"k{index}", {"v": index}))
        assert watch.paused_shed > 0
        env.run()
        assert watch.active
        keys = [e.key for e in seen]
        assert "k1" in keys          # oldest buffered entry survived
        assert "k9" not in keys      # the late arrival was dropped

    def test_block_restores_unbounded_buffering(self, env, net, server,
                                                owner, call):
        watch, seen = slow_watcher(env, net, server, credits=1,
                                   overflow="block")
        for index in range(12):
            call(owner.create(f"k{index}", {"v": index}))
        assert watch.peak_paused > watch.max_paused
        env.run()
        assert len(seen) == 12 and watch.paused_shed == 0


class TestShardedCreditFlow:
    def test_merged_watch_aggregates_flow_counters(self, env, net, call):
        shards = ShardedStore(
            [ApiServer(env, net, location=f"shard-{i}", watch_overhead=0.0)
             for i in range(2)],
            name="store",
        )
        for shard in shards.shards:
            net.set_latency(shard.location, "watcher", SLOW)
        client = ShardedStoreClient(shards, location="watcher")
        seen = []
        merged = client.watch(lambda e: seen.append(e), credits=1,
                              overflow="shed_oldest")
        writer = ShardedStoreClient(shards, location="writer")
        for index in range(12):
            call(writer.create(f"k{index}", {"v": index}))
        env.run()
        assert len(seen) > 0
        assert merged.credit_pauses >= 1
        assert merged.peak_paused >= 1
        assert shards.watch_credit_grants >= 1
